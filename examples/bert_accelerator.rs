//! Transformer scenario: convert a BERT-proxy classifier with LUTBoost and
//! explore how LUT-DLA Design 3 executes the full BERT-base projection/FFN
//! workload, including the PQA architectural comparison of Table IX.
//!
//! ```sh
//! cargo run --release --example bert_accelerator
//! ```

use lutdla::prelude::*;
use lutdla_models::trainable::bert_mini;
use lutdla_models::zoo::TransformerGemmOpts;
use lutdla_nn::data::{synthetic_sequences, SeqTaskConfig};
use lutdla_nn::{eval_seq, train_epoch_seq, Adam, Optimizer};

fn main() {
    // --- 1. Train the dense BERT proxy on a GLUE-like task. ---------------
    let task = SeqTaskConfig::glue_proxy(0, 2);
    let (train, test) = synthetic_sequences(&task);
    let mut ps = ParamSet::new();
    let net = bert_mini(&mut ps, task.num_classes);
    let mut opt = Optimizer::Adam(Adam::new(3e-3));
    for _ in 0..10 {
        train_epoch_seq(&net, &mut ps, &mut opt, &train, 32);
    }
    println!(
        "dense baseline accuracy: {:.1}%",
        eval_seq(&net, &ps, &test, 32) * 100.0
    );

    // --- 2. Convert QKV/FFN projections to LUT operators. -----------------
    let mut net = net;
    let outcome = convert_and_train_seq(
        &mut net,
        &mut ps,
        Strategy::Multistage,
        LutConfig {
            v: 4,
            c: 16,
            distance: Distance::L2,
            recon_weight: 0.05,
        },
        ConvertPolicy::default(),
        &TrainSchedule::default(),
        &train,
        &test,
        3,
    );
    println!(
        "LUT model accuracy: {:.1}% ({} units converted)\n",
        outcome.test_accuracy * 100.0,
        outcome.handles.converted_units.len()
    );

    // --- 3. Execute BERT-base's QKV/FFN GEMMs on Design 3. ----------------
    let bert = zoo::bert_base(TransformerGemmOpts::default());
    let design = design3();
    let report = simulate_workload(&design.sim_config(), &bert, 1);
    println!(
        "{} on BERT-base: {:.2} ms, {:.0} GOPS, {:.1} mJ (IMM util {:.2})",
        design.name,
        report.time_s * 1e3,
        report.effective_gops(),
        report.energy.total_mj(),
        report.imm_utilization
    );
    let gemms = workload_gemms(&bert, 1);
    let nvdla = nvdla_model(&NvdlaConfig::large(), &gemms);
    println!(
        "NVDLA-Large on BERT-base: {:.2} ms → speedup {:.1}x, energy saving {:.1}x\n",
        nvdla.time_s * 1e3,
        nvdla.time_s / report.time_s,
        nvdla.energy_mj / report.energy.total_mj()
    );

    // --- 4. Table IX in miniature: LS tiling vs PQA residency. ------------
    let g = Gemm::new(512, 768, 768);
    let cfg = SimConfig {
        v: 4,
        c: 32,
        tn: 16,
        m_rows: 512,
        nc_buffer: 192,
        n_ccu: 2,
        n_imm: 1,
        ..design.sim_config()
    };
    let ls = simulate_gemm(&cfg, &g);
    let pqa = simulate_pqa(&cfg, &g);
    println!(
        "QKV GEMM 512x768x768: LUT-DLA {} kcycles vs PQA-style {} kcycles;",
        ls.cycles / 1000,
        pqa.cycles / 1000
    );
    println!(
        "PQA needs {:.0} KB of on-chip LUT vs LUT-DLA's {:.1} KB ping-pong banks",
        pqa_onchip_bytes(&cfg, &g) as f64 / 1024.0,
        2.0 * cfg.bank_bytes() as f64 / 1024.0
    );
}
