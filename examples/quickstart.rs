//! Quickstart: approximate a GEMM with lookup tables, check the error, and
//! estimate how fast a LUT-DLA instance executes it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lutdla::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A GEMM: activations A (M×K) times weights B (K×N).
    let (m, k, n) = (256, 128, 64);
    let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);

    // 2. Fit a product quantizer on the activations (v=4 dims per subvector,
    //    c=32 centroids → equivalent bitwidth log2(32)/4 = 1.25 bits).
    let pq = ProductQuantizer::fit(&a, 4, 32, Distance::L1, &mut rng);
    println!(
        "quantizer: {} subspaces × {} centroids, {:.2} equivalent bits/weight",
        pq.num_subspaces(),
        pq.num_centroids(),
        pq.equivalent_bits()
    );

    // 3. Precompute the lookup table from the weights (INT8 entries) and run
    //    the approximate multiplication: encode → lookup → accumulate.
    let lut = LutTable::build(&pq, &b, LutQuant::Int8);
    let approx = approx_matmul(&a, &pq, &lut);
    let exact = a.matmul(&b);
    println!(
        "LUT table: {} KB; relative Frobenius error vs exact GEMM: {:.3}",
        lut.size_bytes() / 1024,
        approx.rel_error(&exact)
    );

    // 4. How fast does LUT-DLA Design 1 execute this GEMM?
    let design = design1();
    let report = simulate_gemm(&design.sim_config(), &Gemm::new(m, k, n));
    println!(
        "{}: {} cycles @300 MHz = {:.1} µs, {:.1} effective GOPS, {:.4} mJ",
        design.name,
        report.cycles,
        report.time_s * 1e6,
        report.effective_gops(),
        report.energy.total_mj()
    );

    // 5. And the same GEMM on an NVDLA-Small-class MAC array?
    let nvdla = nvdla_gemm(&NvdlaConfig::small(), &Gemm::new(m, k, n));
    println!(
        "NVDLA-Small: {:.1} µs → LUT-DLA speedup {:.1}x",
        nvdla.time_s * 1e6,
        nvdla.time_s / report.time_s
    );
}
