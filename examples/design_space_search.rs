//! Co-design space exploration: run Algorithm 2 under different constraint
//! regimes and show how the searched design shifts, including plugging a
//! *real* LUTBoost quick-evaluation oracle in place of the surrogate.
//!
//! ```sh
//! cargo run --release --example design_space_search
//! ```

use lutdla::prelude::*;
use lutdla_dse::{accuracy_heatmap, prune_grid, AccuracyModel};
use lutdla_lutboost::fresh_pretrained_convnet;
use lutdla_models::trainable::resnet20_mini;
use lutdla_nn::data::{synthetic_images, ImageTaskConfig};
use lutdla_nn::{train_epoch_images, Optimizer, Sgd};

/// The paper's §VI-C step 3: estimate accuracy by running only LUTBoost's
/// cheap centroid-calibration stage for a couple of epochs.
struct QuickLutBoostOracle {
    cfg: lutdla_models::trainable::ConvNetConfig,
    trained: ParamSet,
    train: lutdla_nn::data::ImageDataset,
    test: lutdla_nn::data::ImageDataset,
}

impl AccuracyModel for QuickLutBoostOracle {
    fn estimate(&self, v: usize, c: usize, metric: Metric) -> f64 {
        let (mut net, mut ps) = fresh_pretrained_convnet(self.cfg, &self.trained);
        let outcome = convert_and_train_images(
            &mut net,
            &mut ps,
            Strategy::Multistage,
            LutConfig {
                v,
                c,
                distance: metric_to_distance(metric),
                recon_weight: 0.05,
            },
            ConvertPolicy::default(),
            &TrainSchedule {
                centroid_epochs: 2,
                joint_epochs: 0,
                ..Default::default()
            },
            &self.train,
            &self.test,
            9,
        );
        outcome.test_accuracy as f64 * 100.0
    }
}

fn main() {
    let target = Gemm::new(512, 768, 768);
    let space = SearchSpace::figure11();
    let surrogate = SurrogateAccuracy::resnet20_cifar10();

    // --- Regime 1: tiny edge budget. --------------------------------------
    for (label, constraints) in [
        (
            "edge (1 mm², 150 mW)",
            Constraints {
                max_area_mm2: 1.0,
                max_power_mw: 150.0,
                min_accuracy: 88.0,
                ..Constraints::relaxed()
            },
        ),
        (
            "server (6 mm², 800 mW, ≥90.5%)",
            Constraints {
                max_area_mm2: 6.0,
                max_power_mw: 800.0,
                min_accuracy: 90.5,
                ..Constraints::relaxed()
            },
        ),
    ] {
        let result = search(&space, &target, &constraints, &surrogate);
        println!("=== {label} ===");
        println!("{}", prune_grid(&result, Metric::L2, &space.vs, &space.cs));
        match result.best() {
            Some(best) => println!(
                "winner: v={} c={} {} nIMM={} nCCU={} → {:.2} mm², {:.0} mW, est. acc {:.1}%\n",
                best.config.v,
                best.config.c,
                best.config.metric,
                best.config.n_imm,
                best.config.n_ccu,
                best.cost.area_mm2,
                best.cost.power_mw,
                best.accuracy
            ),
            None => println!("no feasible design\n"),
        }
    }

    // --- Regime 2: replace the surrogate with real LUTBoost quick-eval. ---
    println!("=== surrogate vs LUTBoost quick-evaluation oracle ===");
    let data_cfg = ImageTaskConfig {
        n_train: 256,
        n_test: 128,
        ..ImageTaskConfig::cifar10_proxy()
    };
    let (train, test) = synthetic_images(&data_cfg);
    let mut ps = ParamSet::new();
    let net = resnet20_mini(&mut ps, data_cfg.num_classes);
    let cfg = *net.config();
    let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4));
    for _ in 0..6 {
        train_epoch_images(&net, &mut ps, &mut opt, &train, 32);
    }
    let oracle = QuickLutBoostOracle {
        cfg,
        trained: ps,
        train,
        test,
    };
    // Probe a few points with both oracles (full search with the real
    // oracle would train dozens of conversions).
    println!(
        "{}",
        accuracy_heatmap(&[3, 6], &[8, 32], Metric::L2, &surrogate).render()
    );
    for (v, c) in [(3usize, 32usize), (6, 8)] {
        println!(
            "(v={v}, c={c}): surrogate {:.1}% | quick LUTBoost {:.1}% (proxy task)",
            surrogate.estimate(v, c, Metric::L2),
            oracle.estimate(v, c, Metric::L2)
        );
    }
}
