//! End-to-end CNN scenario: convert a (tiny proxy) ResNet with LUTBoost,
//! deploy it at BF16+INT8, serve single images through a whole-model
//! `ModelSession`, and size the accelerator for the full ResNet-18
//! workload against NVDLA and Gemmini.
//!
//! ```sh
//! cargo run --release --example resnet_accelerator [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the dataset and training budget to a CI-sized run.

use lutdla::prelude::*;
use lutdla_lutboost::fresh_pretrained_convnet;
use lutdla_models::trainable::resnet20_mini;
use lutdla_nn::data::{synthetic_images, ImageTaskConfig};
use lutdla_nn::{eval_images, train_epoch_images, Optimizer, Sgd};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // --- 1. Train the dense baseline on the CIFAR-10 proxy. --------------
    let data_cfg = if smoke {
        ImageTaskConfig {
            num_classes: 4,
            n_train: 96,
            n_test: 48,
            noise: 0.25,
            ..ImageTaskConfig::cifar10_proxy()
        }
    } else {
        ImageTaskConfig::cifar10_proxy()
    };
    let epochs = if smoke { 3 } else { 8 };
    let (train, test) = synthetic_images(&data_cfg);
    let mut ps = ParamSet::new();
    let net = resnet20_mini(&mut ps, data_cfg.num_classes);
    let cfg = *net.config();
    let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4));
    for epoch in 0..epochs {
        let stats = train_epoch_images(&net, &mut ps, &mut opt, &train, 32);
        println!(
            "baseline epoch {epoch}: loss {:.3} acc {:.3}",
            stats.loss, stats.accuracy
        );
    }
    let baseline = eval_images(&net, &ps, &test, 32);
    println!("dense baseline test accuracy: {:.1}%\n", baseline * 100.0);

    // --- 2. LUTBoost multistage conversion (v=4, c=16, L1 similarity). ---
    let schedule = if smoke {
        TrainSchedule {
            centroid_epochs: 1,
            joint_epochs: 1,
            ..TrainSchedule::default()
        }
    } else {
        TrainSchedule::default()
    };
    let (mut lut_net, mut lut_ps) = fresh_pretrained_convnet(cfg, &ps);
    let outcome = convert_and_train_images(
        &mut lut_net,
        &mut lut_ps,
        Strategy::Multistage,
        LutConfig {
            v: 4,
            c: 16,
            distance: Distance::L1,
            recon_weight: 0.05,
        },
        ConvertPolicy::default(),
        &schedule,
        &train,
        &test,
        1,
    );
    println!(
        "LUT model (train-path) accuracy: {:.1}% (baseline {:.1}%)",
        outcome.test_accuracy * 100.0,
        baseline * 100.0
    );

    // --- 3. Deploy: BF16 similarity + INT8 tables, evaluated through the
    //        exact table-lookup path the IMM executes. The LutRuntime owns
    //        the tiled engines; a re-deploy at this parameter version would
    //        be served from its cache. -------------------------------------
    let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
    let deployed = eval_images_deployed(
        &mut rt,
        &lut_net,
        &lut_ps,
        &test,
        32,
        DeployConfig::bf16_int8(),
    );
    println!("deployed (BF16+INT8) accuracy: {:.1}%\n", deployed * 100.0);

    // --- 4. Whole-model serving: submit single images through every
    //        deployed layer. The session compiles one plan per dense unit
    //        (cached LUT engine behind a per-stage micro-batcher, or the
    //        dense path) and resolves Pending handles with final logits —
    //        bit-identical to the batched eval above. The adaptive batch
    //        policy gives every LUT stage its own window controller:
    //        stages widen under backlog and collapse when idle,
    //        independently. -------------------------------------------------
    let cfg_deploy = rt.config();
    let session = rt
        .serve(&lut_net, &lut_ps)
        .config(cfg_deploy)
        .policy(BatchPolicy::adaptive())
        .build_model();
    println!(
        "ModelSession: {} LUT stages + {} dense units (engine cache: {:?})",
        session.lut_stages(),
        session.plan().len() - session.lut_stages(),
        rt.stats(),
    );
    let n_serve = 8.min(test.len());
    let handles: Vec<_> = (0..n_serve)
        .map(|i| {
            let (image, label) = test.example(i);
            (session.submit(image).expect("valid image"), label)
        })
        .collect();
    session.flush();
    let mut correct = 0;
    for (handle, label) in handles {
        let logits = handle.wait().expect("session alive");
        // First-wins tie-break, matching the eval path's argmax.
        let mut pred = 0;
        for (j, &v) in logits.iter().enumerate() {
            if v > logits[pred] {
                pred = j;
            }
        }
        correct += usize::from(pred == label);
    }
    println!("served {n_serve} single-image requests end-to-end: {correct}/{n_serve} correct");
    println!("per-stage serving stats (independently adapted windows):");
    for (name, stats) in session.stage_stats() {
        println!(
            "  {name:<16} rows {:>6} | batches {:>3} | queue high-water {:>5} | window {:>4}",
            stats.rows_served, stats.batches_run, stats.queued_high_water, stats.current_window,
        );
    }
    println!();
    drop(session);

    // --- 5. Size the accelerator for the full ResNet-18 workload. --------
    let workload = zoo::resnet_imagenet(18, 1000);
    let design = design2();
    let report = simulate_workload(&design.sim_config(), &workload, 1);
    let gemms = workload_gemms(&workload, 1);
    let nvdla = nvdla_model(&NvdlaConfig::large(), &gemms);
    let gemmini = systolic_model(&SystolicConfig::gemmini(), &gemms);
    println!("ResNet-18 (batch 1) end-to-end:");
    println!(
        "  {:24} {:>10.2} ms  {:>8.0} GOPS  {:>8.2} mJ",
        design.name,
        report.time_s * 1e3,
        report.effective_gops(),
        report.energy.total_mj()
    );
    println!(
        "  {:24} {:>10.2} ms  {:>8.0} GOPS  {:>8.2} mJ",
        "NVDLA-Large",
        nvdla.time_s * 1e3,
        nvdla.gops,
        nvdla.energy_mj
    );
    println!(
        "  {:24} {:>10.2} ms  {:>8.0} GOPS  {:>8.2} mJ",
        "Gemmini",
        gemmini.time_s * 1e3,
        gemmini.gops,
        gemmini.energy_mj
    );
    println!(
        "\nspeedup vs NVDLA-Large: {:.1}x; energy saving: {:.1}x",
        nvdla.time_s / report.time_s,
        nvdla.energy_mj / report.energy.total_mj()
    );
}
