//! Dataflow exploration: reproduce Table I's on-chip memory analysis and
//! sweep the LS tiling parameters (Tn, M-rows) to expose the
//! scratchpad-vs-bandwidth trade-off of §IV-B.
//!
//! ```sh
//! cargo run --release --example dataflow_explorer
//! ```

use lutdla::prelude::*;
use lutdla_sim::memory_footprint;

fn main() {
    let g = Gemm::new(512, 768, 768);
    let p = DataflowParams::table1();

    println!("Table I reproduction (M=512, K=N=768, v=4, c=32):");
    println!(
        "{:<16}{:>14}{:>12}{:>12}{:>12}",
        "dataflow", "scratch KB", "idx KB", "LUT KB", "total KB"
    );
    for df in Dataflow::ALL {
        let f = memory_footprint(df, &g, &p);
        println!(
            "{:<16}{:>14.2}{:>12.2}{:>12.2}{:>12.1}",
            df.to_string(),
            f.scratchpad / 1024.0,
            f.indices / 1024.0,
            f.psum_lut / 1024.0,
            f.total_kb()
        );
    }

    // --- Tn sweep: wider tiles raise throughput and bandwidth demand. -----
    println!("\nLS tiling sweep on the BERT projection GEMM (Design-2 base):");
    println!(
        "{:>6}{:>8}{:>12}{:>14}{:>16}{:>12}",
        "Tn", "M rows", "cycles", "GOPS", "min BW GB/s", "SRAM KB"
    );
    let base = design2();
    for tn in [64usize, 128, 256, 512, 768] {
        for m_rows in [128usize, 256, 512] {
            let hw = LutDlaHwConfig {
                tn,
                m_rows,
                ..base.hw
            };
            let cfg = SimConfig::from_hw(&hw, 25.6e9);
            let r = simulate_gemm(&cfg, &g);
            let imm = hw.imm_config();
            println!(
                "{:>6}{:>8}{:>12}{:>14.0}{:>16.2}{:>12.1}",
                tn,
                m_rows,
                r.cycles,
                r.effective_gops(),
                imm.min_bandwidth_bytes_per_s(hw.freq_mhz * 1e6) / 1e9,
                imm.total_kb()
            );
        }
    }
    println!(
        "\nreading: larger Tn lifts throughput linearly (more lanes) but raises\n\
         the stall-free bandwidth floor; larger M amortises each LUT bank over\n\
         more rows, relaxing bandwidth at the cost of scratchpad capacity —\n\
         exactly the Table VII trade Design 1→3 makes."
    );
}
