//! No-op derive macros for the offline `serde` stand-in. The workspace uses
//! the derives purely as annotations (nothing serializes yet), so expanding
//! to nothing is sufficient and avoids a `syn`/`quote` dependency.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
