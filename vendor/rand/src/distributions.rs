//! Distributions and uniform-range sampling, mirroring
//! `rand::distributions` far enough for this workspace.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform `[0, 1)` for floats, uniform over all
/// values for integers, fair coin for `bool`.
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high-quality mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit: $t = Standard.sample(rng);
                let x = self.start + unit * (self.end - self.start);
                // start + unit*(end-start) can round up to exactly `end` when
                // the range is coarse relative to the float grid; keep the
                // half-open contract by clamping to the largest value < end.
                if x >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    x
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f32 = rng.gen_range(-2.0f32..4.0);
            assert!((-2.0..4.0).contains(&y));
            let z: usize = rng.gen_range(0..=4);
            assert!(z <= 4);
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_range_stays_half_open_on_coarse_grid() {
        // ulp at 2^23 is 1.0, so naive lerp would hit `end` ~half the time.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(8_388_608.0f32..8_388_609.0);
            assert!(x < 8_388_609.0, "sample reached range end: {x}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
