//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible implementation: `Rng::{gen, gen_range}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `distributions::{Distribution, Standard}`. Generation is deterministic
//! per seed (sfc64), which is all the tests and experiments rely on.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng::from_u64_seed(state)
    }
}
