//! Named RNG types. `StdRng` here is an sfc64 generator rather than ChaCha12:
//! the workspace only needs determinism-per-seed, not cryptographic quality.

use crate::RngCore;

/// Deterministic small-fast-counting RNG (sfc64), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    a: u64,
    b: u64,
    c: u64,
    counter: u64,
}

impl StdRng {
    pub(crate) fn from_u64_seed(seed: u64) -> Self {
        // Expand the u64 seed into three state words with SplitMix64 so that
        // nearby seeds (0, 1, 2, …) still produce decorrelated streams.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut rng = StdRng {
            a: next(),
            b: next(),
            c: next(),
            counter: 1,
        };
        for _ in 0..12 {
            rng.next_u64();
        }
        rng
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.a.wrapping_add(self.b).wrapping_add(self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.a = self.b ^ (self.b >> 11);
        self.b = self.c.wrapping_add(self.c << 3);
        self.c = self.c.rotate_left(24).wrapping_add(out);
        out
    }
}
