//! Offline stand-in for `serde`. The workspace only uses
//! `#[derive(serde::Serialize, serde::Deserialize)]` as forward-looking
//! annotations — nothing serializes yet — so the derives expand to marker
//! impls and the traits carry no methods. When a real serialization backend
//! is needed, this crate is replaced by the real `serde` with no source
//! changes in the workspace.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
