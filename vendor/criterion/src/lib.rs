//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses. It implements a small fixed-budget timing loop (warm-up + measured
//! iterations, median-of-samples) instead of criterion's adaptive sampling
//! and statistics, but keeps the exact API shape (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `black_box`) so the benches compile and run unchanged.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const WARMUP_ITERS: u32 = 3;
const SAMPLES: usize = 15;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks (`group/bench` naming).
pub struct BenchmarkGroup<'a> {
    prefix: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.prefix, name), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to every benchmark closure; `iter` runs the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    f(&mut bencher);
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench {name:<40} median {median:>12.2?} ({} samples)",
        bencher.samples.len()
    );
}

/// `criterion_group!(name, target, …)` — collects targets into one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, …)` — the bench entry point (needs `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
