//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses: the `proptest!` macro over range / `prop::collection::vec` /
//! `any::<T>()` strategies, `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! sampled arguments so it can be reproduced by hand. Sampling is
//! deterministic per test (the RNG is seeded from the test name), so CI
//! failures are reproducible locally.

use rand::rngs::StdRng;
use std::marker::PhantomData;
use std::ops::Range;

pub mod prelude;

/// Runtime configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another sample.
    Reject,
    /// `prop_assert*` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructor mirroring `proptest::test_runner::TestCaseError::fail`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Constructor mirroring `proptest::test_runner::TestCaseError::reject`.
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// A source of values for one named test argument.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `prop::collection::vec(elem, len)` strategy.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        use rand::Rng;
        let n = rng.gen_range(self.len.start..self.len.end);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        rng.gen::<u32>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_num {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::Rng;
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — sample an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, VecStrategy};
        use std::ops::Range;

        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?} — {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest! { … }` block: expands each `fn name(arg in strategy, …)`
/// into a plain `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < config.cases {
                    $(let $arg = ($strat).sample(&mut rng);)+
                    let inputs =
                        [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ");
                    let case = || {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = case();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 65536,
                                "proptest: too many prop_assume! rejections"
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}\n  inputs: {inputs}");
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
