//! `use proptest::prelude::*;` surface.

pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
