//! Cross-crate integration tests: the full convert → deploy → simulate
//! pipeline and the headline comparative claims.

use lutdla::prelude::*;
use lutdla_lutboost::fresh_pretrained_convnet;
use lutdla_models::trainable::resnet20_mini;
use lutdla_nn::data::{synthetic_images, ImageTaskConfig};
use lutdla_nn::{eval_images, train_epoch_images, Optimizer, Sgd};

fn small_task() -> ImageTaskConfig {
    ImageTaskConfig {
        num_classes: 4,
        n_train: 128,
        n_test: 64,
        noise: 0.25,
        ..ImageTaskConfig::cifar10_proxy()
    }
}

#[test]
fn convert_deploy_simulate_pipeline() {
    // Train dense → LUTBoost multistage → BF16+INT8 deploy → accelerator
    // sizing: the entire framework path in one test.
    let data_cfg = small_task();
    let (train, test) = synthetic_images(&data_cfg);
    let mut ps = ParamSet::new();
    let net = resnet20_mini(&mut ps, data_cfg.num_classes);
    let cfg = *net.config();
    let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4));
    for _ in 0..5 {
        train_epoch_images(&net, &mut ps, &mut opt, &train, 32);
    }
    let baseline = eval_images(&net, &ps, &test, 32);
    assert!(baseline > 0.5, "dense baseline failed to learn: {baseline}");

    let (mut lut_net, mut lut_ps) = fresh_pretrained_convnet(cfg, &ps);
    let outcome = convert_and_train_images(
        &mut lut_net,
        &mut lut_ps,
        Strategy::Multistage,
        LutConfig {
            v: 4,
            c: 16,
            distance: Distance::L1,
            recon_weight: 0.05,
        },
        ConvertPolicy::default(),
        &TrainSchedule {
            centroid_epochs: 2,
            joint_epochs: 3,
            ..Default::default()
        },
        &train,
        &test,
        5,
    );
    assert!(
        outcome.test_accuracy > baseline * 0.6,
        "conversion destroyed accuracy: {} vs {baseline}",
        outcome.test_accuracy
    );

    let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
    let deployed = eval_images_deployed(
        &mut rt,
        &lut_net,
        &lut_ps,
        &test,
        32,
        DeployConfig::bf16_int8(),
    );
    assert!(
        (deployed - outcome.test_accuracy).abs() < 0.2,
        "deployment diverged: {deployed} vs {}",
        outcome.test_accuracy
    );
    // A second deployed eval at the same parameter version must be served
    // entirely from the runtime's engine cache (zero table re-tiling).
    let misses = rt.stats().misses;
    let again = eval_images_deployed(
        &mut rt,
        &lut_net,
        &lut_ps,
        &test,
        32,
        DeployConfig::bf16_int8(),
    );
    assert_eq!(rt.stats().misses, misses, "re-deploy re-tiled tables");
    assert!((again - deployed).abs() < 1e-6, "cached engines diverged");

    // The converted model's layer shapes must be simulatable.
    let report = simulate_gemm(&design1().sim_config(), &Gemm::new(256, 72, 8));
    assert!(report.cycles > 0);
}

#[test]
fn lutdla_beats_nvdla_small_on_bert() {
    // Fig. 14's headline: Design 1 is much faster than NVDLA-Small on BERT
    // at comparable area.
    let bert = zoo::bert_base(Default::default());
    let gemms = workload_gemms(&bert, 1);
    let lut = simulate_workload(&design1().sim_config(), &bert, 1);
    let nvdla = nvdla_model(&NvdlaConfig::small(), &gemms);
    let speedup = nvdla.time_s / lut.time_s;
    assert!(
        speedup > 3.0,
        "Design1 speedup over NVDLA-Small only {speedup:.2}x (paper: 6.2x)"
    );
}

#[test]
fn design2_matches_nvdla_large_throughput_class() {
    // Table VIII: Design 2 ≈ NVDLA-Large throughput at a fraction of area.
    let d2 = design2();
    let cost = design_cost(&d2.hw);
    assert!(
        (cost.peak_gops - 1228.8).abs() < 1.0,
        "Design2 peak {}",
        cost.peak_gops
    );
    assert!(cost.area_mm2 < 5.5, "not smaller than NVDLA-Large");
}

#[test]
fn end_to_end_energy_savings_vs_nvdla() {
    // Fig. 13: LUT-DLA designs save energy on ResNet workloads.
    let resnet = zoo::resnet_imagenet(18, 1000);
    let gemms = workload_gemms(&resnet, 1);
    let lut = simulate_workload(&design2().sim_config(), &resnet, 1);
    let nvdla = nvdla_model(&NvdlaConfig::large(), &gemms);
    // Chip-level energy (the paper's Fig. 13 basis): LUT-DLA's lookup path
    // spends far less datapath energy than a MAC array.
    assert!(
        nvdla.chip_energy_mj / lut.energy.chip_mj() > 2.0,
        "chip-energy saving only {:.2}x",
        nvdla.chip_energy_mj / lut.energy.chip_mj()
    );
}

#[test]
fn dse_search_result_fits_design3_class() {
    // The co-design engine under a Design-3-class budget must find a point
    // with comparable or better throughput per area.
    let result = search(
        &SearchSpace::figure11(),
        &Gemm::new(512, 768, 768),
        &Constraints {
            max_area_mm2: 4.0,
            max_power_mw: 700.0,
            min_accuracy: 89.0,
            ..Constraints::relaxed()
        },
        &SurrogateAccuracy::resnet20_cifar10(),
    );
    let best = result.best().expect("feasible design exists");
    assert!(best.cost.area_mm2 <= 4.0);
    assert!(best.cost.power_mw <= 700.0);
    assert!(best.accuracy >= 89.0);
}
