//! Smoke test: the exact path shown in the `lutdla` crate-level doc example
//! must keep working through a single `prelude` import.

use lutdla::prelude::*;

#[test]
fn prelude_doc_example_path_works() {
    let report = simulate_gemm(&design1().sim_config(), &Gemm::new(64, 64, 64));
    assert!(report.cycles > 0, "Design 1 must need at least one cycle");
}
