//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary shapes and configurations.

use lutdla::prelude::*;
use lutdla_sim::{analytic_cycles, functional_ls, memory_footprint, TableSource};
use lutdla_vq::approx_matmul_from_codes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct VqTable<'a>(&'a LutTable);

impl TableSource for VqTable<'_> {
    fn entry(&self, s: usize, ci: usize, col: usize) -> f32 {
        self.0.row(s, ci)[col]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator's LS walk computes exactly the AMM reference product,
    /// for any tiling and parallelism.
    #[test]
    fn ls_functional_equivalence(
        m in 1usize..24,
        k_sub in 1usize..6,
        v in 2usize..5,
        n in 1usize..24,
        c_pow in 1u32..4,
        tn in 1usize..12,
        m_rows in 1usize..12,
        n_imm in 1usize..4,
        seed in 0u64..1000,
    ) {
        let k = k_sub * v;
        let c = 2usize.pow(c_pow);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
        let lut = LutTable::build(&pq, &b, LutQuant::F32);
        let codes = pq.encode(&a);
        let reference = approx_matmul_from_codes(&codes, m, &pq, &lut);
        let cfg = SimConfig { v, c, tn, m_rows, n_imm, ..SimConfig::baseline() };
        let hw = functional_ls(&cfg, &Gemm::new(m, k, n), &codes, &VqTable(&lut));
        for (x, y) in hw.iter().zip(reference.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Simulated cycles never beat the Eq. (5) analytic lower bound.
    #[test]
    fn sim_cycles_at_least_analytic(
        m in 1usize..200,
        k in 1usize..200,
        n in 1usize..200,
        n_imm in 1usize..5,
    ) {
        let cfg = SimConfig { n_imm, ..design1().sim_config() };
        let g = Gemm::new(m, k, n);
        let r = simulate_gemm(&cfg, &g);
        let bound = analytic_cycles(&cfg, &g);
        prop_assert!(r.cycles as f64 >= bound * 0.99,
            "sim {} below analytic bound {bound}", r.cycles);
    }

    /// Lookup-event count is exactly M × ⌈K/v⌉ × ⌈N/Tn⌉ regardless of
    /// stalls, bandwidth, or chunking.
    #[test]
    fn lookup_count_invariant(
        m in 1usize..150,
        k in 1usize..150,
        n in 1usize..150,
        m_rows in 8usize..64,
        bw in 1u32..64,
    ) {
        let base = design1().sim_config();
        let cfg = SimConfig {
            m_rows,
            bw_bytes_per_cycle: bw as f64,
            ..base
        };
        let g = Gemm::new(m, k, n);
        let r = simulate_gemm(&cfg, &g);
        let expect = (m * k.div_ceil(cfg.v) * n.div_ceil(cfg.tn)) as u64;
        prop_assert_eq!(r.events.lut_row_reads, expect);
    }

    /// LUT-Stationary needs the least total on-chip memory of all six
    /// dataflows, for arbitrary GEMM shapes.
    #[test]
    fn ls_always_smallest_dataflow(
        m in 16usize..2048,
        k in 16usize..2048,
        n in 16usize..2048,
    ) {
        let g = Gemm::new(m, k, n);
        let p = DataflowParams::table1();
        let ls = memory_footprint(Dataflow::LutStationary, &g, &p).total();
        for df in Dataflow::ALL {
            prop_assert!(memory_footprint(df, &g, &p).total() >= ls - 1e-6, "{df}");
        }
    }

    /// INT8 LUT storage never changes any AMM output by more than the
    /// quantization bound (subspaces × per-entry step).
    #[test]
    fn int8_amm_error_bounded(
        m in 1usize..32,
        k_sub in 1usize..5,
        n in 1usize..16,
        seed in 0u64..500,
    ) {
        let v = 4;
        let k = k_sub * v;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m.max(8), k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, 8, Distance::L2, &mut rng);
        let f32_lut = LutTable::build(&pq, &b, LutQuant::F32);
        let i8_lut = LutTable::build(&pq, &b, LutQuant::Int8);
        let exact = approx_matmul(&a, &pq, &f32_lut);
        let quant = approx_matmul(&a, &pq, &i8_lut);
        // Each subspace contributes at most scale/2 ≈ max|entry|/254 error.
        let max_entry = (0..pq.num_subspaces())
            .flat_map(|s| (0..8).map(move |c| (s, c)))
            .flat_map(|(s, c)| f32_lut.row(s, c))
            .fold(0.0f32, |acc, x| acc.max(x.abs()));
        let bound = pq.num_subspaces() as f32 * max_entry / 127.0 + 1e-5;
        for (x, y) in exact.data().iter().zip(quant.data()) {
            prop_assert!((x - y).abs() <= bound, "{x} vs {y} (bound {bound})");
        }
    }

    /// Design cost is monotone in unit counts and peak GOPS is exact.
    #[test]
    fn design_cost_monotone(
        v in 2usize..9,
        c_pow in 3u32..7,
        tn in 32usize..512,
        n_imm in 1usize..8,
    ) {
        let cfg = LutDlaHwConfig {
            v,
            c: 2usize.pow(c_pow),
            tn,
            n_imm,
            ..LutDlaHwConfig::baseline()
        };
        let cost = design_cost(&cfg);
        let bigger = design_cost(&LutDlaHwConfig { n_imm: n_imm + 1, ..cfg });
        prop_assert!(bigger.area_mm2 > cost.area_mm2);
        prop_assert!(bigger.power_mw > cost.power_mw);
        let expect_gops = 2.0 * v as f64 * tn as f64 * n_imm as f64 * 300e6 / 1e9;
        prop_assert!((cost.peak_gops - expect_gops).abs() < 1e-6);
    }
}
