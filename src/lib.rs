//! LUT-DLA — Lookup Table as Efficient Extreme Low-Bit Deep Learning
//! Accelerator (HPCA 2025 reproduction).
//!
//! Umbrella crate: re-exports the framework facade. See the `examples/`
//! directory for runnable scenarios and `lutdla-bench` for the binaries
//! that regenerate every table/figure of the paper.
//!
//! ```
//! use lutdla::prelude::*;
//! let report = simulate_gemm(&design1().sim_config(), &Gemm::new(64, 64, 64));
//! assert!(report.cycles > 0);
//! ```

pub use lutdla_core::*;

/// Single-import surface (re-export of [`lutdla_core::prelude`]).
pub mod prelude {
    pub use lutdla_core::prelude::*;
}
