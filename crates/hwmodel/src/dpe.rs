//! Cost composition of the similarity datapath: dPE → CCU → CCM
//! (paper Fig. 5 and Fig. 9).
//!
//! A dPE evaluates one (input-subvector, centroid) distance per cycle and
//! keeps the running argmin. Its datapath depends on the metric:
//!
//! * **L2** — `v` multipliers + `v` subtractors + a `(v−1)`-adder reduction
//!   tree + 1 min-comparator;
//! * **L1** — `v` absolute-difference units + the adder tree + comparator
//!   (multiplication-free);
//! * **Chebyshev** — `v` absolute-difference units + a `(v−1)`-comparator
//!   *max* tree + comparator (the cheapest).
//!
//! A CCU chains `c` dPEs (one per centroid) into a pipeline; a CCM groups
//! `n_ccu` CCUs with the centroid/input buffers.

use crate::components::{CostModel, NumFormat, UnitCost};

/// The similarity metric implemented by a dPE (hardware mirror of the
/// algorithmic `Distance` enum in `lutdla-vq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Metric {
    /// Squared Euclidean.
    L2,
    /// Manhattan.
    L1,
    /// Chebyshev (max of absolute differences).
    Chebyshev,
}

impl Metric {
    /// All metrics, in decreasing hardware cost.
    pub const ALL: [Metric; 3] = [Metric::L2, Metric::L1, Metric::Chebyshev];
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Metric::L2 => "L2",
            Metric::L1 => "L1",
            Metric::Chebyshev => "Chebyshev",
        };
        f.write_str(s)
    }
}

/// Cost of a single distance processing element.
///
/// `energy_pj` is the energy of one full distance evaluation + compare
/// (i.e. one cycle of useful work).
pub fn dpe_cost(m: &CostModel, metric: Metric, v: usize, fmt: NumFormat) -> UnitCost {
    let v = v as f64;
    let tree_stages = (v - 1.0).max(0.0);
    let datapath = match metric {
        Metric::L2 => m
            .adder(fmt) // subtract
            .times(v)
            .plus(m.multiplier(fmt).times(v)) // square
            .plus(m.adder(fmt).times(tree_stages)), // reduction tree
        Metric::L1 => m
            .abs_diff(fmt)
            .times(v)
            .plus(m.adder(fmt).times(tree_stages)),
        Metric::Chebyshev => m
            .abs_diff(fmt)
            .times(v)
            .plus(m.max_unit(fmt).times(tree_stages)), // max tree
    };
    // Running-min comparator + index register + forwarding registers for the
    // input vector (the dPE chain passes the vector downstream, Fig. 5).
    datapath
        .plus(m.comparator(fmt))
        .plus(m.register(fmt.bits() * v as u32 + 16))
}

/// Cost of a CCU: `c` pipelined dPEs + the resident centroid registers.
pub fn ccu_cost(m: &CostModel, metric: Metric, v: usize, c: usize, fmt: NumFormat) -> UnitCost {
    let dpe = dpe_cost(m, metric, v, fmt);
    // Each dPE stores its own centroid (v words).
    let centroid_regs = m.register(fmt.bits() * v as u32).times(c as f64);
    dpe.times(c as f64).plus(centroid_regs)
}

/// Per-cycle *active* energy of a CCU (one vector advancing through the
/// pipeline touches every dPE stage).
pub fn ccu_energy_per_vector_pj(
    m: &CostModel,
    metric: Metric,
    v: usize,
    c: usize,
    fmt: NumFormat,
) -> f64 {
    dpe_cost(m, metric, v, fmt).energy_pj * c as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechNode;

    fn m() -> CostModel {
        CostModel::new(TechNode::N28)
    }

    #[test]
    fn metric_cost_ordering_l2_gt_l1_gt_chebyshev() {
        // The paper's Fig. 9 core claim.
        for v in [4, 8, 16] {
            let l2 = dpe_cost(&m(), Metric::L2, v, NumFormat::Fp32);
            let l1 = dpe_cost(&m(), Metric::L1, v, NumFormat::Fp32);
            let che = dpe_cost(&m(), Metric::Chebyshev, v, NumFormat::Fp32);
            assert!(l2.area_um2 > l1.area_um2, "v={v}");
            assert!(l1.area_um2 >= che.area_um2, "v={v}");
            assert!(l2.energy_pj > l1.energy_pj, "v={v}");
            assert!(l1.energy_pj >= che.energy_pj, "v={v}");
        }
    }

    #[test]
    fn cost_roughly_linear_in_v() {
        // Fig. 9: area/power grow approximately linearly with vector length.
        let a4 = dpe_cost(&m(), Metric::L2, 4, NumFormat::Fp16).area_um2;
        let a8 = dpe_cost(&m(), Metric::L2, 8, NumFormat::Fp16).area_um2;
        let a16 = dpe_cost(&m(), Metric::L2, 16, NumFormat::Fp16).area_um2;
        let r1 = a8 / a4;
        let r2 = a16 / a8;
        assert!((1.5..2.5).contains(&r1), "r1={r1}");
        assert!((1.5..2.5).contains(&r2), "r2={r2}");
    }

    #[test]
    fn fp16_cheaper_than_fp32() {
        let h = dpe_cost(&m(), Metric::L2, 8, NumFormat::Fp16);
        let s = dpe_cost(&m(), Metric::L2, 8, NumFormat::Fp32);
        assert!(h.area_um2 < s.area_um2);
        assert!(h.energy_pj < s.energy_pj);
    }

    #[test]
    fn ccu_scales_with_centroids() {
        let c8 = ccu_cost(&m(), Metric::L1, 4, 8, NumFormat::Fp16);
        let c32 = ccu_cost(&m(), Metric::L1, 4, 32, NumFormat::Fp16);
        let ratio = c32.area_um2 / c8.area_um2;
        assert!((3.0..5.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn l1_removes_all_multiplier_area() {
        // The area delta between L2 and L1 must be at least the multiplier
        // bank.
        let v = 8;
        let l2 = dpe_cost(&m(), Metric::L2, v, NumFormat::Fp32);
        let l1 = dpe_cost(&m(), Metric::L1, v, NumFormat::Fp32);
        let mults = m().multiplier(NumFormat::Fp32).area_um2 * v as f64;
        // L1's abs-diff units are slightly dearer than plain subtractors, so
        // the saving is a bit below the full multiplier bank.
        assert!(l2.area_um2 - l1.area_um2 > 0.7 * mults);
    }
}
