//! Technology-node scaling, after Stillmaker & Baas, *"Scaling equations for
//! the accurate prediction of CMOS device performance from 180 nm to 7 nm"*
//! (Integration, 2017) — the same reference the paper uses to normalise
//! Table VIII to a common node.
//!
//! Factors are expressed relative to the 45 nm node, where the component
//! cost library is calibrated (Horowitz, ISSCC'14).

use std::fmt;

/// A CMOS technology node in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TechNode(pub u32);

impl TechNode {
    /// 7 nm.
    pub const N7: TechNode = TechNode(7);
    /// 16 nm.
    pub const N16: TechNode = TechNode(16);
    /// 22 nm.
    pub const N22: TechNode = TechNode(22);
    /// 28 nm — the node all LUT-DLA designs are evaluated at.
    pub const N28: TechNode = TechNode(28);
    /// 40 nm.
    pub const N40: TechNode = TechNode(40);
    /// 45 nm — calibration baseline of the component library.
    pub const N45: TechNode = TechNode(45);

    /// Known (node, area-factor, energy-factor) triples vs 45 nm,
    /// approximating the Stillmaker–Baas general-purpose scaling tables.
    const TABLE: [(u32, f64, f64); 13] = [
        (180, 16.0, 10.0),
        (130, 8.34, 6.5),
        (90, 4.0, 3.1),
        (65, 2.08, 1.9),
        (45, 1.0, 1.0),
        (40, 0.79, 0.88),
        (32, 0.505, 0.64),
        (28, 0.387, 0.54),
        (22, 0.239, 0.42),
        (16, 0.126, 0.30),
        (14, 0.097, 0.26),
        (10, 0.049, 0.19),
        (7, 0.024, 0.14),
    ];

    /// Area scaling factor relative to 45 nm (log-interpolated between
    /// table entries for unlisted nodes).
    pub fn area_factor(&self) -> f64 {
        Self::interp(self.0, 1)
    }

    /// Energy-per-operation scaling factor relative to 45 nm.
    pub fn energy_factor(&self) -> f64 {
        Self::interp(self.0, 2)
    }

    /// Scales an area figure calibrated at 45 nm to this node.
    pub fn scale_area(&self, area_um2_45nm: f64) -> f64 {
        area_um2_45nm * self.area_factor()
    }

    /// Scales an energy figure calibrated at 45 nm to this node.
    pub fn scale_energy(&self, energy_pj_45nm: f64) -> f64 {
        energy_pj_45nm * self.energy_factor()
    }

    /// Converts a figure *measured at this node* to another node (used to
    /// normalise published accelerator PPA to 28 nm, as Table VIII does).
    pub fn convert_area_to(&self, target: TechNode, area: f64) -> f64 {
        area / self.area_factor() * target.area_factor()
    }

    /// Energy counterpart of [`TechNode::convert_area_to`].
    pub fn convert_energy_to(&self, target: TechNode, energy: f64) -> f64 {
        energy / self.energy_factor() * target.energy_factor()
    }

    fn interp(nm: u32, col: usize) -> f64 {
        let pick = |row: &(u32, f64, f64)| if col == 1 { row.1 } else { row.2 };
        let table = &Self::TABLE;
        if nm >= table[0].0 {
            return pick(&table[0]);
        }
        if nm <= table[table.len() - 1].0 {
            return pick(&table[table.len() - 1]);
        }
        for w in table.windows(2) {
            let (hi, lo) = (&w[0], &w[1]);
            if nm <= hi.0 && nm >= lo.0 {
                if nm == hi.0 {
                    return pick(hi);
                }
                if nm == lo.0 {
                    return pick(lo);
                }
                // log-log interpolation
                let t = ((nm as f64).ln() - (lo.0 as f64).ln())
                    / ((hi.0 as f64).ln() - (lo.0 as f64).ln());
                return (pick(lo).ln() + t * (pick(hi).ln() - pick(lo).ln())).exp();
            }
        }
        unreachable!("interpolation table covers the range");
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_identity() {
        assert_eq!(TechNode::N45.area_factor(), 1.0);
        assert_eq!(TechNode::N45.energy_factor(), 1.0);
    }

    #[test]
    fn smaller_nodes_shrink() {
        assert!(TechNode::N28.area_factor() < 1.0);
        assert!(TechNode::N7.area_factor() < TechNode::N16.area_factor());
        assert!(TechNode::N28.energy_factor() < 1.0);
    }

    #[test]
    fn interpolation_monotone() {
        let mut last = f64::INFINITY;
        for nm in [180, 130, 90, 65, 45, 33, 28, 20, 12, 7] {
            let f = TechNode(nm).area_factor();
            assert!(f <= last, "area factor not monotone at {nm}nm");
            last = f;
        }
    }

    #[test]
    fn conversion_round_trip() {
        let a28 = 2.0;
        let a7 = TechNode::N28.convert_area_to(TechNode::N7, a28);
        let back = TechNode::N7.convert_area_to(TechNode::N28, a7);
        assert!((back - a28).abs() < 1e-12);
    }

    #[test]
    fn scale_28nm_area_examples() {
        // 45→28nm should roughly follow the (28/45)² ≈ 0.39 dimensional law.
        let f = TechNode::N28.area_factor();
        assert!((0.3..0.5).contains(&f), "28nm area factor {f}");
    }
}
