//! Whole-accelerator cost composition — the `φ_area`/`φ_power` models of
//! paper Eqs. (3)/(4) — plus peak-throughput accounting for Table VIII.

use crate::components::{CostModel, NumFormat};
use crate::dpe::{ccu_cost, ccu_energy_per_vector_pj, Metric};
use crate::imm::{imm_cost, ImmConfig, ImmCost};
use crate::sram::SramModel;
use crate::tech::TechNode;

/// Full hardware configuration of a LUT-DLA instance.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LutDlaHwConfig {
    /// Similarity metric of the dPEs.
    pub metric: Metric,
    /// Subvector length `v`.
    pub v: usize,
    /// Centroids per codebook `c`.
    pub c: usize,
    /// Output-tile width per IMM (`Tn`).
    pub tn: usize,
    /// Scratchpad rows per IMM (`M` in Table VII).
    pub m_rows: usize,
    /// Buffered subspace count (`Nc`).
    pub nc: usize,
    /// Number of CCUs (across all CCMs).
    pub n_ccu: usize,
    /// Number of IMMs.
    pub n_imm: usize,
    /// Similarity datapath number format.
    pub ccm_format: NumFormat,
    /// LUT entry bits.
    pub lut_bits: u32,
    /// Scratchpad accumulator bits.
    pub acc_bits: u32,
    /// IMM clock in MHz (CCM runs at `ccm_clock_mult ×` this).
    pub freq_mhz: f64,
    /// CCM clock multiplier (decoupled clock domains, §IV-A).
    pub ccm_clock_mult: u32,
    /// Technology node.
    pub node: TechNode,
}

impl LutDlaHwConfig {
    /// A reasonable starting configuration at 28 nm / 300 MHz.
    pub fn baseline() -> Self {
        Self {
            metric: Metric::L2,
            v: 4,
            c: 16,
            tn: 128,
            m_rows: 256,
            nc: 16,
            n_ccu: 1,
            n_imm: 2,
            ccm_format: NumFormat::Bf16,
            lut_bits: 8,
            acc_bits: 16,
            freq_mhz: 300.0,
            ccm_clock_mult: 2,
            node: TechNode::N28,
        }
    }

    /// The IMM geometry induced by this configuration.
    pub fn imm_config(&self) -> ImmConfig {
        ImmConfig {
            c: self.c,
            tn: self.tn,
            m_rows: self.m_rows,
            nc: self.nc,
            lut_bits: self.lut_bits,
            acc_bits: self.acc_bits,
            idx_bits: (usize::BITS - (self.c - 1).leading_zeros()).max(1),
        }
    }

    /// Peak throughput in GOPS: each IMM retires `Tn` table entries per
    /// cycle, each entry standing for `v` MACs (= `2v` ops).
    pub fn peak_gops(&self) -> f64 {
        2.0 * self.v as f64 * self.tn as f64 * self.n_imm as f64 * self.freq_mhz * 1e6 / 1e9
    }
}

/// Area/power breakdown of a complete LUT-DLA instance.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DesignCost {
    /// Total area, mm².
    pub area_mm2: f64,
    /// CCM share of the area, mm².
    pub ccm_area_mm2: f64,
    /// IMM share of the area, mm².
    pub imm_area_mm2: f64,
    /// Interconnect/control/prefetch overhead share, mm².
    pub other_area_mm2: f64,
    /// Total power at full utilisation, mW.
    pub power_mw: f64,
    /// Dynamic CCM power, mW.
    pub ccm_power_mw: f64,
    /// Dynamic IMM power, mW.
    pub imm_power_mw: f64,
    /// SRAM leakage, mW.
    pub leakage_mw: f64,
    /// Peak throughput, GOPS.
    pub peak_gops: f64,
    /// Area efficiency, GOPS/mm².
    pub gops_per_mm2: f64,
    /// Power efficiency, GOPS/mW (≙ TOPS/W).
    pub gops_per_mw: f64,
}

/// Fixed overhead fractions for blocks the parametric model doesn't
/// enumerate (interconnect, control FSMs, prefetcher, FIFOs).
const OTHER_AREA_FRAC: f64 = 0.15;
const OTHER_POWER_FRAC: f64 = 0.20;

/// Evaluates Eqs. (3)/(4) for a configuration.
pub fn design_cost(cfg: &LutDlaHwConfig) -> DesignCost {
    let m = CostModel::new(cfg.node);
    let sram = SramModel::new(cfg.node);

    let ccu = ccu_cost(&m, cfg.metric, cfg.v, cfg.c, cfg.ccm_format);
    // Input/centroid staging buffers per CCU: double-buffered input vectors
    // + codebook SRAM (c×v words).
    let centroid_bits = (cfg.c * cfg.v) as u64 * cfg.ccm_format.bits() as u64;
    let ccm_bufs = sram.macro_cost(
        (centroid_bits * 2).max(256),
        (cfg.ccm_format.bits() * cfg.v as u32).min(centroid_bits as u32 * 2),
    );
    let ccm_area = (ccu.area_um2 + ccm_bufs.area_um2) * cfg.n_ccu as f64;

    let imm: ImmCost = imm_cost(&m, &sram, &cfg.imm_config());
    let imm_area = imm.area_um2 * cfg.n_imm as f64;

    let other_area = (ccm_area + imm_area) * OTHER_AREA_FRAC / (1.0 - OTHER_AREA_FRAC);
    let area_um2 = ccm_area + imm_area + other_area;

    // Dynamic power at full utilisation.
    let imm_hz = cfg.freq_mhz * 1e6;
    let ccm_hz = imm_hz * cfg.ccm_clock_mult as f64;
    let ccm_dyn_mw = ccu_energy_per_vector_pj(&m, cfg.metric, cfg.v, cfg.c, cfg.ccm_format)
        * ccm_hz
        * cfg.n_ccu as f64
        * 1e-9; // pJ×Hz → mW is ×1e-9? pJ·Hz = 1e-12 J/s = 1e-9 mW… yes.
    let imm_dyn_mw = imm.energy_per_lookup_pj * imm_hz * cfg.n_imm as f64 * 1e-9;
    let leak_mw = imm.leakage_mw * cfg.n_imm as f64 + ccm_bufs.leakage_mw * cfg.n_ccu as f64;
    let other_mw =
        (ccm_dyn_mw + imm_dyn_mw + leak_mw) * OTHER_POWER_FRAC / (1.0 - OTHER_POWER_FRAC);
    let power_mw = ccm_dyn_mw + imm_dyn_mw + leak_mw + other_mw;

    let peak_gops = cfg.peak_gops();
    let area_mm2 = area_um2 / 1e6;
    DesignCost {
        area_mm2,
        ccm_area_mm2: ccm_area / 1e6,
        imm_area_mm2: imm_area / 1e6,
        other_area_mm2: other_area / 1e6,
        power_mw,
        ccm_power_mw: ccm_dyn_mw,
        imm_power_mw: imm_dyn_mw,
        leakage_mw: leak_mw,
        peak_gops,
        gops_per_mm2: peak_gops / area_mm2,
        gops_per_mw: peak_gops / power_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cost_plausible() {
        let c = design_cost(&LutDlaHwConfig::baseline());
        assert!(
            c.area_mm2 > 0.05 && c.area_mm2 < 10.0,
            "area {}",
            c.area_mm2
        );
        assert!(
            c.power_mw > 5.0 && c.power_mw < 2000.0,
            "power {}",
            c.power_mw
        );
        assert!(c.peak_gops > 100.0);
    }

    #[test]
    fn more_imms_cost_more_but_raise_throughput() {
        let base = LutDlaHwConfig::baseline();
        let big = LutDlaHwConfig { n_imm: 4, ..base };
        let c1 = design_cost(&base);
        let c2 = design_cost(&big);
        assert!(c2.area_mm2 > c1.area_mm2);
        assert!(c2.power_mw > c1.power_mw);
        assert!((c2.peak_gops / c1.peak_gops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn l1_design_cheaper_than_l2() {
        let l2 = design_cost(&LutDlaHwConfig::baseline());
        let l1 = design_cost(&LutDlaHwConfig {
            metric: Metric::L1,
            ..LutDlaHwConfig::baseline()
        });
        assert!(l1.area_mm2 < l2.area_mm2);
        assert!(l1.power_mw < l2.power_mw);
        // Same throughput → better efficiency.
        assert!(l1.gops_per_mm2 > l2.gops_per_mm2);
    }

    #[test]
    fn efficiency_fields_consistent() {
        let c = design_cost(&LutDlaHwConfig::baseline());
        assert!((c.gops_per_mm2 - c.peak_gops / c.area_mm2).abs() < 1e-9);
        assert!((c.gops_per_mw - c.peak_gops / c.power_mw).abs() < 1e-12);
        let total = c.ccm_area_mm2 + c.imm_area_mm2 + c.other_area_mm2;
        assert!((total - c.area_mm2).abs() < 1e-9);
    }

    #[test]
    fn lut_dla_beats_int8_alu_area_efficiency() {
        // The headline claim of Fig. 1/Table VIII: LUT-DLA's GOPS/mm²
        // exceeds a dense INT8 MAC array's. A 28nm INT8 MAC (mult+add)
        // ≈ 123µm² → a 1mm² array of ~8100 MACs at 300MHz ≈ 4.9 TOPS/mm²
        // *without* SRAM; with realistic SRAM shares (≥70%) ≈ 1.5 GOPS/mm²/MHz…
        // rather than replicate that here, just require LUT-DLA to clear the
        // NVDLA-Large figure from Table VIII (372 GOPS/mm²).
        let c = design_cost(&LutDlaHwConfig {
            tn: 256,
            v: 4,
            ..LutDlaHwConfig::baseline()
        });
        assert!(c.gops_per_mm2 > 372.0, "GOPS/mm² = {}", c.gops_per_mm2);
    }
}
