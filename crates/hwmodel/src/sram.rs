//! Analytical SRAM macro model (the role of the ARM memory compilers in the
//! paper's methodology): capacity + port width → area, access energy,
//! leakage.
//!
//! The model follows the usual CACTI-style asymptotics: area is linear in
//! capacity with a fixed-overhead factor that penalises small macros;
//! per-bit access energy grows with √capacity (longer bit/word lines).
//! Constants are set for a 28 nm-class high-density macro and scaled to
//! other nodes via [`TechNode`].

use crate::tech::TechNode;

/// Cost figures of one SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SramCost {
    /// Macro area in µm².
    pub area_um2: f64,
    /// Energy per read access of the full port width, in pJ.
    pub read_pj: f64,
    /// Energy per write access of the full port width, in pJ.
    pub write_pj: f64,
    /// Leakage power in mW.
    pub leakage_mw: f64,
}

/// SRAM model bound to a technology node.
#[derive(Debug, Clone, Copy)]
pub struct SramModel {
    node: TechNode,
}

// 28nm-class constants.
const BIT_AREA_UM2_28: f64 = 0.20; // effective µm²/bit incl. periphery
const BIT_READ_PJ_BASE_28: f64 = 0.004; // pJ/bit at 1 KB
const BIT_READ_PJ_SLOPE_28: f64 = 0.0020; // additional pJ/bit per √KB
const LEAK_MW_PER_KB_28: f64 = 0.0045;

impl SramModel {
    /// Creates an SRAM model for `node`.
    pub fn new(node: TechNode) -> Self {
        Self { node }
    }

    /// Cost of a macro of `capacity_bits` with a `width_bits` r/w port.
    ///
    /// # Panics
    ///
    /// Panics if capacity or width is zero, or width exceeds capacity.
    pub fn macro_cost(&self, capacity_bits: u64, width_bits: u32) -> SramCost {
        assert!(capacity_bits > 0 && width_bits > 0, "empty macro");
        assert!(
            (width_bits as u64) <= capacity_bits,
            "port wider than the macro"
        );
        let kb = capacity_bits as f64 / 8192.0;
        // Small macros pay proportionally more periphery.
        let overhead = 1.0 + 1.2 / (kb + 0.25).sqrt();
        let area_28 = capacity_bits as f64 * BIT_AREA_UM2_28 * overhead;
        let e_bit_28 = BIT_READ_PJ_BASE_28 + BIT_READ_PJ_SLOPE_28 * kb.sqrt();
        let read_28 = e_bit_28 * width_bits as f64;
        let write_28 = read_28 * 1.2;
        let leak_28 = LEAK_MW_PER_KB_28 * kb;

        // Constants are 28nm-calibrated; rescale through the 45nm reference.
        let a_factor = self.node.area_factor() / TechNode::N28.area_factor();
        let e_factor = self.node.energy_factor() / TechNode::N28.energy_factor();
        SramCost {
            area_um2: area_28 * a_factor,
            read_pj: read_28 * e_factor,
            write_pj: write_28 * e_factor,
            leakage_mw: leak_28 * e_factor,
        }
    }

    /// Convenience: macro cost from capacity in KB.
    pub fn from_kb(&self, capacity_kb: f64, width_bits: u32) -> SramCost {
        self.macro_cost((capacity_kb * 8192.0).ceil() as u64, width_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> SramModel {
        SramModel::new(TechNode::N28)
    }

    #[test]
    fn area_grows_with_capacity() {
        let a1 = m().from_kb(1.0, 32).area_um2;
        let a64 = m().from_kb(64.0, 32).area_um2;
        // 64× the capacity costs ≳30× the area (small-macro overhead shrinks).
        assert!(a64 > 30.0 * a1, "a1={a1} a64={a64}");
    }

    #[test]
    fn small_macros_pay_overhead() {
        // µm²/bit should be worse for a 0.5KB macro than a 64KB macro.
        let per_bit = |kb: f64| m().from_kb(kb, 32).area_um2 / (kb * 8192.0);
        assert!(per_bit(0.5) > per_bit(64.0));
    }

    #[test]
    fn read_energy_grows_with_capacity_and_width() {
        let base = m().from_kb(8.0, 64).read_pj;
        assert!(m().from_kb(512.0, 64).read_pj > base);
        assert!(m().from_kb(8.0, 128).read_pj > base);
    }

    #[test]
    fn magnitudes_plausible_at_28nm() {
        // A 64KB macro should be a few hundredths of a mm² and a read of a
        // 128-bit word should cost on the order of a picojoule.
        let c = m().from_kb(64.0, 128);
        let mm2 = c.area_um2 / 1e6;
        assert!((0.05..0.3).contains(&mm2), "64KB area = {mm2} mm²");
        assert!((0.5..10.0).contains(&c.read_pj), "read = {} pJ", c.read_pj);
    }

    #[test]
    fn node_scaling() {
        let a28 = m().from_kb(16.0, 32).area_um2;
        let a7 = SramModel::new(TechNode::N7).from_kb(16.0, 32).area_um2;
        assert!(a7 < a28);
    }

    #[test]
    #[should_panic(expected = "port wider")]
    fn rejects_overwide_port() {
        let _ = m().macro_cost(64, 128);
    }
}
