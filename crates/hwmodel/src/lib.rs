//! Analytical hardware cost models for LUT-DLA.
//!
//! This crate plays the role of the paper's synthesis flow (Chisel →
//! Cadence Genus @ 28 nm FD-SOI) and ARM memory compilers: it converts a
//! hardware configuration into area, power, energy-per-event, and peak
//! throughput, which the simulator (`lutdla-sim`), the design-space
//! explorer (`lutdla-dse`), and the PPA benches consume.
//!
//! * [`CostModel`] — arithmetic components vs bitwidth (45 nm-anchored,
//!   node-scaled);
//! * [`SramModel`] — SRAM macros (capacity/width → area, pJ/access,
//!   leakage);
//! * [`dpe_cost`]/[`ccu_cost`] — the similarity datapath per [`Metric`];
//! * [`ImmConfig`]/[`imm_cost`] — the in-memory matching module;
//! * [`design_cost`] — whole-accelerator φ_area/φ_power (paper Eqs. 3/4);
//! * [`alu_eff`] — the Fig. 1 LUT-vs-ALU efficiency curves;
//! * [`TechNode`] — Stillmaker–Baas technology scaling (paper ref. \[54\]).
//!
//! # Example
//!
//! ```
//! use lutdla_hwmodel::{design_cost, LutDlaHwConfig, Metric};
//!
//! let cfg = LutDlaHwConfig {
//!     metric: Metric::L1,
//!     ..LutDlaHwConfig::baseline()
//! };
//! let cost = design_cost(&cfg);
//! assert!(cost.area_mm2 > 0.0 && cost.gops_per_mw > 0.0);
//! ```

pub mod alu_eff;
mod components;
mod design;
mod dpe;
mod imm;
mod sram;
mod tech;

pub use alu_eff::{alu_point, alu_series, lut_point, lut_series, AluKind, EffPoint};
pub use components::{CostModel, NumFormat, UnitCost};
pub use design::{design_cost, DesignCost, LutDlaHwConfig};
pub use dpe::{ccu_cost, ccu_energy_per_vector_pj, dpe_cost, Metric};
pub use imm::{imm_cost, ImmConfig, ImmCost};
pub use sram::{SramCost, SramModel};
pub use tech::TechNode;
