//! Fig. 1 — area/power efficiency of LUT-based approximate computing vs
//! conventional ALUs across (equivalent) bitwidths.
//!
//! The ALU side sweeps INT/FP adders and multipliers over bitwidths; the
//! LUT side sweeps vector length `V` and centroid count `C`, whose
//! equivalent bitwidth is `log₂C / V` — sub-1-bit once `V` exceeds
//! `log₂C`, which is precisely the regime scalar quantization cannot reach.

use crate::components::CostModel;
use crate::sram::SramModel;
use crate::tech::TechNode;

/// One point of an efficiency curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EffPoint {
    /// (Equivalent) bitwidth of the representation.
    pub bits: f64,
    /// Operations per mm² per cycle.
    pub ops_per_mm2: f64,
    /// Operations per pJ.
    pub ops_per_pj: f64,
}

/// The ALU operation being swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluKind {
    /// Integer addition.
    IntAdd,
    /// Integer multiplication.
    IntMult,
    /// Floating-point addition.
    FpAdd,
    /// Floating-point multiplication.
    FpMult,
}

impl std::fmt::Display for AluKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AluKind::IntAdd => "INT ADD",
            AluKind::IntMult => "INT MULT",
            AluKind::FpAdd => "FP ADD",
            AluKind::FpMult => "FP MULT",
        };
        f.write_str(s)
    }
}

/// Efficiency of a single ALU of `kind` at `bits` width (one op per cycle).
pub fn alu_point(node: TechNode, kind: AluKind, bits: f64) -> EffPoint {
    let m = CostModel::new(node);
    let cost = match kind {
        AluKind::IntAdd => m.int_adder_bits(bits),
        AluKind::IntMult => m.int_mult_bits(bits),
        AluKind::FpAdd => m.fp_adder_bits(bits),
        AluKind::FpMult => m.fp_mult_bits(bits),
    };
    EffPoint {
        bits,
        ops_per_mm2: 1e6 / cost.area_um2,
        ops_per_pj: 1.0 / cost.energy_pj,
    }
}

/// Sweeps an ALU kind over the paper's bitwidth axis. Integer/FP ALUs
/// cannot go below 1 bit — the curve simply stops, which is Fig. 1's point.
pub fn alu_series(node: TechNode, kind: AluKind, bit_points: &[f64]) -> Vec<EffPoint> {
    bit_points
        .iter()
        .filter(|&&b| b >= 1.0)
        .map(|&b| alu_point(node, kind, b))
        .collect()
}

/// Efficiency of the LUT approach for a `(v, c)` configuration.
///
/// Per cycle, one accumulate lane retires one table entry that stands for
/// `v` MACs (`2v` ops). Costs are computed for a `tn`-lane tile sharing one
/// ping-pong LUT macro (`2·c·tn` entries) and divided back per lane; the
/// similarity engine (`c` dPEs per subvector) is amortised over the
/// `n_share` output columns its index serves (the paper's 1k×1k×1k GEMM →
/// `n_share = 1024`).
pub fn lut_point(node: TechNode, v: usize, c: usize, lut_bits: u32, n_share: usize) -> EffPoint {
    const TN: usize = 512;
    let m = CostModel::new(node);
    let sram = SramModel::new(node);
    let acc = m.adder(crate::components::NumFormat::Int(16));

    // One macro for the whole tile, both ping-pong banks.
    let macro_bits = (2 * c * TN) as u64 * lut_bits as u64;
    let row_bits = (TN as u32) * lut_bits;
    let lut_macro = sram.macro_cost(macro_bits.max(row_bits as u64), row_bits);
    let sram_area_per_lane = lut_macro.area_um2 / TN as f64;
    let sram_read_per_lane = lut_macro.read_pj / TN as f64;

    // Similarity: a c-dPE scan per v-subvector, serving n_share lanes. The
    // Fig. 1 regime quantizes activations to the LUT entry width, so the
    // similarity datapath is integer at `lut_bits`.
    let sim_unit = crate::dpe::dpe_cost(
        &m,
        crate::dpe::Metric::L2,
        v,
        crate::components::NumFormat::Int(lut_bits),
    );
    let sim_area = sim_unit.area_um2 * c as f64 / n_share as f64;
    let sim_energy = sim_unit.energy_pj * c as f64 / n_share as f64;

    let area = acc.area_um2 + sram_area_per_lane + sim_area;
    let energy = acc.energy_pj + sram_read_per_lane + sim_energy;
    let ops = 2.0 * v as f64;
    EffPoint {
        bits: (c as f64).log2() / v as f64,
        ops_per_mm2: ops * 1e6 / area,
        ops_per_pj: ops / energy,
    }
}

/// Sweeps centroid counts for a fixed vector length (one Fig. 1 LUT curve).
pub fn lut_series(node: TechNode, v: usize, cs: &[usize]) -> Vec<EffPoint> {
    cs.iter().map(|&c| lut_point(node, v, c, 8, 1024)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N28: TechNode = TechNode::N28;

    #[test]
    fn alu_efficiency_falls_with_bits() {
        for kind in [
            AluKind::IntAdd,
            AluKind::IntMult,
            AluKind::FpAdd,
            AluKind::FpMult,
        ] {
            let s = alu_series(N28, kind, &[8.0, 16.0, 32.0, 64.0]);
            for w in s.windows(2) {
                assert!(w[1].ops_per_mm2 < w[0].ops_per_mm2, "{kind}");
                assert!(w[1].ops_per_pj < w[0].ops_per_pj, "{kind}");
            }
        }
    }

    #[test]
    fn alu_series_stops_at_one_bit() {
        let s = alu_series(N28, AluKind::IntAdd, &[0.125, 0.5, 1.0, 2.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].bits, 1.0);
    }

    #[test]
    fn lut_reaches_sub_bit_widths() {
        let p = lut_point(N28, 16, 8, 8, 1024);
        assert!(p.bits < 0.2, "equivalent bits = {}", p.bits);
    }

    #[test]
    fn lut_beats_alu_by_orders_of_magnitude() {
        // Paper: 1–5 orders of magnitude in area efficiency, 1–2 in power
        // efficiency, compared at matching (equivalent) bitwidths.
        let lut = lut_point(N28, 8, 16, 8, 1024); // 0.5 equivalent bits
        let alu = alu_point(N28, AluKind::IntMult, 8.0);
        let area_gain = lut.ops_per_mm2 / alu.ops_per_mm2;
        let power_gain = lut.ops_per_pj / alu.ops_per_pj;
        assert!(area_gain > 10.0, "area gain {area_gain}");
        assert!(power_gain > 10.0, "power gain {power_gain}");
        assert!(
            area_gain < 1e6 && power_gain < 1e4,
            "gains implausibly large"
        );
    }

    #[test]
    fn longer_vectors_improve_lut_efficiency() {
        let v2 = lut_point(N28, 2, 16, 8, 1024);
        let v16 = lut_point(N28, 16, 16, 8, 1024);
        assert!(v16.ops_per_mm2 > v2.ops_per_mm2);
        assert!(v16.ops_per_pj > v2.ops_per_pj);
    }

    #[test]
    fn more_centroids_lower_lut_efficiency() {
        let c8 = lut_point(N28, 8, 8, 8, 1024);
        let c512 = lut_point(N28, 8, 512, 8, 1024);
        assert!(c8.ops_per_mm2 > c512.ops_per_mm2);
    }
}
