//! Arithmetic component cost library.
//!
//! Base numbers are the widely used 45 nm energy/area table (Horowitz,
//! *"Computing's energy problem (and what we can do about it)"*, ISSCC'14),
//! extended across bitwidths with the standard asymptotics — linear in bits
//! for integer adders, quadratic for integer multipliers, fitted power laws
//! between the FP16/FP32 anchors for floating point — and scaled to the
//! target node with [`TechNode`].

use crate::tech::TechNode;

/// Numeric format of a datapath operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NumFormat {
    /// Two's-complement integer of the given bit width.
    Int(u32),
    /// IEEE single precision.
    Fp32,
    /// IEEE half precision.
    Fp16,
    /// bfloat16 (same width as FP16; slightly cheaper multiplier, modelled
    /// identically to FP16 here).
    Bf16,
}

impl NumFormat {
    /// Operand width in bits.
    pub fn bits(&self) -> u32 {
        match self {
            NumFormat::Int(b) => *b,
            NumFormat::Fp32 => 32,
            NumFormat::Fp16 | NumFormat::Bf16 => 16,
        }
    }

    /// Whether this is a floating-point format.
    pub fn is_float(&self) -> bool {
        !matches!(self, NumFormat::Int(_))
    }
}

/// Area (µm²) and per-operation energy (pJ) of one hardware unit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UnitCost {
    /// Silicon area in µm².
    pub area_um2: f64,
    /// Energy per operation in pJ.
    pub energy_pj: f64,
}

impl UnitCost {
    /// Sums two costs (composition).
    pub fn plus(self, other: UnitCost) -> UnitCost {
        UnitCost {
            area_um2: self.area_um2 + other.area_um2,
            energy_pj: self.energy_pj + other.energy_pj,
        }
    }

    /// Scales the cost by a replication count.
    pub fn times(self, n: f64) -> UnitCost {
        UnitCost {
            area_um2: self.area_um2 * n,
            energy_pj: self.energy_pj * n,
        }
    }

    /// A zero cost.
    pub fn zero() -> UnitCost {
        UnitCost {
            area_um2: 0.0,
            energy_pj: 0.0,
        }
    }
}

// 45 nm anchors (Horowitz ISSCC'14).
const INT8_ADD: (f64, f64) = (36.0, 0.03); // (area µm², energy pJ)
const INT32_ADD: (f64, f64) = (137.0, 0.10);
const INT8_MULT: (f64, f64) = (282.0, 0.20);
const INT32_MULT: (f64, f64) = (3495.0, 3.10);
const FP16_ADD: (f64, f64) = (1360.0, 0.40);
const FP32_ADD: (f64, f64) = (4184.0, 0.90);
const FP16_MULT: (f64, f64) = (1640.0, 1.10);
const FP32_MULT: (f64, f64) = (7700.0, 3.70);

fn power_law(b16: (f64, f64), b32: (f64, f64), bits: f64) -> (f64, f64) {
    // value(bits) = v16 · (bits/16)^p with p from the two anchors.
    let fit = |v16: f64, v32: f64| {
        let p = (v32 / v16).ln() / 2f64.ln();
        v16 * (bits / 16.0).powf(p)
    };
    (fit(b16.0, b32.0), fit(b16.1, b32.1))
}

/// Component cost model at a given technology node.
///
/// # Example
///
/// ```
/// use lutdla_hwmodel::{CostModel, NumFormat, TechNode};
///
/// let m = CostModel::new(TechNode::N28);
/// let add8 = m.adder(NumFormat::Int(8));
/// let add32 = m.adder(NumFormat::Int(32));
/// assert!(add8.area_um2 < add32.area_um2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    node: TechNode,
}

impl CostModel {
    /// Creates a model for `node`.
    pub fn new(node: TechNode) -> Self {
        Self { node }
    }

    /// The model's technology node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    fn scaled(&self, (area, energy): (f64, f64)) -> UnitCost {
        UnitCost {
            area_um2: self.node.scale_area(area),
            energy_pj: self.node.scale_energy(energy),
        }
    }

    /// An adder for the given format.
    pub fn adder(&self, f: NumFormat) -> UnitCost {
        let raw = match f {
            NumFormat::Int(bits) => {
                // Linear interpolation through the 8/32-bit anchors.
                let t = bits as f64 / 8.0;
                (INT8_ADD.0 * t, INT8_ADD.1 * t.max(0.25))
            }
            NumFormat::Fp16 | NumFormat::Bf16 => FP16_ADD,
            NumFormat::Fp32 => FP32_ADD,
        };
        let raw = if let NumFormat::Int(bits) = f {
            // Pin the 32-bit point exactly to the anchor.
            if bits == 32 {
                INT32_ADD
            } else {
                raw
            }
        } else {
            raw
        };
        self.scaled(raw)
    }

    /// A multiplier for the given format.
    pub fn multiplier(&self, f: NumFormat) -> UnitCost {
        let raw = match f {
            NumFormat::Int(bits) => {
                if bits == 32 {
                    INT32_MULT
                } else {
                    // Quadratic in bits, anchored at 8 bits.
                    let t = (bits as f64 / 8.0).powi(2);
                    (INT8_MULT.0 * t, INT8_MULT.1 * t)
                }
            }
            NumFormat::Fp16 | NumFormat::Bf16 => FP16_MULT,
            NumFormat::Fp32 => FP32_MULT,
        };
        self.scaled(raw)
    }

    /// A floating-point unit at an arbitrary width (power-law fit between
    /// the FP16/FP32 anchors) — used for the Fig. 1 bitwidth sweep.
    pub fn fp_adder_bits(&self, bits: f64) -> UnitCost {
        let (a, e) = power_law(FP16_ADD, FP32_ADD, bits);
        self.scaled((a, e))
    }

    /// Floating-point multiplier at an arbitrary width.
    pub fn fp_mult_bits(&self, bits: f64) -> UnitCost {
        let (a, e) = power_law(FP16_MULT, FP32_MULT, bits);
        self.scaled((a, e))
    }

    /// Integer adder at an arbitrary (possibly fractional) width — Fig. 1.
    pub fn int_adder_bits(&self, bits: f64) -> UnitCost {
        let t = bits / 8.0;
        self.scaled((INT8_ADD.0 * t, INT8_ADD.1 * t.max(0.25)))
    }

    /// Integer multiplier at an arbitrary width — Fig. 1.
    pub fn int_mult_bits(&self, bits: f64) -> UnitCost {
        let t = (bits / 8.0).powi(2);
        self.scaled((INT8_MULT.0 * t, INT8_MULT.1 * t))
    }

    /// A magnitude comparator. Cheaper than an adder: it produces only a
    /// flag, needs no sum output, and for sign-magnitude floats reduces to
    /// a lexicographic bit compare.
    pub fn comparator(&self, f: NumFormat) -> UnitCost {
        self.adder(f).times(0.6)
    }

    /// An absolute-difference unit `|a − b|` (subtract + conditional negate).
    pub fn abs_diff(&self, f: NumFormat) -> UnitCost {
        self.adder(f).times(1.3)
    }

    /// A two-input max unit (comparator + mux).
    pub fn max_unit(&self, f: NumFormat) -> UnitCost {
        self.comparator(f).times(1.15)
    }

    /// One bit of pipeline register.
    pub fn register_bit(&self) -> UnitCost {
        self.scaled((2.5, 0.0015))
    }

    /// A register of `bits` width.
    pub fn register(&self, bits: u32) -> UnitCost {
        self.register_bit().times(bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m28() -> CostModel {
        CostModel::new(TechNode::N28)
    }

    #[test]
    fn multiplier_dwarfs_adder() {
        let m = m28();
        for f in [NumFormat::Int(8), NumFormat::Fp16, NumFormat::Fp32] {
            assert!(m.multiplier(f).area_um2 > m.adder(f).area_um2, "{f:?}");
            assert!(m.multiplier(f).energy_pj > m.adder(f).energy_pj, "{f:?}");
        }
    }

    #[test]
    fn int_mult_scales_quadratically() {
        let m = m28();
        let a8 = m.multiplier(NumFormat::Int(8)).area_um2;
        let a16 = m.multiplier(NumFormat::Int(16)).area_um2;
        assert!((a16 / a8 - 4.0).abs() < 0.2, "ratio {}", a16 / a8);
    }

    #[test]
    fn fp32_more_expensive_than_fp16() {
        let m = m28();
        assert!(m.adder(NumFormat::Fp32).area_um2 > m.adder(NumFormat::Fp16).area_um2);
        assert!(m.multiplier(NumFormat::Fp32).energy_pj > m.multiplier(NumFormat::Fp16).energy_pj);
    }

    #[test]
    fn node_scaling_applies() {
        let a45 = CostModel::new(TechNode::N45).adder(NumFormat::Int(32));
        let a28 = m28().adder(NumFormat::Int(32));
        assert!(a28.area_um2 < a45.area_um2);
        assert!(a28.energy_pj < a45.energy_pj);
    }

    #[test]
    fn power_law_hits_anchors() {
        let m = CostModel::new(TechNode::N45);
        let a16 = m.fp_adder_bits(16.0);
        assert!((a16.area_um2 - FP16_ADD.0).abs() < 1.0);
        let a32 = m.fp_adder_bits(32.0);
        assert!((a32.area_um2 - FP32_ADD.0).abs() < 5.0);
    }

    #[test]
    fn composition_helpers() {
        let a = UnitCost {
            area_um2: 1.0,
            energy_pj: 2.0,
        };
        let b = a.plus(a).times(3.0);
        assert_eq!(b.area_um2, 6.0);
        assert_eq!(b.energy_pj, 12.0);
    }
}
