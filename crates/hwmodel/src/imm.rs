//! IMM (In-Memory Matching Module) cost model: ping-pong PSum LUT banks,
//! scratchpad, indices buffer, and the accumulate lane array (paper Fig. 4,
//! Table VII).

use crate::components::{CostModel, NumFormat, UnitCost};
use crate::sram::{SramCost, SramModel};

/// Geometry of one IMM.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ImmConfig {
    /// Centroids per codebook (`c`) — the LUT depth.
    pub c: usize,
    /// Output-tile width (`Tn`) — entries per LUT row = accumulate lanes.
    pub tn: usize,
    /// Maximum input-tile rows (`M`) held in the scratchpad.
    pub m_rows: usize,
    /// Number of subspaces whose indices are buffered (`Nc`).
    pub nc: usize,
    /// Bits per stored LUT entry (8 for INT8, 16 for BF16, 32 for FP32).
    pub lut_bits: u32,
    /// Bits per scratchpad accumulator word.
    pub acc_bits: u32,
    /// Bits per index (⌈log₂ c⌉).
    pub idx_bits: u32,
}

impl ImmConfig {
    /// A config with the index width derived from `c` and common defaults
    /// (INT8 LUT entries, 16-bit accumulators).
    pub fn new(c: usize, tn: usize, m_rows: usize, nc: usize) -> Self {
        Self {
            c,
            tn,
            m_rows,
            nc,
            lut_bits: 8,
            acc_bits: 16,
            idx_bits: (usize::BITS - (c - 1).leading_zeros()).max(1),
        }
    }

    /// PSum-LUT capacity in bits, counting both ping-pong banks.
    pub fn lut_bits_total(&self) -> u64 {
        2 * (self.c * self.tn) as u64 * self.lut_bits as u64
    }

    /// Scratchpad capacity in bits.
    pub fn scratchpad_bits(&self) -> u64 {
        (self.m_rows * self.tn) as u64 * self.acc_bits as u64
    }

    /// Indices-buffer capacity in bits.
    pub fn indices_bits(&self) -> u64 {
        (self.m_rows * self.nc) as u64 * self.idx_bits as u64
    }

    /// Total on-chip storage in KB (the Table VII "SRAM" column).
    pub fn total_kb(&self) -> f64 {
        (self.lut_bits_total() + self.scratchpad_bits() + self.indices_bits()) as f64 / 8192.0
    }

    /// Minimum sustained DRAM bandwidth (bytes/s) for stall-free ping-pong
    /// operation at `freq_hz`: the next `c×Tn` LUT bank must arrive within
    /// the `m_rows` cycles the current bank is in use
    /// (Table VII: `Tn × Nc / M × freq`, with `c` entries per column).
    pub fn min_bandwidth_bytes_per_s(&self, freq_hz: f64) -> f64 {
        let bank_bytes = (self.c * self.tn) as f64 * self.lut_bits as f64 / 8.0;
        bank_bytes / self.m_rows as f64 * freq_hz
    }
}

/// Area/power breakdown of one IMM.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ImmCost {
    /// Total macro + datapath area in µm².
    pub area_um2: f64,
    /// Energy of one lookup-accumulate cycle (read a `Tn`-wide LUT row,
    /// read+write the scratchpad row, `Tn` adds), in pJ.
    pub energy_per_lookup_pj: f64,
    /// Leakage of all SRAM macros, mW.
    pub leakage_mw: f64,
    /// The PSum-LUT macro cost (both banks).
    pub lut_sram: SramCost,
    /// The scratchpad macro cost.
    pub scratch_sram: SramCost,
    /// The indices-buffer macro cost.
    pub index_sram: SramCost,
}

/// Computes the cost of one IMM.
pub fn imm_cost(m: &CostModel, sram: &SramModel, cfg: &ImmConfig) -> ImmCost {
    let row_bits = (cfg.tn as u32) * cfg.lut_bits;
    let lut_sram = sram.macro_cost(cfg.lut_bits_total().max(row_bits as u64), row_bits);
    let scratch_row_bits = (cfg.tn as u32) * cfg.acc_bits;
    let scratch_sram = sram.macro_cost(
        cfg.scratchpad_bits().max(scratch_row_bits as u64),
        scratch_row_bits,
    );
    let index_sram = sram.macro_cost(cfg.indices_bits().max(cfg.idx_bits as u64), cfg.idx_bits);

    // Accumulator lanes: Tn integer adders at the accumulator width.
    let lanes: UnitCost = m.adder(NumFormat::Int(cfg.acc_bits)).times(cfg.tn as f64);

    let area = lut_sram.area_um2 + scratch_sram.area_um2 + index_sram.area_um2 + lanes.area_um2;
    // One lookup: LUT row read + scratchpad read + write + Tn adds + index read.
    let energy = lut_sram.read_pj
        + scratch_sram.read_pj
        + scratch_sram.write_pj
        + lanes.energy_pj
        + index_sram.read_pj;
    let leakage = lut_sram.leakage_mw + scratch_sram.leakage_mw + index_sram.leakage_mw;

    ImmCost {
        area_um2: area,
        energy_per_lookup_pj: energy,
        leakage_mw: leakage,
        lut_sram,
        scratch_sram,
        index_sram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechNode;

    fn models() -> (CostModel, SramModel) {
        (CostModel::new(TechNode::N28), SramModel::new(TechNode::N28))
    }

    #[test]
    fn table7_design_sram_sizes() {
        // Table VII: Design1 (v=3, Nc=16, Tn=128, M=256) → 36.1 KB;
        // Design2 (4, 16, 256, 256) → 72.1 KB; Design3 (3, 16, 768, 512) →
        // 408.2 KB. With 8-bit accumulators and ping-pong INT8 LUT banks our
        // breakdown reproduces these within a few percent.
        let d1 = ImmConfig {
            acc_bits: 8,
            ..ImmConfig::new(16, 128, 256, 16)
        };
        assert!(
            (d1.total_kb() - 36.1).abs() < 3.0,
            "design1 = {} KB",
            d1.total_kb()
        );
        let d2 = ImmConfig {
            acc_bits: 8,
            ..ImmConfig::new(16, 256, 256, 16)
        };
        assert!(
            (d2.total_kb() - 72.1).abs() < 4.0,
            "design2 = {} KB",
            d2.total_kb()
        );
        let d3 = ImmConfig {
            acc_bits: 8,
            ..ImmConfig::new(16, 768, 512, 16)
        };
        assert!(
            (d3.total_kb() - 408.2).abs() < 10.0,
            "design3 = {} KB",
            d3.total_kb()
        );
    }

    #[test]
    fn bandwidth_scales_with_tile_width() {
        let freq = 300e6;
        let d1 = ImmConfig::new(16, 128, 256, 16);
        let d2 = ImmConfig::new(16, 256, 256, 16);
        let b1 = d1.min_bandwidth_bytes_per_s(freq);
        let b2 = d2.min_bandwidth_bytes_per_s(freq);
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cost_dominated_by_sram() {
        let (m, s) = models();
        let cfg = ImmConfig::new(32, 128, 512, 192);
        let c = imm_cost(&m, &s, &cfg);
        let sram_area = c.lut_sram.area_um2 + c.scratch_sram.area_um2 + c.index_sram.area_um2;
        assert!(
            sram_area / c.area_um2 > 0.7,
            "SRAM share {}",
            sram_area / c.area_um2
        );
    }

    #[test]
    fn wider_tiles_cost_more_energy_per_lookup() {
        let (m, s) = models();
        let narrow = imm_cost(&m, &s, &ImmConfig::new(32, 64, 256, 16));
        let wide = imm_cost(&m, &s, &ImmConfig::new(32, 512, 256, 16));
        assert!(wide.energy_per_lookup_pj > 3.0 * narrow.energy_per_lookup_pj);
    }
}
