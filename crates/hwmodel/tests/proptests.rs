//! Property-based tests of the hardware cost models: monotonicity and
//! composition invariants that must hold across the whole parameter space.

use lutdla_hwmodel::{
    ccu_cost, design_cost, dpe_cost, imm_cost, CostModel, ImmConfig, LutDlaHwConfig, Metric,
    NumFormat, SramModel, TechNode,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// dPE cost is monotone in vector length for every metric/format.
    #[test]
    fn dpe_monotone_in_v(v in 2usize..24) {
        let m = CostModel::new(TechNode::N28);
        for metric in Metric::ALL {
            for fmt in [NumFormat::Int(8), NumFormat::Fp16, NumFormat::Fp32] {
                let small = dpe_cost(&m, metric, v, fmt);
                let large = dpe_cost(&m, metric, v + 1, fmt);
                prop_assert!(large.area_um2 > small.area_um2);
                prop_assert!(large.energy_pj > small.energy_pj);
            }
        }
    }

    /// The L2 ≥ L1 ≥ Chebyshev cost ordering holds everywhere (Fig. 9).
    #[test]
    fn metric_ordering_universal(v in 2usize..24, fp32 in any::<bool>()) {
        let m = CostModel::new(TechNode::N28);
        let fmt = if fp32 { NumFormat::Fp32 } else { NumFormat::Fp16 };
        let l2 = dpe_cost(&m, Metric::L2, v, fmt);
        let l1 = dpe_cost(&m, Metric::L1, v, fmt);
        let che = dpe_cost(&m, Metric::Chebyshev, v, fmt);
        prop_assert!(l2.area_um2 > l1.area_um2);
        prop_assert!(l1.area_um2 >= che.area_um2);
        prop_assert!(l2.energy_pj > l1.energy_pj);
        prop_assert!(l1.energy_pj >= che.energy_pj);
    }

    /// CCU cost scales superlinearly-at-least-linearly with centroid count.
    #[test]
    fn ccu_monotone_in_c(c in 2usize..64, v in 2usize..10) {
        let m = CostModel::new(TechNode::N28);
        let small = ccu_cost(&m, Metric::L1, v, c, NumFormat::Fp16);
        let large = ccu_cost(&m, Metric::L1, v, c + 1, NumFormat::Fp16);
        prop_assert!(large.area_um2 > small.area_um2);
    }

    /// IMM SRAM totals are exactly the sum of their three structures.
    #[test]
    fn imm_kb_decomposition(
        c_pow in 2u32..7,
        tn in 16usize..512,
        m_rows in 32usize..512,
        nc in 4usize..64,
    ) {
        let cfg = ImmConfig::new(2usize.pow(c_pow), tn, m_rows, nc);
        let total = cfg.total_kb();
        let parts = (cfg.lut_bits_total() + cfg.scratchpad_bits() + cfg.indices_bits()) as f64
            / 8192.0;
        prop_assert!((total - parts).abs() < 1e-9);
        // And the macro cost model accepts the geometry.
        let m = CostModel::new(TechNode::N28);
        let sram = SramModel::new(TechNode::N28);
        let cost = imm_cost(&m, &sram, &cfg);
        prop_assert!(cost.area_um2 > 0.0 && cost.energy_per_lookup_pj > 0.0);
    }

    /// Technology scaling is order-preserving: smaller node, smaller cost.
    #[test]
    fn tech_scaling_order(nm_small in 7u32..28, delta in 1u32..40) {
        let small = TechNode(nm_small);
        let big = TechNode(nm_small + delta);
        prop_assert!(small.area_factor() <= big.area_factor());
        prop_assert!(small.energy_factor() <= big.energy_factor());
        // Round-trip conversion is exact.
        let x = 3.17;
        let there = small.convert_area_to(big, x);
        prop_assert!((big.convert_area_to(small, there) - x).abs() < 1e-9);
    }

    /// Peak throughput is invariant to the metric (the metric only affects
    /// cost), and efficiency therefore strictly improves L2 → Chebyshev.
    #[test]
    fn metric_only_affects_cost(tn in 32usize..512, v in 2usize..9) {
        let base = LutDlaHwConfig { tn, v, ..LutDlaHwConfig::baseline() };
        let costs: Vec<_> = Metric::ALL
            .iter()
            .map(|&metric| design_cost(&LutDlaHwConfig { metric, ..base }))
            .collect();
        prop_assert_eq!(costs[0].peak_gops, costs[1].peak_gops);
        prop_assert_eq!(costs[1].peak_gops, costs[2].peak_gops);
        prop_assert!(costs[1].gops_per_mm2 > costs[0].gops_per_mm2); // L1 > L2
        prop_assert!(costs[2].gops_per_mm2 >= costs[1].gops_per_mm2); // Che ≥ L1
    }

    /// Bandwidth floor formula: doubling M halves the requirement.
    #[test]
    fn bandwidth_inverse_in_m(c_pow in 2u32..6, tn in 16usize..256, m_rows in 16usize..256) {
        let a = ImmConfig::new(2usize.pow(c_pow), tn, m_rows, 16);
        let b = ImmConfig::new(2usize.pow(c_pow), tn, 2 * m_rows, 16);
        let freq = 300e6;
        let ratio = a.min_bandwidth_bytes_per_s(freq) / b.min_bandwidth_bytes_per_s(freq);
        prop_assert!((ratio - 2.0).abs() < 1e-9);
    }
}
