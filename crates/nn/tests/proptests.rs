//! Property-based gradient checks: for random shapes and random op
//! compositions, analytic gradients must match central differences.

use lutdla_nn::{Graph, NodeId};
use lutdla_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn numeric_check(x0: &Tensor, f: impl Fn(&mut Graph, NodeId) -> NodeId) -> Result<(), String> {
    let mut g = Graph::new(true);
    let x = g.input(x0.clone());
    let loss = f(&mut g, x);
    g.backward(loss);
    let analytic = g.grad(x).ok_or("no grad")?.clone();

    let eps = 1e-2f32;
    for i in 0..x0.numel() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let eval = |t: Tensor| {
            let mut g = Graph::new(true);
            let x = g.input(t);
            let l = f(&mut g, x);
            g.value(l).data()[0]
        };
        let numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        if (a - numeric).abs() > 5e-2 * (1.0 + numeric.abs()) {
            return Err(format!("grad mismatch at {i}: {a} vs {numeric}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Linear → ReLU → square → sum pipelines differentiate correctly for
    /// arbitrary shapes.
    #[test]
    fn grad_linear_relu(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        numeric_check(&x0, |g, x| {
            let wn = g.input(w.clone());
            let y = g.matmul(x, wn);
            let r = g.relu(y);
            let s = g.square(r);
            g.sum_all(s)
        }).map_err(TestCaseError::fail)?;
    }

    /// Softmax + weighted sum differentiates correctly.
    #[test]
    fn grad_softmax(rows in 1usize..4, cols in 2usize..6, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::rand_uniform(&mut rng, &[rows, cols], -1.5, 1.5);
        let w = Tensor::rand_uniform(&mut rng, &[rows, cols], -1.0, 1.0);
        numeric_check(&x0, |g, x| {
            let s = g.softmax(x);
            let wn = g.input(w.clone());
            let p = g.mul(s, wn);
            g.sum_all(p)
        }).map_err(TestCaseError::fail)?;
    }

    /// Cross-entropy with random labels differentiates correctly.
    #[test]
    fn grad_cross_entropy(rows in 1usize..4, classes in 2usize..5, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::rand_uniform(&mut rng, &[rows, classes], -1.0, 1.0);
        let labels: Vec<usize> = (0..rows).map(|i| (seed as usize + i) % classes).collect();
        numeric_check(&x0, |g, x| g.cross_entropy(x, &labels))
            .map_err(TestCaseError::fail)?;
    }

    /// Mean over the last axis differentiates correctly (transformer pooling path).
    #[test]
    fn grad_mean_last_axis(rows in 1usize..5, cols in 1usize..6, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::rand_uniform(&mut rng, &[rows, cols], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[rows], -1.0, 1.0);
        numeric_check(&x0, |g, x| {
            let m = g.mean_last_axis_node(x);
            let wn = g.input(w.clone());
            let p = g.mul(m, wn);
            let s = g.square(p);
            g.sum_all(s)
        }).map_err(TestCaseError::fail)?;
    }

    /// Elementwise div/abs/sqrt chain differentiates correctly away from
    /// the singularities.
    #[test]
    fn grad_div_abs_sqrt(n in 1usize..8, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::rand_uniform(&mut rng, &[n], 0.5, 2.0);
        let d = Tensor::rand_uniform(&mut rng, &[n], 1.0, 3.0);
        numeric_check(&x0, |g, x| {
            let dn = g.input(d.clone());
            let q = g.div(x, dn);
            let a = g.abs(q);
            let r = g.sqrt(a);
            g.sum_all(r)
        }).map_err(TestCaseError::fail)?;
    }
}
