//! Define-by-run tape autograd over [`lutdla_tensor::Tensor`].
//!
//! A [`Graph`] records every operation as a node referencing earlier nodes,
//! so reverse iteration over node indices is a valid reverse-topological
//! order. The op set is a closed enum covering everything the workload zoo
//! needs, plus a [`CustomOp`] escape hatch through which `lutdla-lutboost`
//! injects its straight-through-estimator quantization op without this crate
//! knowing anything about vector quantization.

use lutdla_tensor::{col2im, im2col, Conv2dGeometry, Tensor};

use crate::params::{ParamId, ParamSet};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw index of the node in creation order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A differentiable operation with caller-provided forward and backward.
///
/// The forward value is computed by the caller *before* registering the node
/// (see [`Graph::custom`]); only the backward rule lives in the trait. This
/// lets downstream crates implement non-differentiable forwards (argmin,
/// table lookups) with surrogate gradients (straight-through estimators).
pub trait CustomOp {
    /// Name used in debug output.
    fn name(&self) -> &str;

    /// Given `∂L/∂value`, the parents' forward values, and this node's own
    /// forward value, returns `∂L/∂parent` for each parent (or `None` for
    /// parents that receive no gradient).
    fn backward(
        &self,
        grad_out: &Tensor,
        parent_values: &[&Tensor],
        value: &Tensor,
    ) -> Vec<Option<Tensor>>;
}

enum Op {
    /// Leaf with no gradient.
    Input,
    /// Leaf whose gradient is routed back to a [`ParamSet`] entry.
    Param(ParamId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Div(NodeId, NodeId),
    Neg(NodeId),
    Scale(NodeId, f32),
    // The scalar is carried for graph dumps/debug even though backward
    // never reads it (d(x+c)/dx = 1).
    AddScalar(NodeId, #[allow(dead_code)] f32),
    Matmul(NodeId, NodeId),
    Bmm(NodeId, NodeId),
    Transpose(NodeId),
    TransposeLast2(NodeId),
    Reshape(NodeId, Vec<usize>),
    Relu(NodeId),
    Gelu(NodeId),
    Abs(NodeId),
    Square(NodeId),
    Sqrt(NodeId),
    AddBiasLastDim(NodeId, NodeId),
    AddBiasChannel(NodeId, NodeId),
    SoftmaxLastDim(NodeId),
    LayerNormLastDim {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        /// Saved normalized activations.
        xhat: Tensor,
        /// Saved per-row 1/σ.
        inv_std: Vec<f32>,
    },
    BatchNorm2d {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        xhat: Tensor,
        inv_std: Vec<f32>,
    },
    Im2col {
        x: NodeId,
        geom: Conv2dGeometry,
        batch: usize,
    },
    MaxPool2d {
        x: NodeId,
        in_dims: [usize; 4],
        argmax: Vec<usize>,
    },
    GlobalAvgPool(NodeId),
    CrossEntropyLogits {
        logits: NodeId,
        labels: Vec<usize>,
        softmax: Tensor,
    },
    MseLoss(NodeId, NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    MeanLastAxis(NodeId),
    Embedding {
        table: NodeId,
        ids: Vec<usize>,
    },
    SplitHeads {
        x: NodeId,
        heads: usize,
    },
    MergeHeads {
        x: NodeId,
        heads: usize,
    },
    Dropout {
        x: NodeId,
        mask: Vec<f32>,
    },
    // The parent id is carried for graph dumps/debug; backward stops here
    // by construction, so nothing reads it.
    StopGradient(#[allow(dead_code)] NodeId),
    Custom {
        parents: Vec<NodeId>,
        op: Box<dyn CustomOp>,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// A single forward/backward tape.
///
/// Build one `Graph` per training step, call [`Graph::backward`] on the loss
/// node, then flush parameter gradients with [`Graph::apply_param_grads`].
///
/// # Example
///
/// ```
/// use lutdla_nn::{Graph, ParamSet};
/// use lutdla_tensor::Tensor;
///
/// let mut ps = ParamSet::new();
/// let w = ps.add("w", Tensor::from_vec(vec![2.0], &[1, 1]));
/// let mut g = Graph::new(true);
/// let x = g.input(Tensor::from_vec(vec![3.0], &[1, 1]));
/// let wn = g.param(&ps, w);
/// let y = g.matmul(x, wn);
/// let loss = g.sum_all(y);
/// g.backward(loss);
/// g.apply_param_grads(&mut ps);
/// assert_eq!(ps.grad(w).data(), &[3.0]);
/// ```
pub struct Graph {
    nodes: Vec<Node>,
    train: bool,
}

impl Graph {
    /// Creates a new tape. `train = true` enables dropout and batch-norm
    /// batch statistics.
    pub fn new(train: bool) -> Self {
        Self {
            nodes: Vec::new(),
            train,
        }
    }

    /// Whether this tape was created in training mode.
    pub fn is_train(&self) -> bool {
        self.train
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// The gradient of a node, if backward has reached it.
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.nodes[id.0].grad.as_ref()
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Registers an input (no gradient).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value)
    }

    /// Registers a parameter leaf; its gradient is routed back to `ps` by
    /// [`Graph::apply_param_grads`].
    pub fn param(&mut self, ps: &ParamSet, id: ParamId) -> NodeId {
        self.push(Op::Param(id), ps.value(id).clone())
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul(self.value(b));
        self.push(Op::Mul(a, b), v)
    }

    /// Elementwise quotient.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).div(self.value(b));
        self.push(Op::Div(a, b), v)
    }

    /// Negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).scale(-1.0);
        self.push(Op::Neg(a), v)
    }

    /// Scalar multiplication.
    pub fn scale(&mut self, a: NodeId, k: f32) -> NodeId {
        let v = self.value(a).scale(k);
        self.push(Op::Scale(a, k), v)
    }

    /// Scalar addition.
    pub fn add_scalar(&mut self, a: NodeId, k: f32) -> NodeId {
        let v = self.value(a).add_scalar(k);
        self.push(Op::AddScalar(a, k), v)
    }

    /// Matrix product of rank-2 nodes.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::Matmul(a, b), v)
    }

    /// Batched matrix product of rank-3 nodes.
    pub fn bmm(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).bmm(self.value(b));
        self.push(Op::Bmm(a, b), v)
    }

    /// Transpose of a rank-2 node.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Swaps the last two axes of a rank-3 node.
    pub fn transpose_last2(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).transpose_last2();
        self.push(Op::TransposeLast2(a), v)
    }

    /// Reshape (element count preserved).
    pub fn reshape(&mut self, a: NodeId, dims: &[usize]) -> NodeId {
        let old = self.value(a).dims().to_vec();
        let v = self.value(a).reshape(dims);
        self.push(Op::Reshape(a, old), v)
    }

    // ------------------------------------------------------------------
    // Activations & pointwise nonlinearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(gelu_fwd);
        self.push(Op::Gelu(a), v)
    }

    /// Elementwise absolute value (STE-free; exact sign gradient).
    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::abs);
        self.push(Op::Abs(a), v)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x * x);
        self.push(Op::Square(a), v)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::sqrt);
        self.push(Op::Sqrt(a), v)
    }

    // ------------------------------------------------------------------
    // Broadcast bias
    // ------------------------------------------------------------------

    /// `x + b` where `b` has the size of `x`'s last axis.
    pub fn add_bias(&mut self, x: NodeId, b: NodeId) -> NodeId {
        let xv = self.value(x);
        let bv = self.value(b);
        let n = *xv.dims().last().expect("non-empty");
        assert_eq!(bv.numel(), n, "bias length must match last axis");
        let mut out = xv.clone();
        for chunk in out.data_mut().chunks_exact_mut(n) {
            for (o, &bb) in chunk.iter_mut().zip(bv.data()) {
                *o += bb;
            }
        }
        self.push(Op::AddBiasLastDim(x, b), out)
    }

    /// `x + b` where `x` is NCHW and `b` has length C.
    pub fn add_bias_channel(&mut self, x: NodeId, b: NodeId) -> NodeId {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(xv.shape().rank(), 4, "add_bias_channel expects NCHW");
        let dims = xv.dims().to_vec();
        let (n, c, hw) = (dims[0], dims[1], dims[2] * dims[3]);
        assert_eq!(bv.numel(), c, "bias length must match channel count");
        let mut out = xv.clone();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                let bb = bv.data()[ci];
                for v in &mut out.data_mut()[base..base + hw] {
                    *v += bb;
                }
            }
        }
        self.push(Op::AddBiasChannel(x, b), out)
    }

    // ------------------------------------------------------------------
    // Normalization & softmax
    // ------------------------------------------------------------------

    /// Numerically-stable softmax over the last axis.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let v = softmax_last_dim(self.value(a));
        self.push(Op::SoftmaxLastDim(a), v)
    }

    /// Layer normalization over the last axis with affine parameters.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let xv = self.value(x);
        let d = *xv.dims().last().expect("non-empty");
        assert_eq!(self.value(gamma).numel(), d, "gamma length mismatch");
        assert_eq!(self.value(beta).numel(), d, "beta length mismatch");
        let rows = xv.numel() / d;
        let mut xhat = Tensor::zeros(xv.dims());
        let mut inv_std = vec![0.0f32; rows];
        let gv = self.value(gamma).data().to_vec();
        let bv = self.value(beta).data().to_vec();
        let mut out = Tensor::zeros(xv.dims());
        for (r, istd_slot) in inv_std.iter_mut().enumerate() {
            let src = &xv.data()[r * d..(r + 1) * d];
            let mean = src.iter().sum::<f32>() / d as f32;
            let var = src.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            *istd_slot = istd;
            for j in 0..d {
                let xh = (src[j] - mean) * istd;
                xhat.data_mut()[r * d + j] = xh;
                out.data_mut()[r * d + j] = xh * gv[j] + bv[j];
            }
        }
        self.push(
            Op::LayerNormLastDim {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            },
            out,
        )
    }

    /// Batch normalization over NCHW with affine parameters, using batch
    /// statistics. Running-statistics bookkeeping lives in the layer; this op
    /// also returns the per-channel batch mean/var so the layer can update
    /// them.
    pub fn batch_norm2d(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    ) -> (NodeId, Vec<f32>, Vec<f32>) {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 4, "batch_norm2d expects NCHW");
        let dims = xv.dims().to_vec();
        let (n, c, hw) = (dims[0], dims[1], dims[2] * dims[3]);
        let count = (n * hw) as f32;
        let gv = self.value(gamma).data().to_vec();
        let bv = self.value(beta).data().to_vec();

        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for ci in 0..c {
            let mut sum = 0.0;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                sum += xv.data()[base..base + hw].iter().sum::<f32>();
            }
            mean[ci] = sum / count;
            let mut sq = 0.0;
            for ni in 0..n {
                let base = (ni * c + ci) * hw;
                sq += xv.data()[base..base + hw]
                    .iter()
                    .map(|&v| (v - mean[ci]) * (v - mean[ci]))
                    .sum::<f32>();
            }
            var[ci] = sq / count;
        }

        let mut xhat = Tensor::zeros(&dims);
        let mut out = Tensor::zeros(&dims);
        let mut inv_std = vec![0.0f32; c];
        for ci in 0..c {
            inv_std[ci] = 1.0 / (var[ci] + eps).sqrt();
        }
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                for j in 0..hw {
                    let xh = (xv.data()[base + j] - mean[ci]) * inv_std[ci];
                    xhat.data_mut()[base + j] = xh;
                    out.data_mut()[base + j] = xh * gv[ci] + bv[ci];
                }
            }
        }
        let node = self.push(
            Op::BatchNorm2d {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            },
            out,
        );
        (node, mean, var)
    }

    /// Frozen-statistics batch norm (inference mode): an affine transform per
    /// channel using running statistics. Differentiable with respect to `x`,
    /// `gamma`, `beta` through ordinary ops.
    pub fn batch_norm2d_inference(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        running_mean: &[f32],
        running_var: &[f32],
        eps: f32,
    ) -> NodeId {
        // scale = gamma / sqrt(var + eps); shift = beta - mean * scale.
        let gv = self.value(gamma).data().to_vec();
        let bv = self.value(beta).data().to_vec();
        let c = gv.len();
        let scale: Vec<f32> = (0..c)
            .map(|i| gv[i] / (running_var[i] + eps).sqrt())
            .collect();
        let shift: Vec<f32> = (0..c).map(|i| bv[i] - running_mean[i] * scale[i]).collect();
        // Implemented as x * scale[c] + shift[c] via custom inline math:
        // channelwise scale uses mul with a broadcast input tensor.
        let xv = self.value(x);
        let dims = xv.dims().to_vec();
        let mut scale_t = Tensor::zeros(&dims);
        let mut shift_t = Tensor::zeros(&dims);
        let (n, hw) = (dims[0], dims[2] * dims[3]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                scale_t.data_mut()[base..base + hw].fill(scale[ci]);
                shift_t.data_mut()[base..base + hw].fill(shift[ci]);
            }
        }
        let s = self.input(scale_t);
        let sh = self.input(shift_t);
        let scaled = self.mul(x, s);
        self.add(scaled, sh)
    }

    // ------------------------------------------------------------------
    // Convolution & pooling plumbing
    // ------------------------------------------------------------------

    /// `im2col` patch extraction (NCHW → patch matrix).
    pub fn im2col(&mut self, x: NodeId, geom: Conv2dGeometry) -> NodeId {
        let batch = self.value(x).dims()[0];
        let v = im2col(self.value(x), &geom);
        self.push(Op::Im2col { x, geom, batch }, v)
    }

    /// 2-D max pooling with square kernel and stride equal to the kernel.
    pub fn max_pool2d(&mut self, x: NodeId, kernel: usize) -> NodeId {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 4, "max_pool2d expects NCHW");
        let dims = xv.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert!(
            h % kernel == 0 && w % kernel == 0,
            "pool kernel must divide spatial dims"
        );
        let (oh, ow) = (h / kernel, w / kernel);
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                let idx = base + (oy * kernel + ky) * w + (ox * kernel + kx);
                                let v = xv.data()[idx];
                                if v > out[oidx] {
                                    out[oidx] = v;
                                    argmax[oidx] = idx;
                                }
                            }
                        }
                    }
                }
            }
        }
        let in_dims = [n, c, h, w];
        let value = Tensor::from_vec(out, &[n, c, oh, ow]);
        self.push(Op::MaxPool2d { x, in_dims, argmax }, value)
    }

    /// Global average pooling: NCHW → `[N, C]`.
    pub fn global_avg_pool(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 4, "global_avg_pool expects NCHW");
        let dims = xv.dims();
        let (n, c, hw) = (dims[0], dims[1], dims[2] * dims[3]);
        let mut out = vec![0.0f32; n * c];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = xv.data()[i * hw..(i + 1) * hw].iter().sum::<f32>() / hw as f32;
        }
        let value = Tensor::from_vec(out, &[n, c]);
        self.push(Op::GlobalAvgPool(x), value)
    }

    // ------------------------------------------------------------------
    // Losses & reductions
    // ------------------------------------------------------------------

    /// Mean cross-entropy of `logits` (`[N, C]`) against integer labels.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the label count.
    pub fn cross_entropy(&mut self, logits: NodeId, labels: &[usize]) -> NodeId {
        let lv = self.value(logits);
        assert_eq!(lv.shape().rank(), 2, "cross_entropy expects [N, C] logits");
        let (n, c) = (lv.dims()[0], lv.dims()[1]);
        assert_eq!(n, labels.len(), "label count mismatch");
        let sm = softmax_last_dim(lv);
        let mut loss = 0.0f32;
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < c, "label {label} out of range");
            loss -= (sm.data()[i * c + label]).max(1e-12).ln();
        }
        loss /= n as f32;
        self.push(
            Op::CrossEntropyLogits {
                logits,
                labels: labels.to_vec(),
                softmax: sm,
            },
            Tensor::scalar(loss),
        )
    }

    /// Mean squared error between two same-shape nodes (scalar output).
    pub fn mse_loss(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let d = self.value(a).sub(self.value(b));
        let loss = d.norm_sq() / d.numel() as f32;
        self.push(Op::MseLoss(a, b), Tensor::scalar(loss))
    }

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(a).mean());
        self.push(Op::MeanAll(a), v)
    }

    /// Mean over the last axis: `[.., d] → [..]`.
    pub fn mean_last_axis_node(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).mean_last_axis();
        self.push(Op::MeanLastAxis(a), v)
    }

    // ------------------------------------------------------------------
    // Embedding, attention plumbing, dropout, stop-gradient
    // ------------------------------------------------------------------

    /// Gathers rows of `table` (`[V, D]`) by token id → `[ids.len(), D]`.
    pub fn embedding(&mut self, table: NodeId, ids: &[usize]) -> NodeId {
        let tv = self.value(table);
        assert_eq!(tv.shape().rank(), 2, "embedding table must be [V, D]");
        let (v, d) = (tv.dims()[0], tv.dims()[1]);
        let mut out = vec![0.0f32; ids.len() * d];
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < v, "token id {id} out of vocabulary of size {v}");
            out[i * d..(i + 1) * d].copy_from_slice(&tv.data()[id * d..(id + 1) * d]);
        }
        let value = Tensor::from_vec(out, &[ids.len(), d]);
        self.push(
            Op::Embedding {
                table,
                ids: ids.to_vec(),
            },
            value,
        )
    }

    /// `[B, T, H·dh] → [B·H, T, dh]` head split for attention.
    pub fn split_heads(&mut self, x: NodeId, heads: usize) -> NodeId {
        let v = split_heads_fwd(self.value(x), heads);
        self.push(Op::SplitHeads { x, heads }, v)
    }

    /// `[B·H, T, dh] → [B, T, H·dh]` inverse of [`Graph::split_heads`].
    pub fn merge_heads(&mut self, x: NodeId, heads: usize) -> NodeId {
        let v = merge_heads_fwd(self.value(x), heads);
        self.push(Op::MergeHeads { x, heads }, v)
    }

    /// Inverted dropout with keep-probability `1 - p`. Identity when the tape
    /// is in eval mode.
    pub fn dropout<R: rand::Rng>(&mut self, x: NodeId, p: f32, rng: &mut R) -> NodeId {
        if !self.train || p <= 0.0 {
            return x;
        }
        let keep = 1.0 - p;
        let xv = self.value(x);
        let mask: Vec<f32> = (0..xv.numel())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = xv.clone();
        for (o, &m) in out.data_mut().iter_mut().zip(mask.iter()) {
            *o *= m;
        }
        self.push(Op::Dropout { x, mask }, out)
    }

    /// Identity forward, zero backward — the `SG(·)` operator of the
    /// LUTBoost reconstruction loss.
    pub fn stop_gradient(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).clone();
        self.push(Op::StopGradient(x), v)
    }

    /// Registers a caller-computed forward value with a custom backward rule.
    pub fn custom(&mut self, parents: &[NodeId], value: Tensor, op: Box<dyn CustomOp>) -> NodeId {
        self.push(
            Op::Custom {
                parents: parents.to_vec(),
                op,
            },
            value,
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (which must be scalar).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element node.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss"
        );
        self.nodes[loss.0].grad = Some(Tensor::ones(&[1]));

        for i in (0..=loss.0).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            // Split borrow: read-only view of earlier nodes + grad sink.
            let contributions = self.backward_one(i, &grad);
            for (pid, g) in contributions {
                match &mut self.nodes[pid.0].grad {
                    Some(existing) => existing.add_mut(&g),
                    slot @ None => *slot = Some(g),
                }
            }
        }
    }

    /// Flushes parameter-leaf gradients into the [`ParamSet`].
    ///
    /// Also advances the set's change counter ([`ParamSet::version`]): a
    /// gradient flush precedes an optimizer step, so anything caching
    /// artifacts derived from the current values is about to go stale.
    pub fn apply_param_grads(&self, ps: &mut ParamSet) {
        for node in &self.nodes {
            if let (Op::Param(pid), Some(grad)) = (&node.op, &node.grad) {
                ps.accumulate_grad(*pid, grad);
            }
        }
        ps.bump_version();
    }

    fn backward_one(&self, i: usize, grad: &Tensor) -> Vec<(NodeId, Tensor)> {
        let node = &self.nodes[i];
        let val = |id: NodeId| &self.nodes[id.0].value;
        match &node.op {
            Op::Input | Op::Param(_) => vec![],
            Op::Add(a, b) => vec![(*a, grad.clone()), (*b, grad.clone())],
            Op::Sub(a, b) => vec![(*a, grad.clone()), (*b, grad.scale(-1.0))],
            Op::Mul(a, b) => vec![(*a, grad.mul(val(*b))), (*b, grad.mul(val(*a)))],
            Op::Div(a, b) => {
                let bv = val(*b);
                let ga = grad.div(bv);
                let gb = grad.mul(val(*a)).div(bv).div(bv).scale(-1.0);
                vec![(*a, ga), (*b, gb)]
            }
            Op::Neg(a) => vec![(*a, grad.scale(-1.0))],
            Op::Scale(a, k) => vec![(*a, grad.scale(*k))],
            Op::AddScalar(a, _) => vec![(*a, grad.clone())],
            Op::Matmul(a, b) => {
                let ga = grad.matmul(&val(*b).transpose());
                let gb = val(*a).transpose().matmul(grad);
                vec![(*a, ga), (*b, gb)]
            }
            Op::Bmm(a, b) => {
                let ga = grad.bmm(&val(*b).transpose_last2());
                let gb = val(*a).transpose_last2().bmm(grad);
                vec![(*a, ga), (*b, gb)]
            }
            Op::Transpose(a) => vec![(*a, grad.transpose())],
            Op::TransposeLast2(a) => vec![(*a, grad.transpose_last2())],
            Op::Reshape(a, old) => vec![(*a, grad.reshape(old))],
            Op::Relu(a) => {
                let g = val(*a).zip_with(grad, |x, g| if x > 0.0 { g } else { 0.0 });
                vec![(*a, g)]
            }
            Op::Gelu(a) => {
                let g = val(*a).zip_with(grad, |x, g| g * gelu_bwd(x));
                vec![(*a, g)]
            }
            Op::Abs(a) => {
                let g = val(*a).zip_with(grad, |x, g| if x >= 0.0 { g } else { -g });
                vec![(*a, g)]
            }
            Op::Square(a) => {
                let g = val(*a).zip_with(grad, |x, g| 2.0 * x * g);
                vec![(*a, g)]
            }
            Op::Sqrt(a) => {
                let g = node.value.zip_with(grad, |y, g| g / (2.0 * y.max(1e-12)));
                vec![(*a, g)]
            }
            Op::AddBiasLastDim(x, b) => {
                let n = self.nodes[b.0].value.numel();
                let mut gb = vec![0.0f32; n];
                for chunk in grad.data().chunks_exact(n) {
                    for (o, &g) in gb.iter_mut().zip(chunk) {
                        *o += g;
                    }
                }
                vec![(*x, grad.clone()), (*b, Tensor::from_vec(gb, &[n]))]
            }
            Op::AddBiasChannel(x, b) => {
                let dims = node.value.dims().to_vec();
                let (n, c, hw) = (dims[0], dims[1], dims[2] * dims[3]);
                let mut gb = vec![0.0f32; c];
                for ni in 0..n {
                    for (ci, slot) in gb.iter_mut().enumerate() {
                        let base = (ni * c + ci) * hw;
                        *slot += grad.data()[base..base + hw].iter().sum::<f32>();
                    }
                }
                vec![(*x, grad.clone()), (*b, Tensor::from_vec(gb, &[c]))]
            }
            Op::SoftmaxLastDim(a) => {
                // dx = y ⊙ (g − Σ g⊙y) per row.
                let y = &node.value;
                let d = *y.dims().last().expect("non-empty");
                let mut out = Tensor::zeros(y.dims());
                for (r, (yc, gc)) in y
                    .data()
                    .chunks_exact(d)
                    .zip(grad.data().chunks_exact(d))
                    .enumerate()
                {
                    let dot: f32 = yc.iter().zip(gc).map(|(&a, &b)| a * b).sum();
                    for j in 0..d {
                        out.data_mut()[r * d + j] = yc[j] * (gc[j] - dot);
                    }
                }
                vec![(*a, out)]
            }
            Op::LayerNormLastDim {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            } => {
                let d = *xhat.dims().last().expect("non-empty");
                let rows = xhat.numel() / d;
                let gv = val(*gamma).data();
                let mut gx = Tensor::zeros(xhat.dims());
                let mut ggamma = vec![0.0f32; d];
                let mut gbeta = vec![0.0f32; d];
                for (r, &istd) in inv_std.iter().enumerate().take(rows) {
                    let xh = &xhat.data()[r * d..(r + 1) * d];
                    let go = &grad.data()[r * d..(r + 1) * d];
                    let mut sum_gy = 0.0f32;
                    let mut sum_gy_xh = 0.0f32;
                    for j in 0..d {
                        let gy = go[j] * gv[j];
                        sum_gy += gy;
                        sum_gy_xh += gy * xh[j];
                        ggamma[j] += go[j] * xh[j];
                        gbeta[j] += go[j];
                    }
                    for j in 0..d {
                        let gy = go[j] * gv[j];
                        gx.data_mut()[r * d + j] =
                            istd / d as f32 * (d as f32 * gy - sum_gy - xh[j] * sum_gy_xh);
                    }
                }
                vec![
                    (*x, gx),
                    (*gamma, Tensor::from_vec(ggamma, &[d])),
                    (*beta, Tensor::from_vec(gbeta, &[d])),
                ]
            }
            Op::BatchNorm2d {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            } => {
                let dims = xhat.dims().to_vec();
                let (n, c, hw) = (dims[0], dims[1], dims[2] * dims[3]);
                let count = (n * hw) as f32;
                let gv = val(*gamma).data();
                let mut ggamma = vec![0.0f32; c];
                let mut gbeta = vec![0.0f32; c];
                let mut sum_gy = vec![0.0f32; c];
                let mut sum_gy_xh = vec![0.0f32; c];
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        for j in 0..hw {
                            let go = grad.data()[base + j];
                            let xh = xhat.data()[base + j];
                            ggamma[ci] += go * xh;
                            gbeta[ci] += go;
                            let gy = go * gv[ci];
                            sum_gy[ci] += gy;
                            sum_gy_xh[ci] += gy * xh;
                        }
                    }
                }
                let mut gx = Tensor::zeros(&dims);
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * hw;
                        for j in 0..hw {
                            let go = grad.data()[base + j];
                            let xh = xhat.data()[base + j];
                            let gy = go * gv[ci];
                            gx.data_mut()[base + j] = inv_std[ci] / count
                                * (count * gy - sum_gy[ci] - xh * sum_gy_xh[ci]);
                        }
                    }
                }
                vec![
                    (*x, gx),
                    (*gamma, Tensor::from_vec(ggamma, &[c])),
                    (*beta, Tensor::from_vec(gbeta, &[c])),
                ]
            }
            Op::Im2col { x, geom, batch } => {
                vec![(*x, col2im(grad, geom, *batch))]
            }
            Op::MaxPool2d { x, in_dims, argmax } => {
                let mut gx = Tensor::zeros(in_dims);
                for (o, &src) in argmax.iter().enumerate() {
                    gx.data_mut()[src] += grad.data()[o];
                }
                vec![(*x, gx)]
            }
            Op::GlobalAvgPool(x) => {
                let dims = val(*x).dims().to_vec();
                let (n, c, hw) = (dims[0], dims[1], dims[2] * dims[3]);
                let mut gx = Tensor::zeros(&dims);
                for i in 0..n * c {
                    let g = grad.data()[i] / hw as f32;
                    gx.data_mut()[i * hw..(i + 1) * hw].fill(g);
                }
                vec![(*x, gx)]
            }
            Op::CrossEntropyLogits {
                logits,
                labels,
                softmax,
            } => {
                let (n, c) = (softmax.dims()[0], softmax.dims()[1]);
                let g = grad.data()[0] / n as f32;
                let mut gx = softmax.scale(g);
                for (i, &label) in labels.iter().enumerate() {
                    gx.data_mut()[i * c + label] -= g;
                }
                vec![(*logits, gx)]
            }
            Op::MseLoss(a, b) => {
                let diff = val(*a).sub(val(*b));
                let k = 2.0 * grad.data()[0] / diff.numel() as f32;
                vec![(*a, diff.scale(k)), (*b, diff.scale(-k))]
            }
            Op::SumAll(a) => {
                let g = Tensor::full(val(*a).dims(), grad.data()[0]);
                vec![(*a, g)]
            }
            Op::MeanAll(a) => {
                let n = val(*a).numel() as f32;
                let g = Tensor::full(val(*a).dims(), grad.data()[0] / n);
                vec![(*a, g)]
            }
            Op::MeanLastAxis(a) => {
                let dims = val(*a).dims().to_vec();
                let d = *dims.last().expect("non-empty");
                let mut gx = Tensor::zeros(&dims);
                for (r, g) in grad.data().iter().enumerate() {
                    gx.data_mut()[r * d..(r + 1) * d].fill(g / d as f32);
                }
                vec![(*a, gx)]
            }
            Op::Embedding { table, ids } => {
                let tv = val(*table);
                let d = tv.dims()[1];
                let mut gt = Tensor::zeros(tv.dims());
                for (i, &id) in ids.iter().enumerate() {
                    for j in 0..d {
                        gt.data_mut()[id * d + j] += grad.data()[i * d + j];
                    }
                }
                vec![(*table, gt)]
            }
            Op::SplitHeads { x, heads } => {
                vec![(*x, merge_heads_fwd(grad, *heads))]
            }
            Op::MergeHeads { x, heads } => {
                vec![(*x, split_heads_fwd(grad, *heads))]
            }
            Op::Dropout { x, mask } => {
                let mut g = grad.clone();
                for (gv, &m) in g.data_mut().iter_mut().zip(mask.iter()) {
                    *gv *= m;
                }
                vec![(*x, g)]
            }
            Op::StopGradient(_) => vec![],
            Op::Custom { parents, op } => {
                let parent_values: Vec<&Tensor> = parents.iter().map(|p| val(*p)).collect();
                let grads = op.backward(grad, &parent_values, &node.value);
                assert_eq!(
                    grads.len(),
                    parents.len(),
                    "custom op `{}` returned wrong gradient count",
                    op.name()
                );
                parents
                    .iter()
                    .zip(grads)
                    .filter_map(|(p, g)| g.map(|g| (*p, g)))
                    .collect()
            }
        }
    }
}

fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

fn softmax_last_dim(x: &Tensor) -> Tensor {
    let d = *x.dims().last().expect("non-empty");
    let mut out = Tensor::zeros(x.dims());
    for (r, chunk) in x.data().chunks_exact(d).enumerate() {
        let m = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (j, &cj) in chunk.iter().enumerate() {
            let e = (cj - m).exp();
            out.data_mut()[r * d + j] = e;
            sum += e;
        }
        for j in 0..d {
            out.data_mut()[r * d + j] /= sum;
        }
    }
    out
}

fn split_heads_fwd(x: &Tensor, heads: usize) -> Tensor {
    assert_eq!(x.shape().rank(), 3, "split_heads expects [B, T, D]");
    let (b, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    assert_eq!(d % heads, 0, "model dim not divisible by head count");
    let dh = d / heads;
    let mut out = vec![0.0f32; b * t * d];
    for bi in 0..b {
        for ti in 0..t {
            for h in 0..heads {
                let src = (bi * t + ti) * d + h * dh;
                let dst = ((bi * heads + h) * t + ti) * dh;
                out[dst..dst + dh].copy_from_slice(&x.data()[src..src + dh]);
            }
        }
    }
    Tensor::from_vec(out, &[b * heads, t, dh])
}

fn merge_heads_fwd(x: &Tensor, heads: usize) -> Tensor {
    assert_eq!(x.shape().rank(), 3, "merge_heads expects [B·H, T, dh]");
    let (bh, t, dh) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    assert_eq!(bh % heads, 0, "batch·head dim not divisible by head count");
    let b = bh / heads;
    let d = dh * heads;
    let mut out = vec![0.0f32; b * t * d];
    for bi in 0..b {
        for h in 0..heads {
            for ti in 0..t {
                let src = ((bi * heads + h) * t + ti) * dh;
                let dst = (bi * t + ti) * d + h * dh;
                out[dst..dst + dh].copy_from_slice(&x.data()[src..src + dh]);
            }
        }
    }
    Tensor::from_vec(out, &[b, t, d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerically checks d(loss)/d(x) for a graph builder `f` that maps an
    /// input node to a scalar loss node.
    fn grad_check(x0: &Tensor, f: impl Fn(&mut Graph, NodeId) -> NodeId) {
        let mut g = Graph::new(true);
        let x = g.input(x0.clone());
        let loss = f(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("input grad").clone();

        let eps = 1e-3f32;
        for i in 0..x0.numel() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            let lp = {
                let mut g = Graph::new(true);
                let x = g.input(plus);
                let l = f(&mut g, x);
                g.value(l).data()[0]
            };
            let lm = {
                let mut g = Graph::new(true);
                let x = g.input(minus);
                let l = f(&mut g, x);
                g.value(l).data()[0]
            };
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic={a} numeric={numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul_sum() {
        let mut rng = StdRng::seed_from_u64(11);
        let x0 = Tensor::randn(&mut rng, &[3, 4], 1.0);
        let w = Tensor::randn(&mut rng, &[4, 2], 1.0);
        grad_check(&x0, |g, x| {
            let wn = g.input(w.clone());
            let y = g.matmul(x, wn);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_relu_square() {
        let x0 = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -0.3], &[4]);
        grad_check(&x0, |g, x| {
            let r = g.relu(x);
            let s = g.square(r);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_gelu() {
        let x0 = Tensor::from_vec(vec![-2.0, -0.5, 0.1, 1.5], &[4]);
        grad_check(&x0, |g, x| {
            let y = g.gelu(x);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_softmax_weighted() {
        let mut rng = StdRng::seed_from_u64(12);
        let x0 = Tensor::randn(&mut rng, &[2, 5], 1.0);
        let w = Tensor::randn(&mut rng, &[2, 5], 1.0);
        grad_check(&x0, |g, x| {
            let s = g.softmax(x);
            let wn = g.input(w.clone());
            let p = g.mul(s, wn);
            g.sum_all(p)
        });
    }

    #[test]
    fn grad_layer_norm() {
        let mut rng = StdRng::seed_from_u64(13);
        let x0 = Tensor::randn(&mut rng, &[3, 6], 1.0);
        let gamma = Tensor::rand_uniform(&mut rng, &[6], 0.5, 1.5);
        let beta = Tensor::randn(&mut rng, &[6], 0.1);
        let w = Tensor::randn(&mut rng, &[3, 6], 1.0);
        grad_check(&x0, |g, x| {
            let ga = g.input(gamma.clone());
            let be = g.input(beta.clone());
            let y = g.layer_norm(x, ga, be, 1e-5);
            let wn = g.input(w.clone());
            let p = g.mul(y, wn);
            g.sum_all(p)
        });
    }

    #[test]
    fn grad_batch_norm() {
        let mut rng = StdRng::seed_from_u64(14);
        let x0 = Tensor::randn(&mut rng, &[2, 3, 2, 2], 1.0);
        let gamma = Tensor::rand_uniform(&mut rng, &[3], 0.5, 1.5);
        let beta = Tensor::randn(&mut rng, &[3], 0.1);
        let w = Tensor::randn(&mut rng, &[2, 3, 2, 2], 1.0);
        grad_check(&x0, |g, x| {
            let ga = g.input(gamma.clone());
            let be = g.input(beta.clone());
            let (y, _, _) = g.batch_norm2d(x, ga, be, 1e-5);
            let wn = g.input(w.clone());
            let p = g.mul(y, wn);
            g.sum_all(p)
        });
    }

    #[test]
    fn grad_cross_entropy() {
        let mut rng = StdRng::seed_from_u64(15);
        let x0 = Tensor::randn(&mut rng, &[4, 3], 1.0);
        grad_check(&x0, |g, x| g.cross_entropy(x, &[0, 2, 1, 1]));
    }

    #[test]
    fn grad_im2col_conv() {
        let mut rng = StdRng::seed_from_u64(16);
        let x0 = Tensor::randn(&mut rng, &[1, 2, 4, 4], 1.0);
        let geom = Conv2dGeometry::new(2, 3, (4, 4), (3, 3), 1, 1);
        let w = Tensor::randn(&mut rng, &[geom.gemm_k(), 3], 0.5);
        grad_check(&x0, |g, x| {
            let cols = g.im2col(x, geom);
            let wn = g.input(w.clone());
            let y = g.matmul(cols, wn);
            let s = g.square(y);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_max_pool() {
        let mut rng = StdRng::seed_from_u64(17);
        let x0 = Tensor::randn(&mut rng, &[1, 2, 4, 4], 1.0);
        grad_check(&x0, |g, x| {
            let p = g.max_pool2d(x, 2);
            let s = g.square(p);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_global_avg_pool() {
        let mut rng = StdRng::seed_from_u64(18);
        let x0 = Tensor::randn(&mut rng, &[2, 3, 2, 2], 1.0);
        grad_check(&x0, |g, x| {
            let p = g.global_avg_pool(x);
            let s = g.square(p);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_bmm_attention_path() {
        let mut rng = StdRng::seed_from_u64(19);
        let x0 = Tensor::randn(&mut rng, &[2, 3, 4], 1.0);
        let k = Tensor::randn(&mut rng, &[2, 3, 4], 1.0);
        grad_check(&x0, |g, x| {
            let kn = g.input(k.clone());
            let kt = g.transpose_last2(kn);
            let scores = g.bmm(x, kt);
            let att = g.softmax(scores);
            let out = g.bmm(att, kn);
            let s = g.square(out);
            g.sum_all(s)
        });
    }

    #[test]
    fn grad_split_merge_heads_roundtrip() {
        let mut rng = StdRng::seed_from_u64(20);
        let x0 = Tensor::randn(&mut rng, &[2, 3, 8], 1.0);
        let w = Tensor::randn(&mut rng, &[2, 3, 8], 1.0);
        grad_check(&x0, |g, x| {
            let s = g.split_heads(x, 2);
            let m = g.merge_heads(s, 2);
            let wn = g.input(w.clone());
            let p = g.mul(m, wn);
            g.sum_all(p)
        });
    }

    #[test]
    fn grad_embedding() {
        let mut rng = StdRng::seed_from_u64(21);
        let table = Tensor::randn(&mut rng, &[5, 3], 1.0);
        let mut ps = ParamSet::new();
        let tid = ps.add("emb", table);
        let mut g = Graph::new(true);
        let tn = g.param(&ps, tid);
        let e = g.embedding(tn, &[1, 1, 4]);
        let s = g.square(e);
        let loss = g.sum_all(s);
        g.backward(loss);
        g.apply_param_grads(&mut ps);
        // Row 1 gathered twice → grad = 2·(2x) = 4x; row 4 once → 2x; others 0.
        let gt = ps.grad(tid);
        let tv = ps.value(tid);
        for j in 0..3 {
            assert!((gt.at(&[1, j]) - 4.0 * tv.at(&[1, j])).abs() < 1e-4);
            assert!((gt.at(&[4, j]) - 2.0 * tv.at(&[4, j])).abs() < 1e-4);
            assert_eq!(gt.at(&[0, j]), 0.0);
        }
    }

    #[test]
    fn stop_gradient_blocks_flow() {
        let mut g = Graph::new(true);
        let x = g.input(Tensor::scalar(2.0));
        let s = g.stop_gradient(x);
        let y = g.square(s);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert!(g.grad(x).is_none(), "gradient leaked through SG");
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut g = Graph::new(false);
        let x = g.input(Tensor::ones(&[8]));
        let y = g.dropout(x, 0.5, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_train_mode_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut g = Graph::new(true);
        let x = g.input(Tensor::ones(&[100_000]));
        let y = g.dropout(x, 0.3, &mut rng);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn param_grads_route_to_paramset() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let mut g = Graph::new(true);
        let wn = g.param(&ps, w);
        let s = g.square(wn);
        let loss = g.sum_all(s);
        g.backward(loss);
        g.apply_param_grads(&mut ps);
        assert_eq!(ps.grad(w).data(), &[2.0, 4.0]);
    }

    #[test]
    fn bias_broadcast_grad() {
        let mut rng = StdRng::seed_from_u64(24);
        let x0 = Tensor::randn(&mut rng, &[3, 4], 1.0);
        let b = Tensor::randn(&mut rng, &[4], 1.0);
        grad_check(&x0, |g, x| {
            let bn = g.input(b.clone());
            let y = g.add_bias(x, bn);
            let s = g.square(y);
            g.sum_all(s)
        });
    }
}
