//! Neural-network layers over the autograd [`Graph`].
//!
//! Every layer registers its parameters in a shared [`ParamSet`] at
//! construction time and holds only [`ParamId`]s, so models are cheap to
//! clone and the optimizer sees a flat parameter list.

use std::cell::RefCell;

use lutdla_tensor::{Conv2dGeometry, Tensor};
use rand::Rng;

use crate::graph::{Graph, NodeId};
use crate::params::{ParamId, ParamSet};

/// A component with trainable parameters that maps one node to another.
///
/// `forward` takes `&mut Graph` (the tape) and `&ParamSet` (current values).
pub trait Module {
    /// Records the layer's computation on the tape.
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId;

    /// All parameters owned by this layer (and its children).
    fn params(&self) -> Vec<ParamId>;
}

/// Fully connected layer: `y = x·W + b` with `W: [in, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a linear layer with Kaiming fan-in initialisation.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
    ) -> Self {
        let weight = ps.add(
            format!("{name}.weight"),
            Tensor::kaiming(rng, &[in_features, out_features], in_features),
        );
        let bias = bias.then(|| ps.add(format!("{name}.bias"), Tensor::zeros(&[out_features])));
        Self {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter handle.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// The bias parameter handle, if present.
    pub fn bias(&self) -> Option<ParamId> {
        self.bias
    }
}

impl Module for Linear {
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        let w = g.param(ps, self.weight);
        let y = g.matmul(x, w);
        match self.bias {
            Some(b) => {
                let bn = g.param(ps, b);
                g.add_bias(y, bn)
            }
            None => y,
        }
    }

    fn params(&self) -> Vec<ParamId> {
        let mut p = vec![self.weight];
        p.extend(self.bias);
        p
    }
}

/// 2-D convolution implemented as `im2col` + GEMM.
///
/// The weight is stored GEMM-ready as `[cin·kh·kw, cout]`, which is also the
/// layout LUTBoost quantizes.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: ParamId,
    bias: Option<ParamId>,
    geom: Conv2dGeometry,
}

impl Conv2d {
    /// Creates a convolution for a fixed input geometry.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        geom: Conv2dGeometry,
        bias: bool,
    ) -> Self {
        let k = geom.gemm_k();
        let weight = ps.add(
            format!("{name}.weight"),
            Tensor::kaiming(rng, &[k, geom.out_channels], k),
        );
        let bias =
            bias.then(|| ps.add(format!("{name}.bias"), Tensor::zeros(&[geom.out_channels])));
        Self { weight, bias, geom }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// The GEMM-layout weight handle (`[cin·kh·kw, cout]`).
    pub fn weight(&self) -> ParamId {
        self.weight
    }
}

impl Module for Conv2d {
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        let batch = g.value(x).dims()[0];
        let cols = g.im2col(x, self.geom);
        let w = g.param(ps, self.weight);
        let mut y = g.matmul(cols, w); // [batch·oh·ow, cout]
        if let Some(b) = self.bias {
            let bn = g.param(ps, b);
            y = g.add_bias(y, bn);
        }
        // [batch·oh·ow, cout] → NCHW requires a (pixel, channel) transpose.
        let (oh, ow) = self.geom.out_hw();
        let cout = self.geom.out_channels;
        nchw_from_gemm(g, y, batch, cout, oh, ow)
    }

    fn params(&self) -> Vec<ParamId> {
        let mut p = vec![self.weight];
        p.extend(self.bias);
        p
    }
}

/// Rearranges GEMM conv output `[batch·oh·ow, cout]` into NCHW.
fn nchw_from_gemm(
    g: &mut Graph,
    y: NodeId,
    batch: usize,
    cout: usize,
    oh: usize,
    ow: usize,
) -> NodeId {
    // [batch·oh·ow, cout] → [batch, oh·ow, cout] → [batch, cout, oh·ow] → NCHW
    let r = g.reshape(y, &[batch, oh * ow, cout]);
    let t = g.transpose_last2(r);
    g.reshape(t, &[batch, cout, oh, ow])
}

/// Batch normalization over NCHW with running statistics for inference.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: ParamId,
    beta: ParamId,
    channels: usize,
    eps: f32,
    momentum: f32,
    running: RefCell<RunningStats>,
}

#[derive(Debug, Clone)]
struct RunningStats {
    mean: Vec<f32>,
    var: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(ps: &mut ParamSet, name: &str, channels: usize) -> Self {
        let gamma = ps.add(format!("{name}.gamma"), Tensor::ones(&[channels]));
        let beta = ps.add(format!("{name}.beta"), Tensor::zeros(&[channels]));
        Self {
            gamma,
            beta,
            channels,
            eps: 1e-5,
            momentum: 0.1,
            running: RefCell::new(RunningStats {
                mean: vec![0.0; channels],
                var: vec![1.0; channels],
            }),
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        let gamma = g.param(ps, self.gamma);
        let beta = g.param(ps, self.beta);
        if g.is_train() {
            let (y, mean, var) = g.batch_norm2d(x, gamma, beta, self.eps);
            let mut run = self.running.borrow_mut();
            for c in 0..self.channels {
                run.mean[c] = (1.0 - self.momentum) * run.mean[c] + self.momentum * mean[c];
                run.var[c] = (1.0 - self.momentum) * run.var[c] + self.momentum * var[c];
            }
            y
        } else {
            let run = self.running.borrow();
            g.batch_norm2d_inference(x, gamma, beta, &run.mean, &run.var, self.eps)
        }
    }

    fn params(&self) -> Vec<ParamId> {
        vec![self.gamma, self.beta]
    }
}

/// Layer normalization over the last axis.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer-norm for feature dimension `dim`.
    pub fn new(ps: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gamma = ps.add(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = ps.add(format!("{name}.beta"), Tensor::zeros(&[dim]));
        Self {
            gamma,
            beta,
            eps: 1e-5,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        let gamma = g.param(ps, self.gamma);
        let beta = g.param(ps, self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    fn params(&self) -> Vec<ParamId> {
        vec![self.gamma, self.beta]
    }
}

/// Token embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    dim: usize,
}

impl Embedding {
    /// Creates an embedding of `vocab` tokens into `dim` dimensions.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let table = ps.add(
            format!("{name}.table"),
            Tensor::randn(rng, &[vocab, dim], 0.02),
        );
        Self { table, dim }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a flat id list, producing `[ids.len(), dim]`.
    pub fn lookup(&self, g: &mut Graph, ps: &ParamSet, ids: &[usize]) -> NodeId {
        let t = g.param(ps, self.table);
        g.embedding(t, ids)
    }

    /// The table parameter handle.
    pub fn table(&self) -> ParamId {
        self.table
    }
}

/// Multi-head self-attention (bidirectional, no mask — sufficient for the
/// encoder-style GLUE-proxy workloads).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Fused QKV projection handles kept separate for LUTBoost conversion.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block with `heads` heads over model dim `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        dim: usize,
        heads: usize,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim must be divisible by heads");
        Self {
            wq: Linear::new(ps, rng, &format!("{name}.wq"), dim, dim, true),
            wk: Linear::new(ps, rng, &format!("{name}.wk"), dim, dim, true),
            wv: Linear::new(ps, rng, &format!("{name}.wv"), dim, dim, true),
            wo: Linear::new(ps, rng, &format!("{name}.wo"), dim, dim, true),
            heads,
            dim,
        }
    }

    /// Attention over `x: [B, T, D]` (passed as a rank-3 node).
    pub fn attend(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        let dims = g.value(x).dims().to_vec();
        let (b, t, d) = (dims[0], dims[1], dims[2]);
        assert_eq!(d, self.dim, "model dim mismatch");

        let flat = g.reshape(x, &[b * t, d]);
        let q = self.wq.forward(g, ps, flat);
        let k = self.wk.forward(g, ps, flat);
        let v = self.wv.forward(g, ps, flat);

        let q3 = g.reshape(q, &[b, t, d]);
        let k3 = g.reshape(k, &[b, t, d]);
        let v3 = g.reshape(v, &[b, t, d]);
        let qh = g.split_heads(q3, self.heads); // [B·H, T, dh]
        let kh = g.split_heads(k3, self.heads);
        let vh = g.split_heads(v3, self.heads);

        let kt = g.transpose_last2(kh);
        let scores = g.bmm(qh, kt);
        let dh = d / self.heads;
        let scaled = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let att = g.softmax(scaled);
        let ctx = g.bmm(att, vh); // [B·H, T, dh]
        let merged = g.merge_heads(ctx, self.heads); // [B, T, D]
        let mflat = g.reshape(merged, &[b * t, d]);
        let out = self.wo.forward(g, ps, mflat);
        g.reshape(out, &[b, t, d])
    }
}

impl Module for MultiHeadAttention {
    fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        self.attend(g, ps, x)
    }

    fn params(&self) -> Vec<ParamId> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(30);
        let mut ps = ParamSet::new();
        let l = Linear::new(&mut ps, &mut rng, "fc", 4, 3, true);
        let mut g = Graph::new(true);
        let x = g.input(Tensor::ones(&[2, 4]));
        let y = l.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).dims(), &[2, 3]);
        assert_eq!(l.params().len(), 2);
    }

    #[test]
    fn conv_output_is_nchw() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ps = ParamSet::new();
        let geom = Conv2dGeometry::new(3, 8, (8, 8), (3, 3), 1, 1);
        let c = Conv2d::new(&mut ps, &mut rng, "conv", geom, false);
        let mut g = Graph::new(true);
        let x = g.input(Tensor::ones(&[2, 3, 8, 8]));
        let y = c.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_channel_layout_correct() {
        // A conv whose weight extracts only channel 1 must reproduce the
        // input's channel-1 plane in every output channel position 0.
        let mut rng = StdRng::seed_from_u64(32);
        let mut ps = ParamSet::new();
        let geom = Conv2dGeometry::new(2, 1, (3, 3), (1, 1), 1, 0);
        let c = Conv2d::new(&mut ps, &mut rng, "conv", geom, false);
        // weight layout [cin·kh·kw, cout] = [2, 1]; select channel 1.
        *ps.value_mut(c.weight()) = Tensor::from_vec(vec![0.0, 1.0], &[2, 1]);
        let mut x = Tensor::zeros(&[1, 2, 3, 3]);
        for i in 0..9 {
            x.data_mut()[9 + i] = i as f32; // channel 1 plane = 0..9
        }
        let mut g = Graph::new(true);
        let xn = g.input(x);
        let y = c.forward(&mut g, &ps, xn);
        let yv = g.value(y);
        assert_eq!(yv.dims(), &[1, 1, 3, 3]);
        for i in 0..9 {
            assert_eq!(yv.data()[i], i as f32);
        }
    }

    #[test]
    fn batch_norm_normalizes() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut ps = ParamSet::new();
        let bn = BatchNorm2d::new(&mut ps, "bn", 2);
        let mut g = Graph::new(true);
        let x = g.input(Tensor::randn(&mut rng, &[4, 2, 3, 3], 5.0));
        let y = bn.forward(&mut g, &ps, x);
        let yv = g.value(y);
        // Per-channel mean ≈ 0, var ≈ 1.
        let hw = 9;
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..4 {
                let base = (n * 2 + c) * hw;
                vals.extend_from_slice(&yv.data()[base..base + hw]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean = {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var = {var}");
        }
    }

    #[test]
    fn attention_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(34);
        let mut ps = ParamSet::new();
        let mha = MultiHeadAttention::new(&mut ps, &mut rng, "attn", 8, 2);
        let mut g = Graph::new(true);
        let x = g.input(Tensor::randn(&mut rng, &[2, 5, 8], 1.0));
        let y = mha.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).dims(), &[2, 5, 8]);
        assert_eq!(mha.params().len(), 8);
    }

    #[test]
    fn attention_backward_reaches_all_params() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut ps = ParamSet::new();
        let mha = MultiHeadAttention::new(&mut ps, &mut rng, "attn", 8, 2);
        let mut g = Graph::new(true);
        let x = g.input(Tensor::randn(&mut rng, &[1, 4, 8], 1.0));
        let y = mha.forward(&mut g, &ps, x);
        let s = g.square(y);
        let loss = g.sum_all(s);
        g.backward(loss);
        g.apply_param_grads(&mut ps);
        for pid in mha.params() {
            assert!(ps.grad(pid).norm() > 0.0, "no grad for {}", ps.name(pid));
        }
    }

    #[test]
    fn embedding_lookup_shape() {
        let mut rng = StdRng::seed_from_u64(36);
        let mut ps = ParamSet::new();
        let emb = Embedding::new(&mut ps, &mut rng, "emb", 10, 4);
        let mut g = Graph::new(true);
        let e = emb.lookup(&mut g, &ps, &[0, 3, 9]);
        assert_eq!(g.value(e).dims(), &[3, 4]);
    }
}
