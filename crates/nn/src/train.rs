//! Generic training/evaluation loops shared by the baseline models and the
//! LUTBoost converter stages.

use lutdla_tensor::Tensor;

use crate::data::{ImageDataset, SeqDataset};
use crate::graph::{Graph, NodeId};
use crate::optim::{Adam, Sgd};
use crate::params::ParamSet;

/// A model that maps a batch of images to classification logits.
pub trait ImageModel {
    /// Builds the forward computation for `images` (NCHW) on the tape and
    /// returns the `[batch, classes]` logits node.
    fn logits(&self, g: &mut Graph, ps: &ParamSet, images: Tensor) -> NodeId;

    /// Optional auxiliary loss terms (e.g. LUTBoost's reconstruction loss)
    /// appended to the task loss. Default: none.
    fn aux_loss(&self, _g: &mut Graph, _ps: &ParamSet) -> Option<NodeId> {
        None
    }
}

/// A model that maps a batch of token sequences to classification logits.
pub trait SeqModel {
    /// Builds the forward computation for flat `tokens` (`batch × seq_len`
    /// ids) and returns the `[batch, classes]` logits node.
    fn logits(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        tokens: &[usize],
        batch: usize,
        seq_len: usize,
    ) -> NodeId;

    /// Optional auxiliary loss terms. Default: none.
    fn aux_loss(&self, _g: &mut Graph, _ps: &ParamSet) -> Option<NodeId> {
        None
    }
}

/// Either supported optimizer, so training loops stay monomorphic.
#[derive(Debug, Clone)]
pub enum Optimizer {
    /// SGD with momentum.
    Sgd(Sgd),
    /// Adam.
    Adam(Adam),
}

impl Optimizer {
    /// Applies one update step.
    pub fn step(&mut self, ps: &mut ParamSet) {
        match self {
            Optimizer::Sgd(o) => o.step(ps),
            Optimizer::Adam(o) => o.step(ps),
        }
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        match self {
            Optimizer::Sgd(o) => o.lr = lr,
            Optimizer::Adam(o) => o.lr = lr,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Runs one epoch of image-classification training; returns mean loss and
/// training accuracy.
pub fn train_epoch_images<M: ImageModel>(
    model: &M,
    ps: &mut ParamSet,
    opt: &mut Optimizer,
    data: &ImageDataset,
    batch_size: usize,
) -> EpochStats {
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    for bi in 0..data.num_batches(batch_size) {
        let (x, labels) = data.batch(bi, batch_size);
        let mut g = Graph::new(true);
        let logits = model.logits(&mut g, ps, x);
        let mut loss = g.cross_entropy(logits, &labels);
        if let Some(aux) = model.aux_loss(&mut g, ps) {
            loss = g.add(loss, aux);
        }
        ps.zero_grad();
        g.backward(loss);
        g.apply_param_grads(ps);
        opt.step(ps);

        total_loss += g.value(loss).data()[0] as f64 * labels.len() as f64;
        correct += count_correct(g.value(logits), &labels);
        seen += labels.len();
    }
    EpochStats {
        loss: (total_loss / seen as f64) as f32,
        accuracy: correct as f32 / seen as f32,
    }
}

/// Evaluates image-classification accuracy (eval-mode forward).
pub fn eval_images<M: ImageModel>(
    model: &M,
    ps: &ParamSet,
    data: &ImageDataset,
    batch_size: usize,
) -> f32 {
    let mut correct = 0usize;
    let mut seen = 0usize;
    for bi in 0..data.num_batches(batch_size) {
        let (x, labels) = data.batch(bi, batch_size);
        let mut g = Graph::new(false);
        let logits = model.logits(&mut g, ps, x);
        correct += count_correct(g.value(logits), &labels);
        seen += labels.len();
    }
    correct as f32 / seen as f32
}

/// Runs one epoch of sequence-classification training.
pub fn train_epoch_seq<M: SeqModel>(
    model: &M,
    ps: &mut ParamSet,
    opt: &mut Optimizer,
    data: &SeqDataset,
    batch_size: usize,
) -> EpochStats {
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut seen = 0usize;
    for bi in 0..data.num_batches(batch_size) {
        let (tokens, labels) = data.batch(bi, batch_size);
        let batch = labels.len();
        let mut g = Graph::new(true);
        let logits = model.logits(&mut g, ps, &tokens, batch, data.seq_len);
        let mut loss = g.cross_entropy(logits, &labels);
        if let Some(aux) = model.aux_loss(&mut g, ps) {
            loss = g.add(loss, aux);
        }
        ps.zero_grad();
        g.backward(loss);
        g.apply_param_grads(ps);
        opt.step(ps);

        total_loss += g.value(loss).data()[0] as f64 * batch as f64;
        correct += count_correct(g.value(logits), &labels);
        seen += batch;
    }
    EpochStats {
        loss: (total_loss / seen as f64) as f32,
        accuracy: correct as f32 / seen as f32,
    }
}

/// Evaluates sequence-classification accuracy (eval-mode forward).
pub fn eval_seq<M: SeqModel>(
    model: &M,
    ps: &ParamSet,
    data: &SeqDataset,
    batch_size: usize,
) -> f32 {
    let mut correct = 0usize;
    let mut seen = 0usize;
    for bi in 0..data.num_batches(batch_size) {
        let (tokens, labels) = data.batch(bi, batch_size);
        let batch = labels.len();
        let mut g = Graph::new(false);
        let logits = model.logits(&mut g, ps, &tokens, batch, data.seq_len);
        correct += count_correct(g.value(logits), &labels);
        seen += batch;
    }
    correct as f32 / seen as f32
}

fn count_correct(logits: &Tensor, labels: &[usize]) -> usize {
    logits
        .argmax_last_axis()
        .iter()
        .zip(labels)
        .filter(|(p, l)| *p == *l)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic_images, ImageTaskConfig};
    use crate::layers::{Linear, Module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Minimal linear classifier over flattened pixels.
    struct LinearProbe {
        fc: Linear,
        in_dim: usize,
    }

    impl ImageModel for LinearProbe {
        fn logits(&self, g: &mut Graph, ps: &ParamSet, images: Tensor) -> NodeId {
            let n = images.dims()[0];
            let x = g.input(images.reshape(&[n, self.in_dim]));
            self.fc.forward(g, ps, x)
        }
    }

    #[test]
    fn linear_probe_learns_synthetic_task() {
        let cfg = ImageTaskConfig {
            num_classes: 4,
            n_train: 128,
            n_test: 64,
            noise: 0.2,
            ..ImageTaskConfig::cifar10_proxy()
        };
        let (train, test) = synthetic_images(&cfg);
        let mut rng = StdRng::seed_from_u64(40);
        let mut ps = ParamSet::new();
        let in_dim = 3 * 16 * 16;
        let model = LinearProbe {
            fc: Linear::new(&mut ps, &mut rng, "probe", in_dim, 4, true),
            in_dim,
        };
        let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 0.0));
        let mut last = EpochStats {
            loss: f32::INFINITY,
            accuracy: 0.0,
        };
        for _ in 0..15 {
            last = train_epoch_images(&model, &mut ps, &mut opt, &train, 32);
        }
        let test_acc = eval_images(&model, &ps, &test, 32);
        assert!(last.accuracy > 0.8, "train accuracy too low: {:?}", last);
        assert!(test_acc > 0.6, "test accuracy too low: {test_acc}");
    }
}
