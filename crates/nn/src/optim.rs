//! Optimizers and learning-rate schedules.

use lutdla_tensor::Tensor;

use crate::params::ParamSet;

/// Stochastic gradient descent with momentum and decoupled weight decay.
///
/// # Example
///
/// ```
/// use lutdla_nn::{ParamSet, Sgd};
/// use lutdla_tensor::Tensor;
///
/// let mut ps = ParamSet::new();
/// let w = ps.add("w", Tensor::scalar(1.0));
/// ps.accumulate_grad(w, &Tensor::scalar(0.5));
/// let mut opt = Sgd::new(0.1, 0.0, 0.0);
/// opt.step(&mut ps);
/// assert!((ps.value(w).data()[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay applied directly to the values.
    pub weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update to every trainable parameter, then leaves the
    /// gradients untouched (call [`ParamSet::zero_grad`] afterwards).
    pub fn step(&mut self, ps: &mut ParamSet) {
        if self.velocity.len() < ps.len() {
            self.velocity.resize(ps.len(), None);
        }
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        for (id, p) in ps.iter_mut() {
            if !p.trainable {
                continue;
            }
            let mut update = p.grad.clone();
            if wd > 0.0 {
                update.axpy_mut(wd, &p.value);
            }
            if momentum > 0.0 {
                let vel =
                    self.velocity[id.index()].get_or_insert_with(|| Tensor::zeros(p.value.dims()));
                vel.scale_mut(momentum);
                vel.add_mut(&update);
                update = vel.clone();
            }
            p.value.axpy_mut(-lr, &update);
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style).
    pub weight_decay: f32,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β defaults.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Sets decoupled weight decay and returns `self` (builder style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one Adam update to every trainable parameter.
    pub fn step(&mut self, ps: &mut ParamSet) {
        if self.m.len() < ps.len() {
            self.m.resize(ps.len(), None);
            self.v.resize(ps.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, p) in ps.iter_mut() {
            if !p.trainable {
                continue;
            }
            let m = self.m[id.index()].get_or_insert_with(|| Tensor::zeros(p.value.dims()));
            let v = self.v[id.index()].get_or_insert_with(|| Tensor::zeros(p.value.dims()));
            m.scale_mut(self.beta1);
            m.axpy_mut(1.0 - self.beta1, &p.grad);
            let grad_sq = p.grad.mul(&p.grad);
            v.scale_mut(self.beta2);
            v.axpy_mut(1.0 - self.beta2, &grad_sq);
            if self.weight_decay > 0.0 {
                let decay = self.lr * self.weight_decay;
                let current = p.value.clone();
                p.value.axpy_mut(-decay, &current);
            }
            for i in 0..p.value.numel() {
                let mhat = m.data()[i] / bc1;
                let vhat = v.data()[i] / bc2;
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Step-decay learning-rate schedule: multiply by `gamma` every
/// `step_epochs`.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    /// Base learning rate at epoch 0.
    pub base_lr: f32,
    /// Decay factor.
    pub gamma: f32,
    /// Epoch interval between decays.
    pub step_epochs: usize,
}

impl StepLr {
    /// Learning rate at a given epoch.
    pub fn at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_epochs) as i32)
    }
}

/// Cosine-annealing schedule from `base_lr` to `min_lr` over `total_epochs`.
#[derive(Debug, Clone, Copy)]
pub struct CosineLr {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Floor learning rate.
    pub min_lr: f32,
    /// Annealing horizon.
    pub total_epochs: usize,
}

impl CosineLr {
    /// Learning rate at a given epoch.
    pub fn at(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs)) as f32 / self.total_epochs.max(1) as f32;
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        ps.accumulate_grad(w, &Tensor::scalar(1.0));
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        opt.step(&mut ps);
        assert!((ps.value(w).data()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(1.0, 0.9, 0.0);
        ps.accumulate_grad(w, &Tensor::scalar(1.0));
        opt.step(&mut ps);
        ps.zero_grad();
        ps.accumulate_grad(w, &Tensor::scalar(1.0));
        opt.step(&mut ps);
        // v1 = 1; v2 = 0.9 + 1 = 1.9; w = -(1 + 1.9) = -2.9
        assert!((ps.value(w).data()[0] + 2.9).abs() < 1e-5);
    }

    #[test]
    fn sgd_respects_frozen_params() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(1.0));
        ps.set_trainable(w, false);
        ps.accumulate_grad(w, &Tensor::scalar(1.0));
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        opt.step(&mut ps);
        assert_eq!(ps.value(w).data()[0], 1.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (w - 3)² with Adam.
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            ps.zero_grad();
            let grad = 2.0 * (ps.value(w).data()[0] - 3.0);
            ps.accumulate_grad(w, &Tensor::scalar(grad));
            opt.step(&mut ps);
        }
        assert!((ps.value(w).data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn schedules_decay() {
        let s = StepLr {
            base_lr: 1.0,
            gamma: 0.1,
            step_epochs: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        let c = CosineLr {
            base_lr: 1.0,
            min_lr: 0.0,
            total_epochs: 100,
        };
        assert!((c.at(0) - 1.0).abs() < 1e-6);
        assert!(c.at(100) < 1e-6);
        assert!(c.at(50) < c.at(10));
    }
}
