//! Tape autograd, layers, optimizers, and synthetic datasets for LUT-DLA.
//!
//! This crate is the training substrate for the LUTBoost model converter:
//! a define-by-run autograd [`Graph`] over [`lutdla_tensor::Tensor`]s, the
//! layer set needed by the paper's workloads (convolutions via `im2col`,
//! batch/layer norm, pooling, multi-head attention, embeddings), SGD/Adam,
//! and deterministic synthetic stand-ins for the image/text corpora (see
//! `DESIGN.md` for the substitution rationale).
//!
//! # Example: one gradient step
//!
//! ```
//! use lutdla_nn::{Graph, ParamSet, Sgd};
//! use lutdla_tensor::Tensor;
//!
//! let mut ps = ParamSet::new();
//! let w = ps.add("w", Tensor::from_vec(vec![0.0, 0.0], &[2, 1]));
//!
//! let mut g = Graph::new(true);
//! let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
//! let wn = g.param(&ps, w);
//! let y = g.matmul(x, wn);
//! let target = g.input(Tensor::from_vec(vec![3.0], &[1, 1]));
//! let loss = g.mse_loss(y, target);
//! g.backward(loss);
//! g.apply_param_grads(&mut ps);
//!
//! let mut opt = Sgd::new(0.1, 0.0, 0.0);
//! opt.step(&mut ps);
//! assert!(ps.value(w).data()[0] > 0.0);
//! ```

pub mod data;
mod graph;
mod layers;
mod optim;
mod params;
mod train;

pub use graph::{CustomOp, Graph, NodeId};
pub use layers::{BatchNorm2d, Conv2d, Embedding, LayerNorm, Linear, Module, MultiHeadAttention};
pub use optim::{Adam, CosineLr, Sgd, StepLr};
pub use params::{ParamId, ParamSet, Parameter};
pub use train::{
    eval_images, eval_seq, train_epoch_images, train_epoch_seq, EpochStats, ImageModel, Optimizer,
    SeqModel,
};
