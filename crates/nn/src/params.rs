//! Parameter storage shared between layers, the autograd graph, and
//! optimizers.

use lutdla_tensor::Tensor;

/// Handle to a parameter stored in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter within its [`ParamSet`].
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A named, trainable tensor with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Parameter {
    /// Human-readable name (used in reports and debugging).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether the optimizer may update this parameter. LUTBoost's centroid
    /// calibration stage freezes everything except centroids by toggling this.
    pub trainable: bool,
}

/// The owning store for all parameters of a model.
///
/// Layers hold [`ParamId`]s; the graph reads values through `&ParamSet` and
/// writes gradients back after `backward`; optimizers update values in place.
///
/// # Example
///
/// ```
/// use lutdla_nn::ParamSet;
/// use lutdla_tensor::Tensor;
///
/// let mut ps = ParamSet::new();
/// let w = ps.add("w", Tensor::ones(&[2, 2]));
/// assert_eq!(ps.value(w).numel(), 4);
/// ps.zero_grad();
/// ```
#[derive(Debug)]
pub struct ParamSet {
    params: Vec<Parameter>,
    /// Monotonic change counter: bumped whenever parameter values may have
    /// changed — gradient flushes (each training step), registration, and
    /// every mutable-access path (`value_mut`, `iter_mut`). Consumers that
    /// cache derived artifacts (e.g. LUT deploy tables) record the version
    /// at build time and compare it to detect staleness.
    version: u64,
    /// Process-unique identity of this set. `ParamId`s are plain indices
    /// and `version` counters advance independently per set, so neither is
    /// meaningful across sets; caches keyed on `(uid, ParamId, version)`
    /// (the `LutRuntime` engine cache) need this to tell two models apart.
    uid: u64,
}

/// Source of [`ParamSet::uid`] values. Starts at 1 so 0 can act as an
/// obvious "no set" sentinel in debugging output.
static NEXT_PARAMSET_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_uid() -> u64 {
    NEXT_PARAMSET_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl Default for ParamSet {
    fn default() -> Self {
        Self {
            params: Vec::new(),
            version: 0,
            uid: fresh_uid(),
        }
    }
}

impl Clone for ParamSet {
    /// Cloning copies values and version but mints a fresh [`ParamSet::uid`]:
    /// after the clone, the two sets mutate (and bump versions)
    /// independently, so sharing an identity would let version-keyed caches
    /// serve one set's artifacts for the other's diverged values.
    fn clone(&self) -> Self {
        Self {
            params: self.params.clone(),
            version: self.version,
            uid: fresh_uid(),
        }
    }
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// This set's process-unique identity (see the `uid` field).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.dims());
        self.params.push(Parameter {
            name: name.into(),
            value,
            grad,
            trainable: true,
        });
        self.version += 1;
        ParamId(self.params.len() - 1)
    }

    /// The current change-counter value (see the `version` field).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Advances the change counter. Called by the autograd graph when it
    /// flushes gradients (`Graph::apply_param_grads`) — the canonical signal
    /// that a training step is about to mutate parameter values.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// The value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access to the value of a parameter. Advances the change
    /// counter: handing out `&mut` means the value may diverge from any
    /// cached artifact built from it.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.version += 1;
        &mut self.params[id.0].value
    }

    /// The gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Accumulates `delta` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.params[id.0].grad.add_mut(delta);
    }

    /// Zeroes all gradients. Call once per optimization step.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.fill_mut(0.0);
        }
    }

    /// Marks a parameter as (not) updatable by optimizers.
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.params[id.0].trainable = trainable;
    }

    /// Marks every parameter as (not) updatable.
    pub fn set_all_trainable(&mut self, trainable: bool) {
        for p in &mut self.params {
            p.trainable = trainable;
        }
    }

    /// Whether a parameter is updatable.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.params[id.0].trainable
    }

    /// The name a parameter was registered with.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterates over `(id, parameter)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Parameter)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Iterates mutably over `(id, parameter)` pairs. Advances the change
    /// counter (optimizer steps and weight re-initialisation go through
    /// here), so deploy-state staleness checks see every mutation path.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Parameter)> {
        self.version += 1;
        self.params
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p))
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.norm_sq())
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients to a maximum global norm, returning the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_mut(k);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_back() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::full(&[3], 2.0));
        assert_eq!(ps.value(id).data(), &[2.0, 2.0, 2.0]);
        assert_eq!(ps.name(id), "w");
        assert_eq!(ps.num_scalars(), 3);
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[2]));
        ps.accumulate_grad(id, &Tensor::ones(&[2]));
        ps.accumulate_grad(id, &Tensor::ones(&[2]));
        assert_eq!(ps.grad(id).data(), &[2.0, 2.0]);
        ps.zero_grad();
        assert_eq!(ps.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn trainable_flag() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[1]));
        assert!(ps.is_trainable(id));
        ps.set_trainable(id, false);
        assert!(!ps.is_trainable(id));
        ps.set_all_trainable(true);
        assert!(ps.is_trainable(id));
    }

    #[test]
    fn version_advances_on_every_mutation_path() {
        let mut ps = ParamSet::new();
        let v0 = ps.version();
        let id = ps.add("w", Tensor::zeros(&[1]));
        assert!(ps.version() > v0, "add must advance the version");
        let v1 = ps.version();
        ps.bump_version();
        assert_eq!(ps.version(), v1 + 1);
        let v2 = ps.version();
        ps.value_mut(id).fill_mut(1.0);
        assert!(ps.version() > v2, "value_mut must advance the version");
        let v3 = ps.version();
        let _ = ps.iter_mut().count();
        assert!(ps.version() > v3, "iter_mut must advance the version");
        // Read-only accessors leave it untouched.
        let v4 = ps.version();
        let _ = (ps.value(id), ps.grad(id), ps.iter().count());
        assert_eq!(ps.version(), v4);
    }

    #[test]
    fn uids_are_unique_and_clones_get_fresh_ones() {
        let a = ParamSet::new();
        let b = ParamSet::new();
        assert_ne!(a.uid(), b.uid(), "two sets share an identity");
        let c = a.clone();
        assert_ne!(a.uid(), c.uid(), "clone kept the original's identity");
        assert_ne!(a.uid(), 0, "0 is reserved as a sentinel");
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Tensor::zeros(&[2]));
        ps.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let pre = ps.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
    }
}
