//! Synthetic datasets standing in for CIFAR/ImageNet/GLUE.
//!
//! The paper's accuracy experiments require labelled image and text corpora
//! that are not available in this environment. These generators produce
//! classification tasks with the property that matters for every LUT-DLA
//! experiment: *activations carry clusterable semantic structure*, so vector
//! quantization with enough centroids preserves accuracy and starves it with
//! too few. Task difficulty is controlled by class count, noise level, and
//! intra-class jitter, mirroring the CIFAR-10 → CIFAR-100 difficulty step.

use lutdla_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled image-classification dataset in NCHW layout.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Stacked images `[n, c, h, w]`.
    pub images: Tensor,
    /// One label per image.
    pub labels: Vec<usize>,
    /// Channel count.
    pub channels: usize,
    /// Spatial size.
    pub hw: (usize, usize),
    /// Number of classes.
    pub num_classes: usize,
}

impl ImageDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Extracts minibatch `i` of size `bs` (last batch may be smaller).
    pub fn batch(&self, i: usize, bs: usize) -> (Tensor, Vec<usize>) {
        let n = self.len();
        let start = i * bs;
        let end = (start + bs).min(n);
        assert!(start < n, "batch index out of range");
        let per = self.channels * self.hw.0 * self.hw.1;
        let data = self.images.data()[start * per..end * per].to_vec();
        (
            Tensor::from_vec(data, &[end - start, self.channels, self.hw.0, self.hw.1]),
            self.labels[start..end].to_vec(),
        )
    }

    /// Number of minibatches of size `bs`.
    pub fn num_batches(&self, bs: usize) -> usize {
        self.len().div_ceil(bs)
    }

    /// Extracts single example `i` as a `[c, h, w]` tensor plus its label —
    /// the unit a serving session's `submit` consumes.
    pub fn example(&self, i: usize) -> (Tensor, usize) {
        assert!(i < self.len(), "example index out of range");
        let per = self.channels * self.hw.0 * self.hw.1;
        (
            Tensor::from_vec(
                self.images.data()[i * per..(i + 1) * per].to_vec(),
                &[self.channels, self.hw.0, self.hw.1],
            ),
            self.labels[i],
        )
    }
}

/// Configuration for [`synthetic_images`].
#[derive(Debug, Clone, Copy)]
pub struct ImageTaskConfig {
    /// Number of classes (10 for the CIFAR-10 proxy, 100 for CIFAR-100).
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Spatial size (square).
    pub size: usize,
    /// Training examples.
    pub n_train: usize,
    /// Test examples.
    pub n_test: usize,
    /// Additive noise σ — larger is harder.
    pub noise: f32,
    /// Maximum circular shift in pixels — larger is harder.
    pub jitter: usize,
    /// RNG seed (datasets are fully deterministic given the config).
    pub seed: u64,
}

impl ImageTaskConfig {
    /// The CIFAR-10 proxy used throughout the benches: 10 easy classes.
    pub fn cifar10_proxy() -> Self {
        Self {
            num_classes: 10,
            channels: 3,
            size: 16,
            n_train: 512,
            n_test: 256,
            noise: 0.35,
            jitter: 2,
            seed: 1001,
        }
    }

    /// The CIFAR-100 proxy: more classes, noisier → lower achievable accuracy.
    pub fn cifar100_proxy() -> Self {
        Self {
            num_classes: 20,
            channels: 3,
            size: 16,
            n_train: 768,
            n_test: 384,
            noise: 0.55,
            jitter: 2,
            seed: 1002,
        }
    }

    /// MNIST proxy: single channel, nearly separable.
    pub fn mnist_proxy() -> Self {
        Self {
            num_classes: 10,
            channels: 1,
            size: 16,
            n_train: 512,
            n_test: 256,
            noise: 0.2,
            jitter: 1,
            seed: 1003,
        }
    }

    /// Tiny-ImageNet proxy: harder than the CIFAR-100 proxy.
    pub fn tiny_imagenet_proxy() -> Self {
        Self {
            num_classes: 25,
            channels: 3,
            size: 16,
            n_train: 1000,
            n_test: 500,
            noise: 0.65,
            jitter: 3,
            seed: 1004,
        }
    }

    /// ImageNet proxy: the hardest image setting we generate.
    pub fn imagenet_proxy() -> Self {
        Self {
            num_classes: 30,
            channels: 3,
            size: 16,
            n_train: 1200,
            n_test: 600,
            noise: 0.7,
            jitter: 3,
            seed: 1005,
        }
    }
}

/// Generates a train/test pair of synthetic image-classification datasets.
///
/// Each class is a smooth random prototype (coarse 4×4 noise grid upsampled
/// bilinearly); examples are prototype + Gaussian noise, circularly shifted
/// by up to `jitter` pixels.
pub fn synthetic_images(cfg: &ImageTaskConfig) -> (ImageDataset, ImageDataset) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (c, s) = (cfg.channels, cfg.size);
    // Class prototypes.
    let prototypes: Vec<Tensor> = (0..cfg.num_classes)
        .map(|_| smooth_pattern(&mut rng, c, s))
        .collect();

    let make = |n: usize, rng: &mut StdRng| {
        let mut images = vec![0.0f32; n * c * s * s];
        let mut labels = vec![0usize; n];
        for i in 0..n {
            let class = rng.gen_range(0..cfg.num_classes);
            labels[i] = class;
            let dy = if cfg.jitter > 0 {
                rng.gen_range(0..=2 * cfg.jitter) as isize - cfg.jitter as isize
            } else {
                0
            };
            let dx = if cfg.jitter > 0 {
                rng.gen_range(0..=2 * cfg.jitter) as isize - cfg.jitter as isize
            } else {
                0
            };
            let proto = &prototypes[class];
            for ci in 0..c {
                for y in 0..s {
                    for x in 0..s {
                        let sy = (y as isize + dy).rem_euclid(s as isize) as usize;
                        let sx = (x as isize + dx).rem_euclid(s as isize) as usize;
                        let noise: f32 = {
                            // cheap Gaussian via sum of uniforms
                            let u: f32 = (0..4).map(|_| rng.gen::<f32>()).sum::<f32>() - 2.0;
                            u * cfg.noise
                        };
                        images[((i * c + ci) * s + y) * s + x] = proto.at(&[ci, sy, sx]) + noise;
                    }
                }
            }
        }
        ImageDataset {
            images: Tensor::from_vec(images, &[n, c, s, s]),
            labels,
            channels: c,
            hw: (s, s),
            num_classes: cfg.num_classes,
        }
    };

    let train = make(cfg.n_train, &mut rng);
    let test = make(cfg.n_test, &mut rng);
    (train, test)
}

fn smooth_pattern(rng: &mut StdRng, c: usize, s: usize) -> Tensor {
    const COARSE: usize = 4;
    let mut out = Tensor::zeros(&[c, s, s]);
    for ci in 0..c {
        let grid: Vec<f32> = (0..COARSE * COARSE)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        for y in 0..s {
            for x in 0..s {
                // bilinear sample of the coarse grid
                let fy = y as f32 / s as f32 * (COARSE - 1) as f32;
                let fx = x as f32 / s as f32 * (COARSE - 1) as f32;
                let (y0, x0) = (fy as usize, fx as usize);
                let (y1, x1) = ((y0 + 1).min(COARSE - 1), (x0 + 1).min(COARSE - 1));
                let (wy, wx) = (fy - y0 as f32, fx - x0 as f32);
                let v = grid[y0 * COARSE + x0] * (1.0 - wy) * (1.0 - wx)
                    + grid[y0 * COARSE + x1] * (1.0 - wy) * wx
                    + grid[y1 * COARSE + x0] * wy * (1.0 - wx)
                    + grid[y1 * COARSE + x1] * wy * wx;
                out.set(&[ci, y, x], v);
            }
        }
    }
    out
}

/// A labelled sequence-classification dataset (GLUE proxy).
#[derive(Debug, Clone)]
pub struct SeqDataset {
    /// Token ids, flattened `[n, seq_len]` row-major.
    pub tokens: Vec<usize>,
    /// One label per sequence.
    pub labels: Vec<usize>,
    /// Sequence length.
    pub seq_len: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl SeqDataset {
    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Extracts minibatch `i` of size `bs`: flat token ids + labels.
    pub fn batch(&self, i: usize, bs: usize) -> (Vec<usize>, Vec<usize>) {
        let n = self.len();
        let start = i * bs;
        let end = (start + bs).min(n);
        assert!(start < n, "batch index out of range");
        (
            self.tokens[start * self.seq_len..end * self.seq_len].to_vec(),
            self.labels[start..end].to_vec(),
        )
    }

    /// Number of minibatches of size `bs`.
    pub fn num_batches(&self, bs: usize) -> usize {
        self.len().div_ceil(bs)
    }

    /// Extracts single sequence `i` (token ids) plus its label — the unit a
    /// serving session's `submit` consumes.
    pub fn sequence(&self, i: usize) -> (&[usize], usize) {
        assert!(i < self.len(), "sequence index out of range");
        (
            &self.tokens[i * self.seq_len..(i + 1) * self.seq_len],
            self.labels[i],
        )
    }
}

/// Configuration for [`synthetic_sequences`].
#[derive(Debug, Clone, Copy)]
pub struct SeqTaskConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Training sequences.
    pub n_train: usize,
    /// Test sequences.
    pub n_test: usize,
    /// Probability that a trigger token is replaced by noise — harder when
    /// larger.
    pub corruption: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SeqTaskConfig {
    /// A GLUE-like binary/multi-class proxy: class ⇔ which trigger-token family
    /// appears in the sequence.
    pub fn glue_proxy(task_seed: u64, num_classes: usize) -> Self {
        Self {
            num_classes,
            vocab: 64,
            seq_len: 16,
            n_train: 512,
            n_test: 256,
            corruption: 0.3,
            seed: 2000 + task_seed,
        }
    }
}

/// Generates a train/test pair of sequence-classification datasets.
///
/// Each class owns a small set of trigger tokens; a sequence of class `k`
/// embeds several of `k`'s triggers among uniform noise tokens. A model must
/// learn token identity + aggregation — the same shape of problem as GLUE
/// single-sentence tasks, at toy scale.
pub fn synthetic_sequences(cfg: &SeqTaskConfig) -> (SeqDataset, SeqDataset) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let triggers_per_class = 3usize;
    // Reserve the top of the vocabulary for triggers, one disjoint set per class.
    let trigger_base = cfg.vocab - cfg.num_classes * triggers_per_class;
    assert!(trigger_base > 4, "vocab too small for class count");

    let make = |n: usize, rng: &mut StdRng| {
        let mut tokens = vec![0usize; n * cfg.seq_len];
        let mut labels = vec![0usize; n];
        for i in 0..n {
            let class = rng.gen_range(0..cfg.num_classes);
            labels[i] = class;
            for t in 0..cfg.seq_len {
                tokens[i * cfg.seq_len + t] = rng.gen_range(0..trigger_base);
            }
            // plant 4 trigger tokens at random positions
            for _ in 0..4 {
                if rng.gen::<f32>() < cfg.corruption {
                    continue;
                }
                let pos = rng.gen_range(0..cfg.seq_len);
                let trig = trigger_base
                    + class * triggers_per_class
                    + rng.gen_range(0..triggers_per_class);
                tokens[i * cfg.seq_len + pos] = trig;
            }
        }
        SeqDataset {
            tokens,
            labels,
            seq_len: cfg.seq_len,
            vocab: cfg.vocab,
            num_classes: cfg.num_classes,
        }
    };

    let train = make(cfg.n_train, &mut rng);
    let test = make(cfg.n_test, &mut rng);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_dataset_shapes() {
        let cfg = ImageTaskConfig {
            n_train: 32,
            n_test: 16,
            ..ImageTaskConfig::cifar10_proxy()
        };
        let (train, test) = synthetic_images(&cfg);
        assert_eq!(train.len(), 32);
        assert_eq!(test.len(), 16);
        assert_eq!(train.images.dims(), &[32, 3, 16, 16]);
        assert!(train.labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn image_batches_cover_dataset() {
        let cfg = ImageTaskConfig {
            n_train: 10,
            n_test: 5,
            ..ImageTaskConfig::cifar10_proxy()
        };
        let (train, _) = synthetic_images(&cfg);
        let bs = 4;
        assert_eq!(train.num_batches(bs), 3);
        let mut total = 0;
        for i in 0..train.num_batches(bs) {
            let (x, y) = train.batch(i, bs);
            assert_eq!(x.dims()[0], y.len());
            total += y.len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn single_example_accessors_match_batches() {
        let cfg = ImageTaskConfig {
            n_train: 6,
            n_test: 3,
            ..ImageTaskConfig::cifar10_proxy()
        };
        let (train, _) = synthetic_images(&cfg);
        let (batch, labels) = train.batch(0, 6);
        let per = 3 * 16 * 16;
        for (i, &expected_label) in labels.iter().enumerate() {
            let (im, label) = train.example(i);
            assert_eq!(im.dims(), &[3, 16, 16]);
            assert_eq!(im.data(), &batch.data()[i * per..(i + 1) * per]);
            assert_eq!(label, expected_label);
        }

        let (seq_train, _) = synthetic_sequences(&SeqTaskConfig::glue_proxy(2, 2));
        let (tokens, labels) = seq_train.batch(0, 4);
        for (i, &expected_label) in labels.iter().enumerate() {
            let (seq, label) = seq_train.sequence(i);
            assert_eq!(
                seq,
                &tokens[i * seq_train.seq_len..(i + 1) * seq_train.seq_len]
            );
            assert_eq!(label, expected_label);
        }
    }

    #[test]
    fn datasets_deterministic_given_seed() {
        let cfg = ImageTaskConfig::cifar10_proxy();
        let (a, _) = synthetic_images(&cfg);
        let (b, _) = synthetic_images(&cfg);
        assert_eq!(a.labels, b.labels);
        assert!(a.images.allclose(&b.images, 0.0));
    }

    #[test]
    fn seq_dataset_in_vocab() {
        let cfg = SeqTaskConfig::glue_proxy(0, 2);
        let (train, test) = synthetic_sequences(&cfg);
        assert_eq!(train.len(), 512);
        assert_eq!(test.len(), 256);
        assert!(train.tokens.iter().all(|&t| t < cfg.vocab));
    }

    #[test]
    fn class_signal_exists() {
        // Trigger tokens of a class should appear far more often in that
        // class's sequences.
        let cfg = SeqTaskConfig::glue_proxy(1, 2);
        let (train, _) = synthetic_sequences(&cfg);
        let trigger_base = cfg.vocab - 2 * 3;
        let mut count_match = 0usize;
        let mut count_cross = 0usize;
        for i in 0..train.len() {
            let class = train.labels[i];
            for t in 0..cfg.seq_len {
                let tok = train.tokens[i * cfg.seq_len + t];
                if tok >= trigger_base {
                    let tok_class = (tok - trigger_base) / 3;
                    if tok_class == class {
                        count_match += 1;
                    } else {
                        count_cross += 1;
                    }
                }
            }
        }
        assert!(
            count_match > 5 * count_cross.max(1),
            "match={count_match} cross={count_cross}"
        );
    }
}
