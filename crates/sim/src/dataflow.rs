//! Analytic on-chip memory requirements of the six candidate dataflows
//! (paper Table I) and LUT reload accounting.
//!
//! Loop-order notation: the three letters give the nesting from outer to
//! inner for the `(M×K)·(K×N)` GEMM; `LutStationary` is the paper's
//! `N → K → M` order with `Tn`-tiling of N and on-demand bank streaming.

use crate::config::Gemm;

/// The candidate loop orders of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dataflow {
    /// m → n → k.
    Mnk,
    /// n → m → k.
    Nmk,
    /// m → k → n.
    Mkn,
    /// k → m → n.
    Kmn,
    /// k → n → m.
    Knm,
    /// The proposed LUT-Stationary order (n → k → m with N-tiling).
    LutStationary,
}

impl Dataflow {
    /// All six candidates, in Table I order.
    pub const ALL: [Dataflow; 6] = [
        Dataflow::Mnk,
        Dataflow::Nmk,
        Dataflow::Mkn,
        Dataflow::Kmn,
        Dataflow::Knm,
        Dataflow::LutStationary,
    ];
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dataflow::Mnk => "MNK",
            Dataflow::Nmk => "NMK",
            Dataflow::Mkn => "MKN",
            Dataflow::Kmn => "KMN",
            Dataflow::Knm => "KNM",
            Dataflow::LutStationary => "LUT-Stationary",
        };
        f.write_str(s)
    }
}

/// Per-structure on-chip requirements of a dataflow, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemoryFootprint {
    /// Partial-sum scratchpad bytes.
    pub scratchpad: f64,
    /// Indices-buffer bytes.
    pub indices: f64,
    /// Resident PSum-LUT bytes.
    pub psum_lut: f64,
}

impl MemoryFootprint {
    /// Total on-chip bytes.
    pub fn total(&self) -> f64 {
        self.scratchpad + self.indices + self.psum_lut
    }

    /// Total in KB (Table I units).
    pub fn total_kb(&self) -> f64 {
        self.total() / 1024.0
    }
}

/// Parameters shared by all dataflow analyses.
#[derive(Debug, Clone, Copy)]
pub struct DataflowParams {
    /// Subvector length.
    pub v: usize,
    /// Centroids per codebook.
    pub c: usize,
    /// N-tile width for the tiled dataflows (LS; also bounds KNM's live set).
    pub tn: usize,
    /// Partial-sum entry bytes.
    pub acc_bytes: f64,
    /// LUT entry bytes.
    pub lut_bytes: f64,
}

impl DataflowParams {
    /// Table I's configuration: v=4, c=32, INT8 entries, Tn=32, 8-bit psums.
    pub fn table1() -> Self {
        Self {
            v: 4,
            c: 32,
            tn: 32,
            acc_bytes: 1.0,
            lut_bytes: 1.0,
        }
    }
}

/// Minimum on-chip sizes such that no LUT bank is loaded more than once
/// (the constraint Table I states).
pub fn memory_footprint(df: Dataflow, g: &Gemm, p: &DataflowParams) -> MemoryFootprint {
    let nc = g.k.div_ceil(p.v) as f64;
    let (m, n) = (g.m as f64, g.n as f64);
    let idx_bytes = ((p.c as f64).log2().ceil() / 8.0).max(0.125);
    let full_lut = nc * p.c as f64 * n * p.lut_bytes;
    match df {
        // K innermost: one output element accumulates at a time, but every
        // (k, n) pair recurs for each m ⇒ whole LUT must stay resident.
        Dataflow::Mnk => MemoryFootprint {
            scratchpad: p.acc_bytes * p.tn as f64, // an output burst register
            indices: nc * idx_bytes,               // one row's codes
            psum_lut: full_lut,
        },
        Dataflow::Nmk => MemoryFootprint {
            scratchpad: p.acc_bytes * p.tn as f64,
            // n outermost, k inner: every row's codes recur per n ⇒ buffer all.
            indices: m * nc * idx_bytes,
            psum_lut: full_lut,
        },
        Dataflow::Mkn => MemoryFootprint {
            // full output row live while k accumulates
            scratchpad: n * p.acc_bytes,
            indices: idx_bytes, // single code at a time
            psum_lut: full_lut,
        },
        Dataflow::Kmn => MemoryFootprint {
            // all partial sums live across the k loop
            scratchpad: m * n * p.acc_bytes,
            indices: idx_bytes,
            psum_lut: p.c as f64 * n * p.lut_bytes, // one subspace's table
        },
        Dataflow::Knm => MemoryFootprint {
            scratchpad: m * n * p.acc_bytes,
            indices: m * idx_bytes, // one subspace's codes for all rows
            psum_lut: p.c as f64 * p.tn as f64 * p.lut_bytes, // one n-burst
        },
        Dataflow::LutStationary => MemoryFootprint {
            // N tiled by Tn: only an M×Tn slab of partial sums is live.
            scratchpad: m * p.tn as f64 * p.acc_bytes,
            indices: m * idx_bytes,
            psum_lut: p.c as f64 * p.tn as f64 * p.lut_bytes,
        },
    }
}

/// How many times the same LUT contents are (re)loaded from DRAM under each
/// dataflow when on-chip capacity holds exactly [`memory_footprint`]; all
/// six orders here achieve 1.0 by construction (the table's premise), so
/// this returns the *traffic* in bytes instead: total LUT bytes moved.
pub fn lut_traffic_bytes(g: &Gemm, p: &DataflowParams) -> f64 {
    let nc = g.k.div_ceil(p.v) as f64;
    nc * p.c as f64 * g.n as f64 * p.lut_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_gemm() -> Gemm {
        Gemm::new(512, 768, 768)
    }

    #[test]
    fn lut_stationary_is_smallest() {
        let g = table1_gemm();
        let p = DataflowParams::table1();
        let ls = memory_footprint(Dataflow::LutStationary, &g, &p).total();
        for df in Dataflow::ALL {
            if df != Dataflow::LutStationary {
                assert!(
                    memory_footprint(df, &g, &p).total() >= ls,
                    "{df} smaller than LS"
                );
            }
        }
    }

    #[test]
    fn table1_ls_row_matches_paper() {
        // Paper: LS = 16 KB scratchpad, 0.31 KB indices, 1 KB PSumLUT.
        let g = table1_gemm();
        let p = DataflowParams::table1();
        let f = memory_footprint(Dataflow::LutStationary, &g, &p);
        assert!(
            (f.scratchpad / 1024.0 - 16.0).abs() < 0.5,
            "scratch {}",
            f.scratchpad / 1024.0
        );
        assert!(
            (f.indices / 1024.0 - 0.31).abs() < 0.05,
            "idx {}",
            f.indices / 1024.0
        );
        assert!(
            (f.psum_lut / 1024.0 - 1.0).abs() < 0.1,
            "lut {}",
            f.psum_lut / 1024.0
        );
    }

    #[test]
    fn table1_knm_and_kmn_rows_match_paper() {
        // Paper: KMN = 384 KB scratch + 24 KB LUT; KNM = 384 KB + 1 KB.
        let g = table1_gemm();
        let p = DataflowParams::table1();
        let kmn = memory_footprint(Dataflow::Kmn, &g, &p);
        assert!((kmn.scratchpad / 1024.0 - 384.0).abs() < 1.0);
        assert!((kmn.psum_lut / 1024.0 - 24.0).abs() < 0.5);
        let knm = memory_footprint(Dataflow::Knm, &g, &p);
        assert!((knm.scratchpad / 1024.0 - 384.0).abs() < 1.0);
        assert!((knm.psum_lut / 1024.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn k_inner_dataflows_need_full_lut_residency() {
        let g = table1_gemm();
        let p = DataflowParams::table1();
        let full = lut_traffic_bytes(&g, &p);
        for df in [Dataflow::Mnk, Dataflow::Nmk, Dataflow::Mkn] {
            let f = memory_footprint(df, &g, &p);
            assert!((f.psum_lut - full).abs() < 1.0, "{df}");
            // Orders of magnitude above LS.
            let ls = memory_footprint(Dataflow::LutStationary, &g, &p);
            assert!(f.total() > 50.0 * ls.total(), "{df}");
        }
    }

    #[test]
    fn nmk_buffers_all_indices() {
        let g = table1_gemm();
        let p = DataflowParams::table1();
        let f = memory_footprint(Dataflow::Nmk, &g, &p);
        // 512 rows × 192 subspaces × 5 bits ≈ 60KB at byte granularity;
        // Table I says 26.9KB (bit-packed). We store byte-rounded codes ≥
        // the paper's packed figure.
        assert!(f.indices > memory_footprint(Dataflow::Mnk, &g, &p).indices * 100.0);
    }
}
