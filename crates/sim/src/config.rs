//! Simulator configuration and GEMM shape types.

use lutdla_hwmodel::{LutDlaHwConfig, Metric, NumFormat, TechNode};

/// The dimensions of one GEMM to execute: `A[M,K] × B[K,N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Gemm {
    /// Activation rows.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl Gemm {
    /// Creates a GEMM shape.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n }
    }

    /// Equivalent dense operation count (2 ops per MAC).
    pub fn ops(&self) -> u64 {
        2 * self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// Complete configuration of a simulated LUT-DLA instance.
///
/// Extends the PPA-level [`LutDlaHwConfig`] with the microarchitectural
/// knobs the cycle engine needs (bandwidth, FIFO depth, buffering policy).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    /// Subvector length `v`.
    pub v: usize,
    /// Centroids per codebook `c`.
    pub c: usize,
    /// Output-tile width per IMM (`Tn`).
    pub tn: usize,
    /// Scratchpad rows (`M` tile height).
    pub m_rows: usize,
    /// Indices-buffer capacity in subspaces (`Nc`).
    pub nc_buffer: usize,
    /// Number of CCUs.
    pub n_ccu: usize,
    /// Number of IMMs.
    pub n_imm: usize,
    /// Similarity metric (for energy accounting).
    pub metric: Metric,
    /// Similarity datapath format.
    pub ccm_format: NumFormat,
    /// LUT entry bits.
    pub lut_bits: u32,
    /// Activation bits (input streaming traffic).
    pub act_bits: u32,
    /// Scratchpad accumulator bits.
    pub acc_bits: u32,
    /// Off-chip bandwidth in bytes per IMM-clock cycle.
    pub bw_bytes_per_cycle: f64,
    /// CCM clock multiplier over the IMM clock.
    pub ccm_clock_mult: u32,
    /// Index-FIFO depth between CCM and each IMM.
    pub fifo_depth: usize,
    /// Ping-pong LUT banks: prefetch the next bank during compute.
    pub overlap_load: bool,
    /// PQA mode: resident whole-layer LUT loaded up-front, no tiling reuse.
    pub whole_layer_lut: bool,
    /// IMM clock in MHz.
    pub freq_mhz: f64,
    /// Technology node (energy accounting).
    pub node: TechNode,
}

impl SimConfig {
    /// A LUT-DLA instance mirroring [`LutDlaHwConfig::baseline`] with
    /// DDR4-class bandwidth (25.6 GB/s, the paper's end-to-end assumption).
    pub fn baseline() -> Self {
        Self::from_hw(&LutDlaHwConfig::baseline(), 25.6e9)
    }

    /// Builds a simulator config from a PPA config plus a bandwidth budget
    /// in bytes/s.
    pub fn from_hw(hw: &LutDlaHwConfig, bandwidth_bytes_per_s: f64) -> Self {
        Self {
            v: hw.v,
            c: hw.c,
            tn: hw.tn,
            m_rows: hw.m_rows,
            nc_buffer: hw.nc,
            n_ccu: hw.n_ccu,
            n_imm: hw.n_imm,
            metric: hw.metric,
            ccm_format: hw.ccm_format,
            lut_bits: hw.lut_bits,
            act_bits: hw.ccm_format.bits(),
            acc_bits: hw.acc_bits,
            bw_bytes_per_cycle: bandwidth_bytes_per_s / (hw.freq_mhz * 1e6),
            ccm_clock_mult: hw.ccm_clock_mult,
            fifo_depth: 64,
            overlap_load: true,
            whole_layer_lut: false,
            freq_mhz: hw.freq_mhz,
            node: hw.node,
        }
    }

    /// The PPA-level view of this configuration.
    pub fn to_hw(&self) -> LutDlaHwConfig {
        LutDlaHwConfig {
            metric: self.metric,
            v: self.v,
            c: self.c,
            tn: self.tn,
            m_rows: self.m_rows,
            nc: self.nc_buffer,
            n_ccu: self.n_ccu,
            n_imm: self.n_imm,
            ccm_format: self.ccm_format,
            lut_bits: self.lut_bits,
            acc_bits: self.acc_bits,
            freq_mhz: self.freq_mhz,
            ccm_clock_mult: self.ccm_clock_mult,
            node: self.node,
        }
    }

    /// Number of subspaces a `K` dimension splits into.
    pub fn num_subspaces(&self, k: usize) -> usize {
        k.div_ceil(self.v)
    }

    /// Bytes of one ping-pong LUT bank (`c × Tn` entries).
    pub fn bank_bytes(&self) -> u64 {
        (self.c * self.tn) as u64 * self.lut_bits as u64 / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_ops() {
        assert_eq!(Gemm::new(2, 3, 4).ops(), 48);
    }

    #[test]
    fn baseline_round_trip() {
        let cfg = SimConfig::baseline();
        let hw = cfg.to_hw();
        assert_eq!(hw.v, cfg.v);
        assert_eq!(hw.n_imm, cfg.n_imm);
        let back = SimConfig::from_hw(&hw, 25.6e9);
        assert_eq!(back.bank_bytes(), cfg.bank_bytes());
    }

    #[test]
    fn bank_bytes_int8() {
        let cfg = SimConfig {
            c: 32,
            tn: 16,
            lut_bits: 8,
            ..SimConfig::baseline()
        };
        assert_eq!(cfg.bank_bytes(), 512);
    }

    #[test]
    fn bandwidth_cycles_conversion() {
        let cfg = SimConfig::baseline();
        // 25.6 GB/s at 300 MHz = 85.33 B/cycle.
        assert!((cfg.bw_bytes_per_cycle - 85.33).abs() < 0.1);
    }
}
