//! The cycle-level execution engine: CCM pipelines, IMM bank state
//! machines, a bandwidth-limited DMA, and the LUT-Stationary loop nest
//! (paper Algorithm 1).
//!
//! Granularity: one IMM-clock cycle. Per cycle each IMM retires at most one
//! lookup (a `Tn`-wide row read + accumulate), the CCM cluster produces up
//! to `n_ccu × ccm_clock_mult` indices, and the DMA moves
//! `bw_bytes_per_cycle` bytes toward the oldest outstanding bank request.
//! This is exactly the throughput abstraction behind the paper's Eq. (5)
//! and its cycle counts (Table IX, Figs. 10/13).

use crate::config::{Gemm, SimConfig};
use crate::report::{EventCounts, SimReport};

/// State of one IMM's bank pair.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BankState {
    /// No bank loaded or loading.
    Empty,
    /// Bank requested, `bytes_left` outstanding.
    Loading { bytes_left: f64 },
    /// Bank resident and usable.
    Ready,
}

/// Work assigned to one IMM: its n-tiles, walked in LS order.
///
/// The two physical ping-pong banks are stable slots (`banks[0]`,
/// `banks[1]`); `active` points at the slot currently being consumed, so
/// in-flight DMA requests (which carry a slot index) survive bank swaps.
struct ImmState {
    /// Tile indices (into 0..no) owned by this IMM.
    tiles: Vec<usize>,
    /// Position in `tiles` of the tile being computed.
    tile_pos: usize,
    /// Current subspace index within the tile.
    k: usize,
    /// Current row within the m-chunk.
    m: usize,
    /// The two ping-pong bank slots.
    banks: [BankState; 2],
    /// Index into `banks` of the slot being consumed.
    active: usize,
    /// Whether a prefetch for the *next* (tile, k) has been issued into the
    /// shadow slot.
    prefetched: bool,
    done: bool,
    lookups: u64,
    stall_load: u64,
    stall_index: u64,
}

impl ImmState {
    fn new(tiles: Vec<usize>) -> Self {
        let done = tiles.is_empty();
        Self {
            tiles,
            tile_pos: 0,
            k: 0,
            m: 0,
            banks: [BankState::Empty, BankState::Empty],
            active: 0,
            prefetched: false,
            done,
            lookups: 0,
            stall_load: 0,
            stall_index: 0,
        }
    }

    fn shadow(&self) -> usize {
        1 - self.active
    }

    /// `(tile, k)` pairs remaining after the current one, in LS order.
    fn next_bank(&self, nc: usize) -> Option<(usize, usize)> {
        if self.k + 1 < nc {
            Some((self.tile_pos, self.k + 1))
        } else if self.tile_pos + 1 < self.tiles.len() {
            Some((self.tile_pos + 1, 0))
        } else {
            None
        }
    }
}

/// Simulates one GEMM on the configured instance and returns the report.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero units, zero bandwidth).
pub fn simulate_gemm(cfg: &SimConfig, g: &Gemm) -> SimReport {
    assert!(cfg.n_imm > 0 && cfg.n_ccu > 0, "need at least one unit");
    assert!(cfg.bw_bytes_per_cycle > 0.0, "need nonzero bandwidth");

    let nc = cfg.num_subspaces(g.k);
    let no = g.n.div_ceil(cfg.tn);
    let m_chunks = g.m.div_ceil(cfg.m_rows);
    let bank_bytes = cfg.bank_bytes() as f64;
    // Whether the indices buffer can cache a whole chunk's codes across
    // tiles; if not, the CCM must re-produce them for every tile batch.
    let indices_cached = nc <= cfg.nc_buffer;

    let mut total_cycles: u64 = 0;
    let mut events = EventCounts::default();
    let mut stall_load_total = 0u64;
    let mut stall_index_total = 0u64;
    let mut ccm_busy_total = 0u64;
    let mut imm_busy_total = 0u64;

    if cfg.whole_layer_lut {
        // PQA mode: the entire layer's table is loaded once, before any
        // compute, with no overlap (the "compute pause" of Table IX).
        let total_lut = nc as f64 * cfg.c as f64 * g.n as f64 * cfg.lut_bits as f64 / 8.0;
        total_cycles += (total_lut / cfg.bw_bytes_per_cycle).ceil() as u64;
        events.dram_lut_bytes += total_lut as u64;
    }

    for chunk in 0..m_chunks {
        let m_len = if chunk + 1 == m_chunks {
            g.m - chunk * cfg.m_rows
        } else {
            cfg.m_rows
        };

        // --- Distribute tiles round-robin across IMMs. -----------------
        let mut imms: Vec<ImmState> = (0..cfg.n_imm)
            .map(|i| ImmState::new((i..no).step_by(cfg.n_imm).collect()))
            .collect();

        if cfg.whole_layer_lut {
            // Table already resident (loaded before the chunk loop).
            for imm in &mut imms {
                imm.banks = [BankState::Ready, BankState::Ready];
            }
        }

        // CCM production schedule: indices stream in (k-major, m-minor)
        // order. The pipeline fill of c stages is charged per chunk.
        let ccm_rate = (cfg.n_ccu * cfg.ccm_clock_mult as usize) as u64;
        let ccm_fill = (cfg.c as u64).div_ceil(cfg.ccm_clock_mult as u64);
        let mut ccm_produced: u64 = 0;
        let ccm_goal = (nc * m_len) as u64;
        let mut ccm_fill_left = ccm_fill;

        // DMA queue: (imm_index, bank_slot) requests served FIFO.
        let mut dma_queue: std::collections::VecDeque<(usize, usize)> =
            std::collections::VecDeque::new();

        let mut cycles_this_chunk: u64 = 0;
        // Generous progress bound: every lookup and every loaded byte needs
        // at most a handful of cycles; anything far beyond that is a bug.
        let work_bound = (m_len as u64 * nc as u64 * no as u64)
            + (nc as u64 * no as u64 * (bank_bytes / cfg.bw_bytes_per_cycle.max(1e-9)) as u64);
        let max_cycles: u64 = 20 * work_bound + 1_000_000;

        loop {
            if imms.iter().all(|i| i.done) {
                break;
            }
            cycles_this_chunk += 1;
            assert!(
                cycles_this_chunk < max_cycles,
                "simulation did not converge (deadlock?)"
            );

            // --- CCM: produce indices. ---------------------------------
            if ccm_fill_left > 0 {
                ccm_fill_left -= 1;
            } else if ccm_produced < ccm_goal {
                let produced = ccm_rate.min(ccm_goal - ccm_produced);
                ccm_produced += produced;
                events.dpe_scans += produced;
                ccm_busy_total += 1;
            }

            // --- DMA: serve the oldest bank request. --------------------
            let mut budget = cfg.bw_bytes_per_cycle;
            while budget > 0.0 {
                let Some(&(imm_idx, slot)) = dma_queue.front() else {
                    break;
                };
                let bank = &mut imms[imm_idx].banks[slot];
                if let BankState::Loading { bytes_left } = bank {
                    let moved = budget.min(*bytes_left);
                    *bytes_left -= moved;
                    budget -= moved;
                    if *bytes_left <= 0.0 {
                        *bank = BankState::Ready;
                        dma_queue.pop_front();
                    }
                } else {
                    dma_queue.pop_front();
                }
            }

            // --- IMMs: issue loads, consume indices, accumulate. --------
            for (idx, imm) in imms.iter_mut().enumerate() {
                if imm.done {
                    continue;
                }
                if !cfg.whole_layer_lut {
                    // Issue the active-bank load if nothing is resident.
                    if imm.banks[imm.active] == BankState::Empty {
                        imm.banks[imm.active] = BankState::Loading {
                            bytes_left: bank_bytes,
                        };
                        events.dram_lut_bytes += bank_bytes as u64;
                        dma_queue.push_back((idx, imm.active));
                    }
                    // Ping-pong prefetch of the next bank into the shadow slot.
                    if cfg.overlap_load
                        && !imm.prefetched
                        && imm.banks[imm.shadow()] == BankState::Empty
                        && imm.next_bank(nc).is_some()
                    {
                        let slot = imm.shadow();
                        imm.banks[slot] = BankState::Loading {
                            bytes_left: bank_bytes,
                        };
                        imm.prefetched = true;
                        events.dram_lut_bytes += bank_bytes as u64;
                        dma_queue.push_back((idx, slot));
                    }
                }
                if imm.banks[imm.active] != BankState::Ready {
                    imm.stall_load += 1;
                    continue;
                }
                // Index availability: the first tile of each IMM consumes
                // the live CCM stream; later tiles hit the indices buffer
                // (if it caches the chunk) or wait on a re-streamed pass.
                let first_pass = imm.tile_pos == 0;
                let need = (imm.k * m_len + imm.m) as u64;
                let index_ready = if first_pass || !indices_cached {
                    ccm_produced > need
                } else {
                    true
                };
                if !index_ready {
                    imm.stall_index += 1;
                    continue;
                }

                // Row packing: when the tile is narrower than the Tn lanes
                // (ragged last tile, or N < Tn as in conv layers with few
                // output channels), the bank is replicated across lane
                // groups and several rows retire per cycle.
                let tile = imm.tiles[imm.tile_pos];
                let tile_w = (g.n - tile * cfg.tn).min(cfg.tn);
                let pack = (cfg.tn / tile_w).max(1);
                let index_headroom = if first_pass || !indices_cached {
                    (ccm_produced - need) as usize
                } else {
                    usize::MAX
                };
                let take = pack.min(m_len - imm.m).min(index_headroom.max(1));
                imm.lookups += take as u64;
                imm.m += take;
                if imm.m == m_len {
                    imm.m = 0;
                    // Bank finished: swap in the shadow bank.
                    let next = imm.next_bank(nc);
                    match next {
                        None => {
                            imm.done = true;
                        }
                        Some((tile_pos, k)) => {
                            imm.tile_pos = tile_pos;
                            imm.k = k;
                            if cfg.whole_layer_lut {
                                // whole table resident: banks stay Ready
                            } else if cfg.overlap_load {
                                // Swap to the (possibly still-loading)
                                // shadow slot; the old active slot frees up.
                                imm.banks[imm.active] = BankState::Empty;
                                imm.active = imm.shadow();
                                imm.prefetched = false;
                            } else {
                                imm.banks[imm.active] = BankState::Empty;
                            }
                        }
                    }
                }
            }
        }

        total_cycles += cycles_this_chunk;
        for imm in &imms {
            events.lut_row_reads += imm.lookups;
            stall_load_total += imm.stall_load;
            stall_index_total += imm.stall_index;
            imm_busy_total += imm.lookups;
        }
        // If the buffer can't cache the chunk, the CCM re-streams for every
        // tile after the first (accounted as extra scans; the cycle cost is
        // captured by stall_index in the loop above via ccm_produced gating
        // only on the first pass).
        if !indices_cached && no > 1 {
            events.dpe_scans += ((no - 1) * nc * m_len) as u64;
        }

        // DRAM traffic: input activations once per chunk, outputs once.
        events.dram_input_bytes += (m_len * g.k) as u64 * cfg.act_bits as u64 / 8;
        events.dram_output_bytes += (m_len * g.n) as u64 * cfg.acc_bits as u64 / 8;
        // Scratchpad/index events.
        events.scratch_accesses += 2 * imms_lookups(&imms);
        events.index_writes += (nc * m_len) as u64;
        events.index_reads += imms_lookups(&imms);
    }

    SimReport::assemble(
        cfg,
        g,
        total_cycles,
        events,
        ccm_busy_total,
        imm_busy_total,
        stall_load_total,
        stall_index_total,
    )
}

fn imms_lookups(imms: &[ImmState]) -> u64 {
    imms.iter().map(|i| i.lookups).sum()
}

/// Closed-form cycle estimate (paper Eq. 5, extended with the `Tn` tile
/// width and row packing): `max(load, sim, lut)` per m-chunk, summed.
pub fn analytic_cycles(cfg: &SimConfig, g: &Gemm) -> f64 {
    let nc = cfg.num_subspaces(g.k) as f64;
    let no = g.n.div_ceil(cfg.tn);
    let m_chunks = g.m.div_ceil(cfg.m_rows);
    let mut total = 0.0;
    for chunk in 0..m_chunks {
        let m_len = if chunk + 1 == m_chunks {
            g.m - chunk * cfg.m_rows
        } else {
            cfg.m_rows
        } as f64;
        let load = nc * no as f64 * cfg.bank_bytes() as f64 / cfg.bw_bytes_per_cycle;
        let sim = m_len * nc / (cfg.n_ccu as f64 * cfg.ccm_clock_mult as f64);
        // Per-tile row packing (lanes / tile width).
        let mut lut = 0.0;
        for tile in 0..no {
            let tile_w = (g.n - tile * cfg.tn).min(cfg.tn);
            let pack = (cfg.tn / tile_w).max(1) as f64;
            lut += nc * (m_len / pack).ceil();
        }
        lut /= cfg.n_imm as f64;
        total += load.max(sim).max(lut);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lutdla_hwmodel::LutDlaHwConfig;

    fn small_cfg() -> SimConfig {
        SimConfig {
            v: 4,
            c: 8,
            tn: 16,
            m_rows: 64,
            nc_buffer: 64,
            n_ccu: 1,
            n_imm: 2,
            bw_bytes_per_cycle: 64.0,
            ..SimConfig::from_hw(&LutDlaHwConfig::baseline(), 25.6e9)
        }
    }

    #[test]
    fn lookup_count_is_exact() {
        let cfg = small_cfg();
        let g = Gemm::new(32, 32, 64); // nc=8, no=4
        let r = simulate_gemm(&cfg, &g);
        // Every (m, k, tile) triple is one lookup.
        assert_eq!(r.events.lut_row_reads, (32 * 8 * 4) as u64);
    }

    #[test]
    fn cycles_at_least_analytic_bound() {
        let cfg = small_cfg();
        for g in [
            Gemm::new(32, 32, 64),
            Gemm::new(128, 64, 96),
            Gemm::new(512, 768, 768),
        ] {
            let r = simulate_gemm(&cfg, &g);
            let bound = analytic_cycles(&cfg, &g);
            assert!(
                r.cycles as f64 >= bound * 0.99,
                "{g:?}: sim {} < bound {bound}",
                r.cycles
            );
            // And within a small factor of it (pipeline fill, first-load).
            assert!(
                (r.cycles as f64) < bound * 1.6 + 5000.0,
                "{g:?}: sim {} ≫ bound {bound}",
                r.cycles
            );
        }
    }

    #[test]
    fn doubling_imms_halves_lookup_bound_time() {
        // Fig. 10: expanding a lookup-limited design with more IMMs raises
        // throughput.
        let cfg1 = SimConfig {
            n_imm: 1,
            ..small_cfg()
        };
        let cfg2 = SimConfig {
            n_imm: 2,
            ..small_cfg()
        };
        let g = Gemm::new(256, 64, 256);
        let t1 = simulate_gemm(&cfg1, &g).cycles;
        let t2 = simulate_gemm(&cfg2, &g).cycles;
        let speedup = t1 as f64 / t2 as f64;
        assert!((1.7..2.1).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn pqa_mode_slower_than_ls_at_same_parallelism() {
        // Table IX: whole-layer residency + no overlap loses to LS.
        let ls = small_cfg();
        let pqa = SimConfig {
            whole_layer_lut: true,
            overlap_load: false,
            ..ls
        };
        let g = Gemm::new(256, 256, 256);
        let t_ls = simulate_gemm(&ls, &g).cycles;
        let t_pqa = simulate_gemm(&pqa, &g).cycles;
        assert!(t_pqa > t_ls, "PQA {t_pqa} ≤ LS {t_ls}");
    }

    #[test]
    fn starved_bandwidth_shows_load_stalls() {
        let cfg = SimConfig {
            bw_bytes_per_cycle: 0.5,
            ..small_cfg()
        };
        let g = Gemm::new(32, 32, 32);
        let r = simulate_gemm(&cfg, &g);
        assert!(r.stall_load > 0, "expected load stalls");
        let fast = simulate_gemm(&small_cfg(), &g);
        assert!(r.cycles > fast.cycles);
    }

    #[test]
    fn table9_cycle_magnitude() {
        // Paper Table IX: GEMM 512×768×768, c=32, v=4, 16 lanes → 4743k
        // cycles for LUT-DLA. One IMM with Tn=16 is the same lane count.
        let cfg = SimConfig {
            v: 4,
            c: 32,
            tn: 16,
            m_rows: 512,
            nc_buffer: 192,
            n_ccu: 2,
            n_imm: 1,
            bw_bytes_per_cycle: 85.0,
            ..SimConfig::from_hw(&LutDlaHwConfig::baseline(), 25.6e9)
        };
        let g = Gemm::new(512, 768, 768);
        let r = simulate_gemm(&cfg, &g);
        let kcycles = r.cycles as f64 / 1e3;
        assert!(
            (4600.0..5200.0).contains(&kcycles),
            "Table IX cycles = {kcycles}k (paper: 4743k)"
        );
    }

    #[test]
    fn chunked_m_matches_unchunked_lookups() {
        let small_rows = SimConfig {
            m_rows: 16,
            ..small_cfg()
        };
        let g = Gemm::new(64, 32, 32);
        let a = simulate_gemm(&small_rows, &g);
        let b = simulate_gemm(&small_cfg(), &g);
        assert_eq!(a.events.lut_row_reads, b.events.lut_row_reads);
    }

    #[test]
    fn energy_positive_and_dominated_by_dynamic_parts() {
        let cfg = small_cfg();
        let g = Gemm::new(128, 64, 128);
        let r = simulate_gemm(&cfg, &g);
        assert!(r.energy.total_mj() > 0.0);
        assert!(r.effective_gops() > 0.0);
    }
}
