//! Functional execution: the same LS loop nest as the cycle engine, but
//! producing actual output values so the simulator's dataflow can be
//! checked against the algorithmic reference (`lutdla-vq`'s AMM).

use crate::config::{Gemm, SimConfig};

/// Read-only access to precomputed table entries, abstracted so this crate
/// stays independent of the quantization crate (tests adapt `vq::LutTable`).
pub trait TableSource {
    /// Entry for `(subspace, centroid, column)`.
    fn entry(&self, subspace: usize, centroid: usize, col: usize) -> f32;
}

/// Executes the LUT-Stationary loop nest functionally: walks tiles in the
/// exact order of the cycle engine and accumulates table entries, returning
/// the `[m × n]` output (row-major).
///
/// # Panics
///
/// Panics if `codes` does not hold `m × ⌈k/v⌉` entries.
pub fn functional_ls(
    cfg: &SimConfig,
    g: &Gemm,
    codes: &[u16],
    table: &dyn TableSource,
) -> Vec<f32> {
    let nc = cfg.num_subspaces(g.k);
    assert_eq!(codes.len(), g.m * nc, "code buffer shape mismatch");
    let no = g.n.div_ceil(cfg.tn);
    let m_chunks = g.m.div_ceil(cfg.m_rows);
    let mut out = vec![0.0f32; g.m * g.n];

    // The cycle engine distributes tiles round-robin over IMMs; the
    // functional result is order-independent, but we reproduce the walk to
    // mirror exactly what the hardware accumulates.
    for chunk in 0..m_chunks {
        let m0 = chunk * cfg.m_rows;
        let m_len = (g.m - m0).min(cfg.m_rows);
        for imm in 0..cfg.n_imm {
            for tile in (imm..no).step_by(cfg.n_imm) {
                let n0 = tile * cfg.tn;
                let n_len = (g.n - n0).min(cfg.tn);
                for k in 0..nc {
                    for mi in 0..m_len {
                        let m = m0 + mi;
                        let code = codes[m * nc + k] as usize;
                        let row = &mut out[m * g.n + n0..m * g.n + n0 + n_len];
                        for (j, o) in row.iter_mut().enumerate() {
                            *o += table.entry(k, code, n0 + j);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ToyTable {
        nc: usize,
        c: usize,
        n: usize,
        data: Vec<f32>,
    }

    impl TableSource for ToyTable {
        fn entry(&self, s: usize, ci: usize, col: usize) -> f32 {
            self.data[(s * self.c + ci) * self.n + col]
        }
    }

    #[test]
    fn accumulates_selected_rows() {
        // 1 row, k=4 (v=2 → nc=2), n=2, c=2.
        let cfg = SimConfig {
            v: 2,
            c: 2,
            tn: 2,
            m_rows: 4,
            ..SimConfig::baseline()
        };
        let g = Gemm::new(1, 4, 2);
        let table = ToyTable {
            nc: 2,
            c: 2,
            n: 2,
            data: vec![
                1.0, 2.0, // s0 c0
                3.0, 4.0, // s0 c1
                10.0, 20.0, // s1 c0
                30.0, 40.0, // s1 c1
            ],
        };
        let _ = table.nc;
        let codes = vec![1u16, 0u16]; // pick s0c1, s1c0
        let out = functional_ls(&cfg, &g, &codes, &table);
        assert_eq!(out, vec![3.0 + 10.0, 4.0 + 20.0]);
    }

    #[test]
    fn tiling_does_not_change_result() {
        let g = Gemm::new(6, 8, 10);
        let c = 4;
        let nc = 4; // v=2
        let table = ToyTable {
            nc,
            c,
            n: 10,
            data: (0..nc * c * 10).map(|i| (i % 17) as f32 * 0.25).collect(),
        };
        let codes: Vec<u16> = (0..g.m * nc).map(|i| (i % c) as u16).collect();
        let base = SimConfig {
            v: 2,
            c,
            tn: 10,
            m_rows: 6,
            n_imm: 1,
            ..SimConfig::baseline()
        };
        let tiled = SimConfig {
            tn: 3,
            m_rows: 2,
            n_imm: 2,
            ..base
        };
        let a = functional_ls(&base, &g, &codes, &table);
        let b = functional_ls(&tiled, &g, &codes, &table);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
