//! Cycle-accurate simulator for the LUT-DLA accelerator (paper §IV).
//!
//! The engine models the decoupled CCM/IMM architecture at per-cycle
//! granularity: pipelined CCUs produce centroid indices, IMMs retire one
//! `Tn`-wide lookup-accumulate per cycle from ping-pong PSum-LUT banks, a
//! bandwidth-limited DMA streams banks on demand, and the LUT-Stationary
//! loop nest (Algorithm 1) drives the whole machine. Energy is integrated
//! event-by-event against the `lutdla-hwmodel` cost library so cycle counts
//! and Joules come from one consistent model.
//!
//! * [`simulate_gemm`] — run one GEMM, get a [`SimReport`];
//! * [`analytic_cycles`] — the closed-form Eq. (5) bound;
//! * [`dataflow`] — Table I's on-chip memory analysis for all six loop
//!   orders;
//! * [`functional_ls`] — value-level execution of the same loop nest, used
//!   to prove the dataflow computes the right matrix.
//!
//! # Example
//!
//! ```
//! use lutdla_sim::{simulate_gemm, Gemm, SimConfig};
//!
//! let report = simulate_gemm(&SimConfig::baseline(), &Gemm::new(256, 256, 256));
//! assert!(report.cycles > 0);
//! assert!(report.effective_gops() > 0.0);
//! ```

mod config;
pub mod dataflow;
mod engine;
mod functional;
mod report;

pub use config::{Gemm, SimConfig};
pub use dataflow::{
    lut_traffic_bytes, memory_footprint, Dataflow, DataflowParams, MemoryFootprint,
};
pub use engine::{analytic_cycles, simulate_gemm};
pub use functional::{functional_ls, TableSource};
pub use report::{EnergyBreakdown, EventCounts, SimReport};
