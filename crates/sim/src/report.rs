//! Simulation reports: cycles, utilisation, DRAM traffic, and event-based
//! energy integration against the `lutdla-hwmodel` cost library.

use lutdla_hwmodel::{ccu_energy_per_vector_pj, imm_cost, CostModel, SramModel};

use crate::config::{Gemm, SimConfig};

/// Raw event tallies from one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EventCounts {
    /// Full c-deep dPE scans (one per produced index).
    pub dpe_scans: u64,
    /// `Tn`-wide LUT row reads (lookup-accumulates).
    pub lut_row_reads: u64,
    /// Scratchpad row accesses (read + write counted separately).
    pub scratch_accesses: u64,
    /// Indices-buffer writes.
    pub index_writes: u64,
    /// Indices-buffer reads.
    pub index_reads: u64,
    /// LUT bytes moved from DRAM.
    pub dram_lut_bytes: u64,
    /// Activation bytes streamed in.
    pub dram_input_bytes: u64,
    /// Output bytes written back.
    pub dram_output_bytes: u64,
}

impl EventCounts {
    /// Total DRAM traffic in bytes.
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_lut_bytes + self.dram_input_bytes + self.dram_output_bytes
    }
}

/// Energy breakdown in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyBreakdown {
    /// Similarity-comparison energy.
    pub ccm_mj: f64,
    /// Lookup/accumulate energy (LUT + scratchpad + adder lanes).
    pub imm_mj: f64,
    /// DRAM access energy.
    pub dram_mj: f64,
    /// Leakage over the run.
    pub leakage_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in mJ.
    pub fn total_mj(&self) -> f64 {
        self.ccm_mj + self.imm_mj + self.dram_mj + self.leakage_mj
    }

    /// Chip-only energy (excluding the DRAM interface), mJ — the basis of
    /// the paper's Fig. 13 energy comparison.
    pub fn chip_mj(&self) -> f64 {
        self.ccm_mj + self.imm_mj + self.leakage_mj
    }
}

/// DRAM access energy per byte (pJ/B) — DDR4-class interface energy.
const DRAM_PJ_PER_BYTE: f64 = 15.0;

/// The result of simulating one GEMM (or an aggregate of a whole model).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimReport {
    /// IMM-clock cycles to completion.
    pub cycles: u64,
    /// Cycles during which the CCM cluster produced indices.
    pub ccm_busy: u64,
    /// Sum over IMMs of lookup cycles (utilisation numerator).
    pub imm_busy: u64,
    /// IMM-cycles stalled waiting for a LUT bank.
    pub stall_load: u64,
    /// IMM-cycles stalled waiting for an index.
    pub stall_index: u64,
    /// Event tallies.
    pub events: EventCounts,
    /// Energy integration.
    pub energy: EnergyBreakdown,
    /// Wall-clock seconds at the configured frequency.
    pub time_s: f64,
    /// Dense-equivalent operations executed.
    pub effective_ops: u64,
    /// IMM lookup-slot utilisation ∈ [0, 1].
    pub imm_utilization: f64,
}

impl SimReport {
    /// Builds a report from raw simulation outputs (crate-internal).
    // One positional slot per simulator output stream; bundling them into
    // a struct would just move the same list one call up.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        cfg: &SimConfig,
        g: &Gemm,
        cycles: u64,
        events: EventCounts,
        ccm_busy: u64,
        imm_busy: u64,
        stall_load: u64,
        stall_index: u64,
    ) -> Self {
        let m = CostModel::new(cfg.node);
        let sram = SramModel::new(cfg.node);
        let imm = imm_cost(&m, &sram, &cfg.to_hw().imm_config());

        let ccm_pj = ccu_energy_per_vector_pj(&m, cfg.metric, cfg.v, cfg.c, cfg.ccm_format)
            * events.dpe_scans as f64;
        let imm_pj = imm.energy_per_lookup_pj * events.lut_row_reads as f64;
        let dram_pj = events.dram_total_bytes() as f64 * DRAM_PJ_PER_BYTE;

        let time_s = cycles as f64 / (cfg.freq_mhz * 1e6);
        let leak_mw = imm.leakage_mw * cfg.n_imm as f64;
        let leakage_mj = leak_mw * time_s; // mW × s = mJ

        let effective_ops = g.ops();
        let imm_slots = cycles.max(1) * cfg.n_imm as u64;
        SimReport {
            cycles,
            ccm_busy,
            imm_busy,
            stall_load,
            stall_index,
            events,
            energy: EnergyBreakdown {
                ccm_mj: ccm_pj * 1e-9,
                imm_mj: imm_pj * 1e-9,
                dram_mj: dram_pj * 1e-9,
                leakage_mj,
            },
            time_s,
            effective_ops,
            imm_utilization: imm_busy as f64 / imm_slots as f64,
        }
    }

    /// Effective throughput in GOPS (dense-equivalent ops over wall time).
    pub fn effective_gops(&self) -> f64 {
        self.effective_ops as f64 / self.time_s / 1e9
    }

    /// Merges per-layer reports into a whole-model aggregate.
    pub fn merge(reports: &[SimReport]) -> SimReport {
        assert!(!reports.is_empty(), "nothing to merge");
        let mut out = reports[0];
        for r in &reports[1..] {
            out.cycles += r.cycles;
            out.ccm_busy += r.ccm_busy;
            out.imm_busy += r.imm_busy;
            out.stall_load += r.stall_load;
            out.stall_index += r.stall_index;
            out.events.dpe_scans += r.events.dpe_scans;
            out.events.lut_row_reads += r.events.lut_row_reads;
            out.events.scratch_accesses += r.events.scratch_accesses;
            out.events.index_writes += r.events.index_writes;
            out.events.index_reads += r.events.index_reads;
            out.events.dram_lut_bytes += r.events.dram_lut_bytes;
            out.events.dram_input_bytes += r.events.dram_input_bytes;
            out.events.dram_output_bytes += r.events.dram_output_bytes;
            out.energy.ccm_mj += r.energy.ccm_mj;
            out.energy.imm_mj += r.energy.imm_mj;
            out.energy.dram_mj += r.energy.dram_mj;
            out.energy.leakage_mj += r.energy.leakage_mj;
            out.time_s += r.time_s;
            out.effective_ops += r.effective_ops;
        }
        let slots = out.cycles.max(1); // aggregate utilisation re-derived
        out.imm_utilization = out.imm_busy as f64 / slots as f64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_gemm;

    #[test]
    fn merge_accumulates() {
        let cfg = SimConfig::baseline();
        let g = Gemm::new(64, 64, 64);
        let r = simulate_gemm(&cfg, &g);
        let merged = SimReport::merge(&[r, r]);
        assert_eq!(merged.cycles, 2 * r.cycles);
        assert_eq!(merged.effective_ops, 2 * r.effective_ops);
        assert!((merged.energy.total_mj() - 2.0 * r.energy.total_mj()).abs() < 1e-12);
    }

    #[test]
    fn gops_consistent_with_time() {
        let cfg = SimConfig::baseline();
        let g = Gemm::new(128, 128, 128);
        let r = simulate_gemm(&cfg, &g);
        let gops = r.effective_gops();
        assert!((gops - r.effective_ops as f64 / r.time_s / 1e9).abs() < 1e-9);
    }

    #[test]
    fn dram_totals_add_up() {
        let e = EventCounts {
            dram_lut_bytes: 10,
            dram_input_bytes: 20,
            dram_output_bytes: 30,
            ..Default::default()
        };
        assert_eq!(e.dram_total_bytes(), 60);
    }
}
