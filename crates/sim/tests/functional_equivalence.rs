//! Cross-crate validation: the simulator's LUT-Stationary loop nest must
//! compute exactly the same matrix as the algorithmic reference in
//! `lutdla-vq`, for every metric and tiling. The reference is served by the
//! batched [`LutEngine`] deploy path, which is itself asserted bit-identical
//! to the scalar `approx_matmul_from_codes` walk — so one check pins all
//! three implementations (scalar, engine, hardware loop nest) together.

use std::sync::Arc;

use lutdla_sim::{functional_ls, Gemm, SimConfig, TableSource};
use lutdla_tensor::Tensor;
use lutdla_vq::{
    approx_matmul_from_codes, Distance, LutEngine, LutQuant, LutTable, ProductQuantizer, WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct VqTable<'a>(&'a LutTable);

impl TableSource for VqTable<'_> {
    fn entry(&self, subspace: usize, centroid: usize, col: usize) -> f32 {
        self.0.row(subspace, centroid)[col]
    }
}

fn check(metric: Distance, v: usize, c: usize, tn: usize, m_rows: usize, n_imm: usize) {
    let mut rng = StdRng::seed_from_u64(7 + v as u64 + c as u64);
    let g = Gemm::new(24, 16, 20);
    let a = Tensor::rand_uniform(&mut rng, &[g.m, g.k], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[g.k, g.n], -1.0, 1.0);
    let pq = ProductQuantizer::fit(&a, v, c, metric, &mut rng);
    let lut = LutTable::build(&pq, &b, LutQuant::F32);
    let codes = pq.encode(&a);

    let scalar = approx_matmul_from_codes(&codes, g.m, &pq, &lut);
    // Run the engine the way the serving runtime does: multithreaded on a
    // persistent worker pool (chunk split exercised even at these small m).
    let pool = Arc::new(WorkerPool::new(2));
    let mut engine = LutEngine::new(pq, &lut).with_workers(2).with_pool(pool);
    let reference = engine
        .run_from_codes(&codes, g.m)
        .expect("codes straight from encode are always valid");
    assert!(
        reference.allclose(&scalar, 0.0),
        "engine deploy path diverged from the scalar reference"
    );

    let cfg = SimConfig {
        v,
        c,
        tn,
        m_rows,
        n_imm,
        ..SimConfig::baseline()
    };
    let hw = functional_ls(&cfg, &g, &codes, &VqTable(&lut));
    for (i, (x, y)) in hw.iter().zip(reference.data()).enumerate() {
        assert!(
            (x - y).abs() < 1e-4,
            "{metric} v={v} c={c} tn={tn}: mismatch at {i}: {x} vs {y}"
        );
    }
}

#[test]
fn ls_dataflow_matches_amm_l2() {
    check(Distance::L2, 4, 8, 20, 24, 1);
}

#[test]
fn ls_dataflow_matches_amm_l1_tiled() {
    check(Distance::L1, 4, 8, 5, 8, 2);
}

#[test]
fn ls_dataflow_matches_amm_chebyshev_ragged_tiles() {
    // tn does not divide n, m_rows does not divide m.
    check(Distance::Chebyshev, 4, 16, 7, 5, 3);
}

#[test]
fn ls_dataflow_matches_amm_padded_k() {
    // v does not divide k (zero-padded final subspace).
    check(Distance::L2, 5, 8, 10, 12, 2);
}
