//! Published accelerator specifications (paper Table VIII) and node
//! normalisation.
//!
//! These are the literature rows the paper compares against: the numbers
//! are taken from the cited publications, and — exactly as the paper does —
//! efficiencies are rescaled to a common technology node with the
//! Stillmaker–Baas equations before comparison.

use lutdla_hwmodel::TechNode;

/// Which workload families an accelerator supports (Table VIII "Func").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Func {
    /// CNNs only.
    Cnn,
    /// Transformers only.
    Transformer,
    /// Both.
    Both,
}

impl std::fmt::Display for Func {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Func::Cnn => "C",
            Func::Transformer => "T",
            Func::Both => "C/T",
        };
        f.write_str(s)
    }
}

/// One accelerator's published headline figures.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AcceleratorSpec {
    /// Name as cited.
    pub name: String,
    /// Technology node.
    pub node: TechNode,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Die / block area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
    /// Peak throughput in GOPS.
    pub perf_gops: f64,
    /// Supported workloads.
    pub func: Func,
}

impl AcceleratorSpec {
    /// Raw area efficiency (GOPS/mm²) at the native node.
    pub fn gops_per_mm2(&self) -> f64 {
        self.perf_gops / self.area_mm2
    }

    /// Raw power efficiency (GOPS/mW) at the native node.
    pub fn gops_per_mw(&self) -> f64 {
        self.perf_gops / self.power_mw
    }

    /// Area efficiency scaled to `target` (the paper normalises to 28 nm).
    pub fn scaled_gops_per_mm2(&self, target: TechNode) -> f64 {
        let area = self.node.convert_area_to(target, self.area_mm2);
        self.perf_gops / area
    }

    /// Power efficiency scaled to `target`.
    pub fn scaled_gops_per_mw(&self, target: TechNode) -> f64 {
        // Power = energy/op × ops/s; only the energy term scales.
        let power = self.node.convert_energy_to(target, self.power_mw);
        self.perf_gops / power
    }
}

fn spec(
    name: &str,
    nm: u32,
    freq_mhz: f64,
    area_mm2: f64,
    power_mw: f64,
    perf_gops: f64,
    func: Func,
) -> AcceleratorSpec {
    AcceleratorSpec {
        name: name.to_string(),
        node: TechNode(nm),
        freq_mhz,
        area_mm2,
        power_mw,
        perf_gops,
        func,
    }
}

/// The Table VIII comparison rows (excluding the LUT-DLA designs, which our
/// own model generates).
pub fn table8_specs() -> Vec<AcceleratorSpec> {
    vec![
        spec(
            "NVIDIA A100",
            7,
            1512.0,
            826.0,
            300_000.0,
            624_000.0,
            Func::Both,
        ),
        spec("Gemmini", 16, 500.0, 1.21, 312.41, 256.0, Func::Both),
        spec("NVDLA-Small", 28, 1000.0, 0.91, 55.0, 64.0, Func::Cnn),
        spec("NVDLA-Large", 28, 1000.0, 5.5, 766.0, 2048.0, Func::Cnn),
        spec(
            "ELSA",
            40,
            1000.0,
            2.147,
            1047.08,
            1088.0,
            Func::Transformer,
        ),
        spec("FACT", 28, 500.0, 6.03, 337.07, 928.0, Func::Transformer),
        spec("RRAM-DNN", 22, 120.0, 10.8, 127.9, 123.0, Func::Cnn),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_raw_efficiencies_match_paper() {
        // Spot-check the paper's own efficiency columns (which it computes
        // from the same raw numbers): NVDLA-Small = 70.3 GOPS/mm²,
        // Gemmini = 86.7 (pre-scaling values come out of the raw division
        // for the same-node rows).
        let specs = table8_specs();
        let nvdla_s = specs.iter().find(|s| s.name == "NVDLA-Small").unwrap();
        assert!((nvdla_s.gops_per_mm2() - 70.3).abs() < 0.5);
        assert!((nvdla_s.gops_per_mw() - 1.2).abs() < 0.1);
        let a100 = specs.iter().find(|s| s.name == "NVIDIA A100").unwrap();
        assert!((a100.gops_per_mw() - 2.08).abs() < 0.1); // 624000/300000
    }

    #[test]
    fn scaling_to_28nm_changes_other_nodes_only() {
        let specs = table8_specs();
        let nvdla = specs.iter().find(|s| s.name == "NVDLA-Large").unwrap();
        assert!(
            (nvdla.scaled_gops_per_mm2(TechNode::N28) - nvdla.gops_per_mm2()).abs() < 1e-9,
            "28nm row must be unchanged"
        );
        let gemmini = specs.iter().find(|s| s.name == "Gemmini").unwrap();
        // Scaling 16nm → 28nm grows area, so efficiency must drop.
        assert!(gemmini.scaled_gops_per_mm2(TechNode::N28) < gemmini.gops_per_mm2());
    }

    #[test]
    fn a100_efficiency_modest_despite_scale() {
        // The paper's point: even the A100's scaled efficiency is far below
        // LUT-DLA's (Table VIII shows 18.6 GOPS/mm² at 7nm).
        let specs = table8_specs();
        let a100 = specs.iter().find(|s| s.name == "NVIDIA A100").unwrap();
        assert!(a100.gops_per_mm2() < 1000.0);
    }
}
