//! PQA-style LUT accelerator model (paper Table IX's comparison point):
//! the same lookup machinery as LUT-DLA, but with PQA's architectural
//! choices — the entire layer's table resident on chip, loaded before
//! compute with no load/compute overlap, and no LS tiling reuse.

use lutdla_sim::{simulate_gemm, Gemm, SimConfig, SimReport};

/// Builds the PQA-mode counterpart of a LUT-DLA simulator config: identical
/// `(v, c)` and lane count, whole-layer LUT residency, no ping-pong.
pub fn pqa_config(base: &SimConfig) -> SimConfig {
    SimConfig {
        whole_layer_lut: true,
        overlap_load: false,
        ..*base
    }
}

/// On-chip memory PQA needs for a layer: the full `Nc × c × N` table plus
/// the same scratchpad/indices structures as the base config.
pub fn pqa_onchip_bytes(cfg: &SimConfig, g: &Gemm) -> u64 {
    let nc = cfg.num_subspaces(g.k) as u64;
    let lut = nc * cfg.c as u64 * g.n as u64 * cfg.lut_bits as u64 / 8;
    let scratch = (cfg.m_rows * cfg.tn) as u64 * cfg.acc_bits as u64 / 8;
    let idx_bits = (usize::BITS - (cfg.c - 1).leading_zeros()).max(1) as u64;
    let indices = (cfg.m_rows as u64 * nc) * idx_bits / 8;
    lut + scratch + indices
}

/// Simulates a GEMM under PQA's execution model.
pub fn simulate_pqa(base: &SimConfig, g: &Gemm) -> SimReport {
    simulate_gemm(&pqa_config(base), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lutdla_hwmodel::LutDlaHwConfig;

    fn table9_cfg() -> SimConfig {
        SimConfig {
            v: 4,
            c: 32,
            tn: 16,
            m_rows: 512,
            nc_buffer: 192,
            n_ccu: 2,
            n_imm: 1,
            bw_bytes_per_cycle: 85.0,
            ..SimConfig::from_hw(&LutDlaHwConfig::baseline(), 25.6e9)
        }
    }

    #[test]
    fn pqa_needs_orders_more_onchip_memory() {
        // Table IX: PQA 6912 KB vs LUT-DLA 10.5 KB for the 512×768×768 GEMM.
        let cfg = table9_cfg();
        let g = Gemm::new(512, 768, 768);
        let pqa_kb = pqa_onchip_bytes(&cfg, &g) as f64 / 1024.0;
        assert!(pqa_kb > 4000.0, "PQA on-chip = {pqa_kb} KB");
        // LUT-DLA's residency is just the ping-pong banks + scratch + idx.
        let ls_kb = (2 * cfg.bank_bytes()
            + (cfg.m_rows * cfg.tn) as u64 * cfg.acc_bits as u64 / 8
            + (cfg.m_rows * 192) as u64 * 5 / 8) as f64
            / 1024.0;
        assert!(pqa_kb / ls_kb > 50.0, "ratio {}", pqa_kb / ls_kb);
    }

    #[test]
    fn pqa_slower_than_lut_dla() {
        // Table IX reports 7864k vs 4743k cycles (1.66×). The gap comes
        // from PQA's un-overlapped whole-table load; its magnitude depends
        // on the memory bandwidth assumed for PQA's (FPGA) memory system.
        // At a few bytes/cycle the paper's ratio reproduces; at DDR4-class
        // bandwidth the pause shrinks but never vanishes.
        let g = Gemm::new(512, 768, 768);
        let starved = SimConfig {
            bw_bytes_per_cycle: 2.0,
            ..table9_cfg()
        };
        let ls = simulate_gemm(&starved, &g);
        let pqa = simulate_pqa(&starved, &g);
        let ratio = pqa.cycles as f64 / ls.cycles as f64;
        assert!((1.3..2.2).contains(&ratio), "PQA/LS cycle ratio {ratio}");

        let fast = table9_cfg();
        let ls_fast = simulate_gemm(&fast, &g);
        let pqa_fast = simulate_pqa(&fast, &g);
        assert!(pqa_fast.cycles > ls_fast.cycles);
    }
}
