//! Gemmini-style weight-stationary systolic-array performance model.
//!
//! Reproduces the first-order behaviour of the Gemmini cycle counts the
//! paper obtains from Verilator: an `R×C` INT8 MAC array computes a GEMM as
//! `⌈K/R⌉·⌈N/C⌉` weight tiles; each tile costs a weight-load phase
//! (`R` cycles), `M` streaming cycles, and a drain, with a DRAM-bandwidth
//! roofline on top.

use crate::specs::AcceleratorSpec;
use lutdla_sim::Gemm;

/// Configuration of a systolic accelerator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystolicConfig {
    /// Array rows (reduction dimension).
    pub rows: usize,
    /// Array columns (output dimension).
    pub cols: usize,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// DRAM bandwidth in bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Operand bytes (1 for INT8).
    pub operand_bytes: usize,
    /// Accumulator/output bytes.
    pub output_bytes: usize,
    /// Energy per MAC in pJ (datapath + local register movement).
    pub mac_energy_pj: f64,
    /// Static + clock power in mW (used for leakage-style energy).
    pub idle_power_mw: f64,
}

impl SystolicConfig {
    /// Gemmini's published default: 16×16 INT8 array at 500 MHz
    /// (Genc et al., DAC'21), with DDR4-class bandwidth.
    pub fn gemmini() -> Self {
        Self {
            rows: 16,
            cols: 16,
            freq_mhz: 500.0,
            bandwidth_bytes_per_s: 25.6e9,
            operand_bytes: 1,
            output_bytes: 4,
            // INT8 MAC ≈ mult(0.08) + add(0.012) + pipeline regs ≈ 0.2pJ @16nm-ish
            mac_energy_pj: 0.2,
            idle_power_mw: 60.0,
        }
    }
}

/// Performance/energy estimate for one workload on a systolic array.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerfEstimate {
    /// Total cycles.
    pub cycles: u64,
    /// Wall-clock seconds.
    pub time_s: f64,
    /// Effective throughput, GOPS.
    pub gops: f64,
    /// Total energy including DRAM interface energy, mJ.
    pub energy_mj: f64,
    /// Chip-only energy (datapath + SRAM + static), mJ — the basis of the
    /// paper's Fig. 13 energy comparison.
    pub chip_energy_mj: f64,
    /// DRAM traffic, bytes.
    pub dram_bytes: u64,
}

/// Estimates one GEMM on the systolic array.
pub fn systolic_gemm(cfg: &SystolicConfig, g: &Gemm) -> PerfEstimate {
    let k_tiles = g.k.div_ceil(cfg.rows);
    let n_tiles = g.n.div_ceil(cfg.cols);
    // Per tile: load R rows of weights, stream M inputs, drain R+C.
    let per_tile = cfg.rows as u64 + g.m as u64 + (cfg.rows + cfg.cols) as u64;
    let compute_cycles = k_tiles as u64 * n_tiles as u64 * per_tile;

    // DRAM: weights once, inputs once per n-tile pass, outputs once.
    let weight_bytes = (g.k * g.n * cfg.operand_bytes) as u64;
    let input_bytes = (g.m * g.k * cfg.operand_bytes) as u64 * n_tiles as u64;
    let output_bytes = (g.m * g.n * cfg.output_bytes) as u64;
    let dram_bytes = weight_bytes + input_bytes + output_bytes;

    let freq = cfg.freq_mhz * 1e6;
    let compute_s = compute_cycles as f64 / freq;
    let dram_s = dram_bytes as f64 / cfg.bandwidth_bytes_per_s;
    let time_s = compute_s.max(dram_s);
    let cycles = (time_s * freq).ceil() as u64;

    let macs = g.m as f64 * g.k as f64 * g.n as f64;
    let chip_energy_mj = macs * cfg.mac_energy_pj * 1e-9 + cfg.idle_power_mw * time_s;
    let energy_mj = chip_energy_mj + dram_bytes as f64 * 15.0 * 1e-9;
    PerfEstimate {
        cycles,
        time_s,
        gops: g.ops() as f64 / time_s / 1e9,
        energy_mj,
        chip_energy_mj,
        dram_bytes,
    }
}

/// Estimates a sequence of GEMMs (a whole model).
pub fn systolic_model(cfg: &SystolicConfig, gemms: &[Gemm]) -> PerfEstimate {
    let mut total = PerfEstimate {
        cycles: 0,
        time_s: 0.0,
        gops: 0.0,
        energy_mj: 0.0,
        chip_energy_mj: 0.0,
        dram_bytes: 0,
    };
    let mut ops = 0u64;
    for g in gemms {
        let e = systolic_gemm(cfg, g);
        total.cycles += e.cycles;
        total.time_s += e.time_s;
        total.energy_mj += e.energy_mj;
        total.chip_energy_mj += e.chip_energy_mj;
        total.dram_bytes += e.dram_bytes;
        ops += g.ops();
    }
    total.gops = ops as f64 / total.time_s.max(1e-12) / 1e9;
    total
}

/// The published Gemmini spec row (for Table VIII joins).
pub fn gemmini_spec() -> AcceleratorSpec {
    crate::specs::table8_specs()
        .into_iter()
        .find(|s| s.name == "Gemmini")
        .expect("Gemmini row present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_utilisation_bounded_by_array() {
        let cfg = SystolicConfig::gemmini();
        // A large square GEMM should approach but not exceed peak
        // (2·16·16·500MHz = 256 GOPS).
        let g = Gemm::new(4096, 1024, 1024);
        let e = systolic_gemm(&cfg, &g);
        assert!(e.gops < 256.0, "gops {}", e.gops);
        assert!(e.gops > 120.0, "gops {}", e.gops);
    }

    #[test]
    fn small_k_underutilises() {
        let cfg = SystolicConfig::gemmini();
        let full = systolic_gemm(&cfg, &Gemm::new(1024, 16, 256)).gops;
        let tiny = systolic_gemm(&cfg, &Gemm::new(1024, 4, 256)).gops;
        assert!(tiny < full * 0.5, "tiny {tiny} vs full {full}");
    }

    #[test]
    fn memory_bound_when_starved() {
        let cfg = SystolicConfig {
            bandwidth_bytes_per_s: 1e8,
            ..SystolicConfig::gemmini()
        };
        let fast = SystolicConfig::gemmini();
        let g = Gemm::new(64, 2048, 2048); // weight-heavy
        assert!(systolic_gemm(&cfg, &g).time_s > systolic_gemm(&fast, &g).time_s);
    }

    #[test]
    fn model_sums_layers() {
        let cfg = SystolicConfig::gemmini();
        let g = Gemm::new(128, 128, 128);
        let one = systolic_gemm(&cfg, &g);
        let two = systolic_model(&cfg, &[g, g]);
        assert_eq!(two.cycles, 2 * one.cycles);
        assert!((two.energy_mj - 2.0 * one.energy_mj).abs() < 1e-9);
    }
}
