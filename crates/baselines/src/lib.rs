//! Baseline accelerator models LUT-DLA is compared against (paper §VII):
//! analytical re-implementations of the NVDLA official performance model
//! and a Gemmini-style weight-stationary systolic array, a PQA-mode
//! configuration of the LUT-DLA simulator, and the published spec rows of
//! Table VIII with technology-node normalisation.
//!
//! # Example
//!
//! ```
//! use lutdla_baselines::{nvdla_gemm, NvdlaConfig};
//! use lutdla_sim::Gemm;
//!
//! let est = nvdla_gemm(&NvdlaConfig::large(), &Gemm::new(512, 768, 768));
//! assert!(est.cycles >= 294_912); // 512 × ⌈768/32⌉ × ⌈768/32⌉
//! ```

mod nvdla;
mod pqa;
mod specs;
mod systolic;

pub use nvdla::{nvdla_gemm, nvdla_model, NvdlaConfig};
pub use pqa::{pqa_config, pqa_onchip_bytes, simulate_pqa};
pub use specs::{table8_specs, AcceleratorSpec, Func};
pub use systolic::{gemmini_spec, systolic_gemm, systolic_model, PerfEstimate, SystolicConfig};
