//! NVDLA performance model, following the structure of the official
//! spreadsheet model (`nvdla/hw` `perf` directory, the paper's ref. [44]):
//! the convolution engine retires `atomic_c × atomic_k` INT8 MACs per
//! cycle, layers run back-to-back, and a DRAM roofline caps throughput.

use crate::systolic::PerfEstimate;
use lutdla_sim::Gemm;

/// NVDLA instance parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NvdlaConfig {
    /// MACs along the input-channel direction per cycle.
    pub atomic_c: usize,
    /// MACs along the output-channel direction per cycle.
    pub atomic_k: usize,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// DRAM bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Average running power in mW (published Table VIII figure).
    pub power_mw: f64,
    /// Block area in mm² (published).
    pub area_mm2: f64,
    /// Sustained conv-engine efficiency (the official performance model
    /// reports well below peak on real layers: partial atomic tiles,
    /// feature-map tiling, pipeline refill).
    pub conv_efficiency: f64,
    /// Name for reports.
    pub name: &'static str,
}

impl NvdlaConfig {
    /// NVDLA-Small: 64 INT8 MACs/cycle at 1 GHz → 128 GOPS peak; the
    /// published sustained figure is 64 GOPS (Table VIII).
    pub fn small() -> Self {
        Self {
            atomic_c: 8,
            atomic_k: 8,
            freq_mhz: 1000.0,
            bandwidth_bytes_per_s: 25.6e9,
            power_mw: 55.0,
            area_mm2: 0.91,
            conv_efficiency: 0.55,
            name: "NVDLA-Small",
        }
    }

    /// NVDLA-Large: 1024 MACs/cycle at 1 GHz → 2048 GOPS peak.
    pub fn large() -> Self {
        Self {
            atomic_c: 32,
            atomic_k: 32,
            freq_mhz: 1000.0,
            bandwidth_bytes_per_s: 25.6e9,
            power_mw: 766.0,
            area_mm2: 5.5,
            conv_efficiency: 0.55,
            name: "NVDLA-Large",
        }
    }
}

/// Cycles for one GEMM (a conv lowered by im2col): the engine walks
/// `⌈K/atomic_c⌉ × ⌈N/atomic_k⌉` atomic tiles per output row.
pub fn nvdla_gemm(cfg: &NvdlaConfig, g: &Gemm) -> PerfEstimate {
    let c_tiles = g.k.div_ceil(cfg.atomic_c) as u64;
    let k_tiles = g.n.div_ceil(cfg.atomic_k) as u64;
    let compute_cycles =
        (g.m as f64 * c_tiles as f64 * k_tiles as f64 / cfg.conv_efficiency).ceil() as u64;

    // Traffic: INT8 weights + inputs + outputs (32-bit before SDP rescale).
    let dram_bytes = (g.k * g.n) as u64 + (g.m * g.k) as u64 + (g.m * g.n * 4) as u64;

    let freq = cfg.freq_mhz * 1e6;
    let compute_s = compute_cycles as f64 / freq;
    let dram_s = dram_bytes as f64 / cfg.bandwidth_bytes_per_s;
    let time_s = compute_s.max(dram_s);
    let cycles = (time_s * freq).ceil() as u64;

    // Energy: published running power × busy time (the paper's Table VIII
    // power figures are block powers at full load) plus DRAM interface
    // energy, on the same 15 pJ/B basis the LUT-DLA report uses.
    let chip_energy_mj = cfg.power_mw * time_s;
    let energy_mj = chip_energy_mj + dram_bytes as f64 * 15.0 * 1e-9;
    PerfEstimate {
        cycles,
        time_s,
        gops: g.ops() as f64 / time_s / 1e9,
        energy_mj,
        chip_energy_mj,
        dram_bytes,
    }
}

/// A whole model (GEMM sequence) on NVDLA.
pub fn nvdla_model(cfg: &NvdlaConfig, gemms: &[Gemm]) -> PerfEstimate {
    let mut total = PerfEstimate {
        cycles: 0,
        time_s: 0.0,
        gops: 0.0,
        energy_mj: 0.0,
        chip_energy_mj: 0.0,
        dram_bytes: 0,
    };
    let mut ops = 0u64;
    for g in gemms {
        let e = nvdla_gemm(cfg, g);
        total.cycles += e.cycles;
        total.time_s += e.time_s;
        total.energy_mj += e.energy_mj;
        total.chip_energy_mj += e.chip_energy_mj;
        total.dram_bytes += e.dram_bytes;
        ops += g.ops();
    }
    total.gops = ops as f64 / total.time_s.max(1e-12) / 1e9;
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_is_16x_small_in_compute() {
        let g = Gemm::new(512, 768, 768);
        let s = nvdla_gemm(&NvdlaConfig::small(), &g);
        let l = nvdla_gemm(&NvdlaConfig::large(), &g);
        let ratio = s.cycles as f64 / l.cycles as f64;
        assert!((10.0..17.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn peak_bounded() {
        let g = Gemm::new(4096, 2048, 2048);
        let l = nvdla_gemm(&NvdlaConfig::large(), &g);
        assert!(l.gops <= 2048.0, "gops {}", l.gops);
        assert!(l.gops > 1000.0, "gops {}", l.gops);
    }

    #[test]
    fn ragged_channels_underutilise() {
        // Compare at effectively infinite bandwidth so the compute-side
        // atomic-tile rounding is visible.
        let cfg = NvdlaConfig {
            bandwidth_bytes_per_s: 1e15,
            ..NvdlaConfig::large()
        };
        let aligned = nvdla_gemm(&cfg, &Gemm::new(1024, 64, 64));
        let ragged = nvdla_gemm(&cfg, &Gemm::new(1024, 65, 65));
        assert!(
            ragged.cycles > aligned.cycles * 2,
            "atomic-tile rounding: {} vs {}",
            ragged.cycles,
            aligned.cycles
        );
    }

    #[test]
    fn bert_gemm_cycle_count() {
        // 512×768×768 on NVDLA-Large: 512 × 24 × 24 = 294,912 ideal cycles,
        // divided by the sustained conv efficiency (0.55) ≈ 536k.
        let e = nvdla_gemm(&NvdlaConfig::large(), &Gemm::new(512, 768, 768));
        assert!(e.cycles >= 294_912, "cycles {}", e.cycles);
        assert!(e.cycles < 620_000, "cycles {}", e.cycles);
    }
}
