//! `lint.toml`: per-rule allowlists with mandatory justifications.
//!
//! The format is a deliberately tiny TOML subset — one table per rule,
//! each entry mapping a workspace-relative path *prefix* to a one-line
//! justification string:
//!
//! ```toml
//! [allow.spawn-discipline]
//! "crates/vq/src/serve.rs" = "collector thread is the serving front door"
//! ```
//!
//! Parsing is strict where it protects the gate: unknown rule ids,
//! non-`allow` tables, and malformed entries are hard errors, so a typo in
//! the config cannot silently disable a rule.

use crate::rules;

/// One allowlist entry: `(rule id, path prefix, justification)`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_prefix: String,
    pub why: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    pub allow: Vec<AllowEntry>,
}

impl Config {
    /// A config with no allowlist entries (every rule fully strict).
    pub fn empty() -> Self {
        Self::default()
    }

    /// True if `path` (workspace-relative, `/`-separated) is allowlisted
    /// for `rule`. Entries match whole path components, so
    /// `crates/bench` covers `crates/bench/src/lib.rs` but not
    /// `crates/bench-extra/src/lib.rs`.
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.allow.iter().any(|e| {
            e.rule == rule
                && path
                    .strip_prefix(e.path_prefix.as_str())
                    .is_some_and(|rest| {
                        rest.is_empty() || rest.starts_with('/') || e.path_prefix.ends_with('/')
                    })
        })
    }

    /// Parses the `lint.toml` subset. `source` is used in error messages.
    pub fn parse(text: &str, source: &str) -> Result<Self, String> {
        let mut allow = Vec::new();
        let mut current_rule: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| format!("{source}:{}: {msg}", idx + 1);
            if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let rule = inner.strip_prefix("allow.").ok_or_else(|| {
                    at(format!(
                        "unknown table [{inner}]: only [allow.<rule-id>] tables exist"
                    ))
                })?;
                if !rules::is_rule_id(rule) {
                    return Err(at(format!(
                        "unknown rule id {rule:?}; known rules: {}",
                        rules::rule_ids().join(", ")
                    )));
                }
                current_rule = Some(rule.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(at(format!(
                    "expected `\"path\" = \"justification\"`, got {line:?}"
                )));
            };
            let rule = current_rule
                .clone()
                .ok_or_else(|| at("entry outside any [allow.<rule-id>] table".to_string()))?;
            let path_prefix = unquote(key.trim())
                .ok_or_else(|| at(format!("path must be a quoted string, got {}", key.trim())))?;
            let why = unquote(value.trim()).ok_or_else(|| {
                at(format!(
                    "justification must be a quoted string, got {}",
                    value.trim()
                ))
            })?;
            if why.trim().is_empty() {
                return Err(at(format!(
                    "allowlist entry for {path_prefix:?} needs a non-empty justification"
                )));
            }
            allow.push(AllowEntry {
                rule,
                path_prefix,
                why,
            });
        }
        Ok(Self { allow })
    }
}

/// Drops a `#` comment that is outside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn unquote(s: &str) -> Option<String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_entries() {
        let cfg = Config::parse(
            "# top comment\n[allow.spawn-discipline]\n\"crates/vq/src/serve.rs\" = \"collector\" # why\n\n[allow.clock-discipline]\n\"crates/lutboost\" = \"stamps\"\n",
            "lint.toml",
        )
        .expect("valid config");
        assert_eq!(cfg.allow.len(), 2);
        assert!(cfg.is_allowed("spawn-discipline", "crates/vq/src/serve.rs"));
        assert!(cfg.is_allowed("clock-discipline", "crates/lutboost/src/session.rs"));
        assert!(!cfg.is_allowed("spawn-discipline", "crates/vq/src/pool.rs"));
    }

    #[test]
    fn prefix_matching_respects_path_components() {
        let cfg = Config::parse(
            "[allow.clock-discipline]\n\"crates/bench\" = \"timing crate\"\n",
            "t",
        )
        .expect("valid");
        assert!(cfg.is_allowed("clock-discipline", "crates/bench/src/lib.rs"));
        assert!(cfg.is_allowed("clock-discipline", "crates/bench"));
        assert!(!cfg.is_allowed("clock-discipline", "crates/bench-extra/src/lib.rs"));
    }

    #[test]
    fn unknown_rule_id_is_an_error() {
        let err = Config::parse("[allow.no-such-rule]\n", "lint.toml").unwrap_err();
        assert!(err.contains("lint.toml:1"), "{err}");
        assert!(err.contains("no-such-rule"), "{err}");
    }

    #[test]
    fn unknown_table_and_missing_justification_are_errors() {
        assert!(Config::parse("[rules]\n", "t").is_err());
        let err = Config::parse("[allow.layering]\n\"a/b.rs\" = \"\"\n", "t").unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn entry_outside_table_is_an_error() {
        let err = Config::parse("\"a.rs\" = \"why\"\n", "t").unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn hash_inside_quoted_value_is_not_a_comment() {
        let cfg =
            Config::parse("[allow.layering]\n\"a.rs\" = \"see issue #7\"\n", "t").expect("valid");
        assert_eq!(cfg.allow[0].why, "see issue #7");
    }
}
