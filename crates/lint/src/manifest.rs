//! Cargo manifest parsing (tiny TOML subset) and the sanctioned layering
//! DAG for the `layering` rule.
//!
//! The DAG mirrors the comment in the workspace `Cargo.toml`:
//! tensor → {vq, nn} → {hwmodel, sim} → {lutboost, models, dse} →
//! baselines → core → bench, with `sim`/`dse`/`hwmodel` as modelling
//! leaves that must never reach back into the serving stack. Only
//! `[dependencies]` edges are checked: `[dev-dependencies]` may reach any
//! workspace crate (tests routinely drive higher layers, and cargo itself
//! rejects dev-cycles), which is also why `use lutdla_*` inside
//! `#[cfg(test)]` regions is exempt in the source-side check.

use crate::rules::{violation, Violation, LAYERING};

/// `crate name → lutdla crates its [dependencies] may name`.
///
/// This table IS the sanctioned DAG; adding an edge is a reviewed change
/// to the linter, not a config tweak — that is deliberate.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("lutdla-tensor", &[]),
    ("lutdla-vq", &["lutdla-tensor"]),
    ("lutdla-nn", &["lutdla-tensor"]),
    ("lutdla-hwmodel", &[]),
    ("lutdla-sim", &["lutdla-hwmodel"]),
    ("lutdla-models", &["lutdla-nn", "lutdla-tensor"]),
    ("lutdla-dse", &["lutdla-hwmodel", "lutdla-sim"]),
    ("lutdla-baselines", &["lutdla-hwmodel", "lutdla-sim"]),
    (
        "lutdla-lutboost",
        &["lutdla-vq", "lutdla-models", "lutdla-nn", "lutdla-tensor"],
    ),
    (
        "lutdla-core",
        &[
            "lutdla-baselines",
            "lutdla-dse",
            "lutdla-hwmodel",
            "lutdla-lutboost",
            "lutdla-models",
            "lutdla-nn",
            "lutdla-sim",
            "lutdla-tensor",
            "lutdla-vq",
        ],
    ),
    (
        "lutdla-bench",
        &[
            "lutdla-baselines",
            "lutdla-core",
            "lutdla-dse",
            "lutdla-hwmodel",
            "lutdla-lutboost",
            "lutdla-models",
            "lutdla-nn",
            "lutdla-sim",
            "lutdla-tensor",
            "lutdla-vq",
        ],
    ),
    // The umbrella crate re-exports the single-import surface and nothing
    // else; everything it needs arrives through core.
    ("lutdla", &["lutdla-core"]),
    // The linter polices the workspace, so it must depend on none of it.
    ("lutdla-lint", &[]),
];

/// Deps a crate's `[dependencies]` may name, or `None` for a crate the
/// DAG does not know (itself a violation).
pub fn allowed_deps(krate: &str) -> Option<&'static [&'static str]> {
    ALLOWED_DEPS
        .iter()
        .find(|(name, _)| *name == krate)
        .map(|(_, deps)| *deps)
}

/// A parsed (enough) `Cargo.toml`: package name plus its `lutdla-*` deps
/// with the line each was declared on.
#[derive(Debug, Default)]
pub struct Manifest {
    pub package: String,
    /// `(dep name, 1-based line)` from `[dependencies]` only.
    pub deps: Vec<(String, usize)>,
}

/// Extracts the package name and `lutdla-*` `[dependencies]` entries.
/// Section tracking is exact, so `[workspace.dependencies]` and
/// `[dev-dependencies]` never leak into the checked set.
pub fn parse_manifest(text: &str) -> Manifest {
    let mut section = String::new();
    let mut m = Manifest::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = inner.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        match section.as_str() {
            "package" if key == "name" => {
                m.package = value.trim().trim_matches('"').to_string();
            }
            "dependencies" if key.starts_with("lutdla-") => {
                m.deps.push((key.to_string(), idx + 1));
            }
            _ => {}
        }
    }
    m
}

/// The `layering` rule, manifest side: every `[dependencies]` edge must be
/// in the sanctioned DAG.
pub fn check_manifest(path: &str, m: &Manifest) -> Vec<Violation> {
    let Some(allowed) = allowed_deps(&m.package) else {
        return vec![violation(
            path,
            1,
            LAYERING,
            format!(
                "crate `{}` is not in the sanctioned layering DAG; add it to lutdla-lint's ALLOWED_DEPS deliberately",
                m.package
            ),
        )];
    };
    m.deps
        .iter()
        .filter(|(dep, _)| !allowed.contains(&dep.as_str()))
        .map(|(dep, line)| {
            violation(
                path,
                *line,
                LAYERING,
                format!(
                    "`{}` must not depend on `{dep}`: the sanctioned DAG allows only [{}]",
                    m.package,
                    allowed.join(", ")
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_and_normal_deps_only() {
        let m = parse_manifest(
            "[package]\nname = \"lutdla-sim\"\n\n[dependencies]\nlutdla-hwmodel = { workspace = true }\nserde = { workspace = true }\n\n[dev-dependencies]\nlutdla-vq = { workspace = true }\n",
        );
        assert_eq!(m.package, "lutdla-sim");
        assert_eq!(m.deps.len(), 1, "dev-deps and non-lutdla deps excluded");
        assert_eq!(m.deps[0].0, "lutdla-hwmodel");
    }

    #[test]
    fn workspace_dependencies_section_is_ignored() {
        let m = parse_manifest(
            "[workspace.dependencies]\nlutdla-bench = { path = \"x\" }\n\n[package]\nname = \"lutdla\"\n\n[dependencies]\nlutdla-core = { workspace = true }\n",
        );
        assert_eq!(m.package, "lutdla");
        assert_eq!(m.deps, vec![("lutdla-core".to_string(), 8)]);
    }

    #[test]
    fn sanctioned_edge_passes_unsanctioned_fails() {
        let ok = Manifest {
            package: "lutdla-vq".into(),
            deps: vec![("lutdla-tensor".into(), 5)],
        };
        assert!(check_manifest("crates/vq/Cargo.toml", &ok).is_empty());

        let bad = Manifest {
            package: "lutdla-tensor".into(),
            deps: vec![("lutdla-vq".into(), 5)],
        };
        let v = check_manifest("crates/tensor/Cargo.toml", &bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("lutdla-vq"), "{}", v[0].message);
    }

    #[test]
    fn unknown_crate_is_flagged() {
        let m = Manifest {
            package: "lutdla-rogue".into(),
            deps: vec![],
        };
        let v = check_manifest("crates/rogue/Cargo.toml", &m);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].message.contains("not in the sanctioned"),
            "{}",
            v[0].message
        );
    }
}
