//! CLI: `lutdla-lint [ROOT] [--config PATH] [--list-rules]`.
//!
//! Exit status 0 when the workspace is clean, 1 on violations or usage
//! errors — the CI `lint` job runs this binary over the checked-out tree.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for (id, desc) in lutdla_lint::RULE_CATALOG {
                    println!("{id:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage("--config needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: lutdla-lint [ROOT] [--config PATH] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            path if root.is_none() => root = Some(PathBuf::from(path)),
            extra => return usage(&format!("unexpected argument {extra}")),
        }
    }

    let root = match root.map(Ok).unwrap_or_else(find_workspace_root) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let cfg = match config_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match lutdla_lint::Config::parse(&text, &p.display().to_string()) {
                Ok(cfg) => cfg,
                Err(e) => return fail(&e),
            },
            Err(e) => return fail(&format!("read {}: {e}", p.display())),
        },
        None => match lutdla_lint::load_config(&root) {
            Ok(cfg) => cfg,
            Err(e) => return fail(&e),
        },
    };

    match lutdla_lint::run(&root, &cfg) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "lutdla-lint: workspace clean ({} rules over {})",
                lutdla_lint::RULE_CATALOG.len(),
                root.display()
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("lutdla-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => fail(&e),
    }
}

/// Nearest ancestor of the current directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    for dir in cwd.ancestors() {
        if is_workspace_root(dir) {
            return Ok(dir.to_path_buf());
        }
    }
    Err(format!(
        "no workspace Cargo.toml above {}; pass the root explicitly",
        cwd.display()
    ))
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|text| text.contains("[workspace]"))
        .unwrap_or(false)
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("lutdla-lint: {msg}\nusage: lutdla-lint [ROOT] [--config PATH] [--list-rules]");
    ExitCode::FAILURE
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("lutdla-lint: {msg}");
    ExitCode::FAILURE
}
