//! `lutdla-lint`: the workspace invariant checker.
//!
//! The repo's core claim — a software LUT engine bit-identical to the
//! LUT-DLA accelerator datapath — rests on disciplines no compiler
//! enforces: one `unsafe` surface (the AVX2 kernels), one thread-spawn
//! site (`vq::pool`), clock reads confined to the PR 6 stamp sites, and a
//! panic-free serving hot path. This crate is a dependency-free static
//! analysis pass that checks them on every PR: a hand-rolled lexer
//! ([`lexer`]) feeds a rule engine ([`rules`]) with per-rule allowlists
//! from a checked-in `lint.toml` ([`config`]).
//!
//! Run it with `cargo run -p lutdla-lint`; violations print as
//! `file:line: rule-id: message` and exit nonzero. The README's "Static
//! analysis" section carries the rule catalog.

pub mod config;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod walk;

pub use config::Config;
pub use rules::{FileCtx, Violation, RULE_CATALOG};

use std::path::Path;

/// Lints one source string as `rel_path` belonging to `krate` — the
/// entry point the fixture tests drive directly.
pub fn check_source(rel_path: &str, krate: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    let test_like = rel_path
        .split('/')
        .any(|part| matches!(part, "tests" | "examples" | "benches"));
    let ctx = FileCtx {
        path: rel_path,
        krate,
        test_like,
    };
    rules::check_file(&ctx, &lexer::lex(source), cfg)
}

/// Lints the whole workspace at `root`: every member manifest against the
/// sanctioned DAG, then every source file against the source-side rules.
/// Returns violations sorted by file and line; empty means clean.
pub fn run(root: &Path, cfg: &Config) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();

    // Manifest side of `layering`, and the crate-name map for source files.
    let mut crate_of_dir: Vec<(String, String)> = Vec::new();
    for (rel, abs) in walk::manifests(root)? {
        let text =
            std::fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        let m = manifest::parse_manifest(&text);
        violations.extend(manifest::check_manifest(&rel, &m));
        let dir = rel.trim_end_matches("Cargo.toml").trim_end_matches('/');
        crate_of_dir.push((dir.to_string(), m.package));
    }
    // Longest prefix first, so `crates/vq` wins over the workspace root.
    crate_of_dir.sort_by_key(|(dir, _)| std::cmp::Reverse(dir.len()));

    for file in walk::rust_sources(root)? {
        let krate = crate_of_dir
            .iter()
            .find(|(dir, _)| {
                dir.is_empty()
                    || file
                        .rel_path
                        .strip_prefix(dir.as_str())
                        .is_some_and(|rest| rest.starts_with('/'))
            })
            .map(|(_, name)| name.as_str())
            .unwrap_or("lutdla");
        let source = std::fs::read_to_string(&file.abs_path)
            .map_err(|e| format!("read {}: {e}", file.abs_path.display()))?;
        let ctx = FileCtx {
            path: &file.rel_path,
            krate,
            test_like: file.test_like,
        };
        violations.extend(rules::check_file(&ctx, &lexer::lex(&source), cfg));
    }

    violations.sort();
    Ok(violations)
}

/// Loads `lint.toml` from the workspace root; a missing file means an
/// empty allowlist (fully strict), a malformed one is an error.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.is_file() {
        return Ok(Config::empty());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Config::parse(&text, &walk::relative(root, &path))
}
