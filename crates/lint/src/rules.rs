//! The rule engine: six invariants checked over lexed source
//! ([`crate::lexer`]) and parsed manifests ([`crate::manifest`]).
//!
//! | id | invariant |
//! |----|-----------|
//! | `layering` | crate deps and `use lutdla_*` imports respect the sanctioned DAG |
//! | `spawn-discipline` | `thread::spawn`/`scope`/`Builder` only in `vq/src/pool.rs` |
//! | `clock-discipline` | `Instant::now()` only in the sanctioned timing modules |
//! | `unsafe-safety` | every `unsafe` block/fn has an adjacent `// SAFETY:` comment |
//! | `panic-discipline` | no `.unwrap()`/`.expect()`/`panic!` in serving hot-path files |
//! | `allow-justification` | `#[allow(…)]` carries a same-/previous-line comment saying why |
//!
//! Scope conventions (documented in the README rule catalog):
//! - lines inside `#[cfg(test)]`/`mod tests` regions are exempt from every
//!   rule except `unsafe-safety` (unsafe is unsafe even in tests);
//! - files under `tests/`, `examples/`, or `benches/` are *test-like*:
//!   only `unsafe-safety` applies there;
//! - `lint.toml` allowlist entries ([`crate::config::Config`]) suppress a
//!   rule for a path prefix, each with a mandatory justification.

use crate::config::Config;
use crate::lexer::LexedFile;
use crate::manifest;

pub const LAYERING: &str = "layering";
pub const SPAWN: &str = "spawn-discipline";
pub const CLOCK: &str = "clock-discipline";
pub const UNSAFE: &str = "unsafe-safety";
pub const PANIC: &str = "panic-discipline";
pub const ALLOW: &str = "allow-justification";

/// `(rule id, one-line description)` — the catalog printed by
/// `lutdla-lint --list-rules` and mirrored in the README.
pub const RULE_CATALOG: &[(&str, &str)] = &[
    (
        LAYERING,
        "Cargo.toml deps and `use lutdla_*` imports must follow the sanctioned crate DAG",
    ),
    (
        SPAWN,
        "thread::spawn / thread::scope / thread::Builder only in crates/vq/src/pool.rs",
    ),
    (
        CLOCK,
        "Instant::now() only in the sanctioned timing modules (vq/serve.rs, crates/bench)",
    ),
    (
        UNSAFE,
        "every `unsafe` block or fn needs an adjacent `// SAFETY:` comment",
    ),
    (
        PANIC,
        "no .unwrap()/.expect()/panic! in serving hot-path files (poison recovery is compliant)",
    ),
    (
        ALLOW,
        "#[allow(...)] needs a same- or previous-line comment justifying it",
    ),
];

/// Hot-path files for `panic-discipline`: a panic on any of these unwinds
/// a serving thread (collector, pool worker, or session flush) mid-request.
const HOT_PATHS: &[&str] = &[
    "crates/vq/src/serve.rs",
    "crates/vq/src/engine.rs",
    "crates/vq/src/codes.rs",
    "crates/vq/src/pool.rs",
    "crates/lutboost/src/session.rs",
    "crates/lutboost/src/gateway.rs",
];

/// The one sanctioned thread-spawn site (PR 3's `WorkerPool`).
const SPAWN_SITE: &str = "crates/vq/src/pool.rs";

/// Sanctioned `Instant::now()` homes: the PR 6 stamp sites in the serving
/// front door, and the bench crate whose whole business is timing.
/// Everything else goes through `lint.toml` (e.g. the session flush stamp).
const CLOCK_SITES: &[&str] = &["crates/vq/src/serve.rs", "crates/bench"];

pub fn is_rule_id(id: &str) -> bool {
    RULE_CATALOG.iter().any(|(r, _)| *r == id)
}

pub fn rule_ids() -> Vec<&'static str> {
    RULE_CATALOG.iter().map(|(r, _)| *r).collect()
}

/// One finding, printed as `file:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

pub(crate) fn violation(file: &str, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule,
        message,
    }
}

/// Where a source file sits, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Owning package name (e.g. `lutdla-vq`).
    pub krate: &'a str,
    /// Under `tests/`, `examples/`, or `benches/`.
    pub test_like: bool,
}

/// Runs every source-side rule over one lexed file.
pub fn check_file(ctx: &FileCtx<'_>, lexed: &LexedFile, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        check_unsafe_safety(ctx, lexed, idx, cfg, &mut out);
        if ctx.test_like || line.in_test {
            continue;
        }
        check_imports(ctx, &line.code, lineno, cfg, &mut out);
        check_spawn(ctx, &line.code, lineno, cfg, &mut out);
        check_clock(ctx, &line.code, lineno, cfg, &mut out);
        check_panic(ctx, &line.code, lineno, cfg, &mut out);
        check_allow(ctx, lexed, idx, cfg, &mut out);
    }
    out
}

/// `layering`, source side: a non-test `lutdla_*` path must be a
/// sanctioned dependency of the owning crate.
fn check_imports(
    ctx: &FileCtx<'_>,
    code: &str,
    lineno: usize,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let Some(allowed) = manifest::allowed_deps(ctx.krate) else {
        return; // the manifest check already flags unknown crates
    };
    for ident in crate_refs(code) {
        let dep = format!("lutdla-{}", &ident["lutdla_".len()..]);
        if dep == ctx.krate || allowed.contains(&dep.as_str()) {
            continue;
        }
        if cfg.is_allowed(LAYERING, ctx.path) {
            continue;
        }
        out.push(violation(
            ctx.path,
            lineno,
            LAYERING,
            format!(
                "`{}` must not use `{ident}`: `{dep}` is outside its sanctioned deps [{}]",
                ctx.krate,
                allowed.join(", ")
            ),
        ));
    }
}

/// Extracts maximal `lutdla_xyz` identifiers from a code line.
fn crate_refs(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut found = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find("lutdla_") {
        let at = start + pos;
        let head_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let mut end = at + "lutdla_".len();
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        if head_ok && end > at + "lutdla_".len() {
            found.push(code[at..end].to_string());
        }
        start = end.max(at + 1);
    }
    found
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `spawn-discipline`.
fn check_spawn(
    ctx: &FileCtx<'_>,
    code: &str,
    lineno: usize,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    const PATTERNS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];
    let Some(hit) = PATTERNS.iter().find(|p| code.contains(*p)) else {
        return;
    };
    if ctx.path == SPAWN_SITE || cfg.is_allowed(SPAWN, ctx.path) {
        return;
    }
    out.push(violation(
        ctx.path,
        lineno,
        SPAWN,
        format!(
            "`{hit}` outside the sanctioned spawn site {SPAWN_SITE}; dispatch through vq::WorkerPool or allowlist this path in lint.toml with a justification"
        ),
    ));
}

/// `clock-discipline`.
fn check_clock(
    ctx: &FileCtx<'_>,
    code: &str,
    lineno: usize,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    if !code.contains("Instant::now") {
        return;
    }
    if CLOCK_SITES
        .iter()
        .any(|site| path_has_prefix(ctx.path, site))
        || cfg.is_allowed(CLOCK, ctx.path)
    {
        return;
    }
    out.push(violation(
        ctx.path,
        lineno,
        CLOCK,
        "`Instant::now()` outside the sanctioned timing modules — serving code takes timestamps from the serve.rs stamp sites (ServeTiming), not ad-hoc clock reads".to_string(),
    ));
}

fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path.strip_prefix(prefix)
        .is_some_and(|rest| rest.is_empty() || rest.starts_with('/'))
}

/// How far up from an `unsafe` token the adjacent `// SAFETY:` comment may
/// sit, skipping only blank and attribute/doc lines.
const SAFETY_LOOKBACK: usize = 8;

/// `unsafe-safety` — applies in tests too.
fn check_unsafe_safety(
    ctx: &FileCtx<'_>,
    lexed: &LexedFile,
    idx: usize,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let line = &lexed.lines[idx];
    if !has_word(&line.code, "unsafe") {
        return;
    }
    if line.comment.contains("SAFETY:") {
        return;
    }
    // Walk upward through the adjacent comment block (multi-line `//`
    // comments continue downward from their `SAFETY:` head), blank lines,
    // and attributes; real code interposing ends the search.
    for back in 1..=SAFETY_LOOKBACK.min(idx) {
        let above = &lexed.lines[idx - back];
        let code = above.code.trim();
        if above.comment.contains("SAFETY:") {
            return;
        }
        let skippable = code.is_empty() || code.starts_with("#[") || code.starts_with("#![");
        if !skippable {
            break; // real code interposes
        }
    }
    if cfg.is_allowed(UNSAFE, ctx.path) {
        return;
    }
    out.push(violation(
        ctx.path,
        idx + 1,
        UNSAFE,
        "`unsafe` without an adjacent `// SAFETY:` comment stating why the invariants hold"
            .to_string(),
    ));
}

/// `panic-discipline`.
fn check_panic(
    ctx: &FileCtx<'_>,
    code: &str,
    lineno: usize,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    if !HOT_PATHS.contains(&ctx.path) {
        return;
    }
    // `.unwrap()` requires the immediate call parens, so the compliant
    // poison-recovery form `.unwrap_or_else(|p| p.into_inner())` and the
    // `unwrap_or`/`unwrap_or_default` family never match.
    let hit = if code.contains(".unwrap()") {
        ".unwrap()"
    } else if code.contains(".expect(") {
        ".expect(…)"
    } else if has_word(code, "panic!") {
        "panic!"
    } else {
        return;
    };
    if cfg.is_allowed(PANIC, ctx.path) {
        return;
    }
    out.push(violation(
        ctx.path,
        lineno,
        PANIC,
        format!(
            "`{hit}` in a serving hot-path file: propagate an error, or recover a poisoned lock with `.unwrap_or_else(|poison| poison.into_inner())`"
        ),
    ));
}

/// `allow-justification`.
fn check_allow(
    ctx: &FileCtx<'_>,
    lexed: &LexedFile,
    idx: usize,
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let line = &lexed.lines[idx];
    if !line.code.contains("#[allow(") && !line.code.contains("#![allow(") {
        return;
    }
    if is_justification(&line.comment) {
        return; // trailing justification on the same line
    }
    if idx > 0 {
        let above = &lexed.lines[idx - 1];
        if above.code.trim().is_empty() && is_justification(&above.comment) {
            return; // plain comment line directly above
        }
    }
    if cfg.is_allowed(ALLOW, ctx.path) {
        return;
    }
    out.push(violation(
        ctx.path,
        idx + 1,
        ALLOW,
        "`#[allow(...)]` without a justification comment on the same or previous line (doc comments describe the item, not the exemption)".to_string(),
    ));
}

/// A plain `//` comment counts as an allow-justification; doc comments
/// (`///` → comment text starting with `/`, `//!` → starting with `!`)
/// document the item itself, not why the lint is suppressed.
fn is_justification(comment: &str) -> bool {
    let t = comment.trim();
    !t.is_empty() && !t.starts_with('/') && !t.starts_with('!')
}

/// `needle` appears in `haystack` with a non-identifier character (or
/// boundary) on each side. `needle` may end in `!`.
fn has_word(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let end = at + needle.len();
        let head_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let tail_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if head_ok && tail_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx<'a>(path: &'a str, krate: &'a str) -> FileCtx<'a> {
        FileCtx {
            path,
            krate,
            test_like: false,
        }
    }

    fn check(path: &str, krate: &str, src: &str) -> Vec<Violation> {
        check_file(&ctx(path, krate), &lex(src), &Config::empty())
    }

    #[test]
    fn layering_flags_unsanctioned_import() {
        let v = check(
            "crates/tensor/src/bad.rs",
            "lutdla-tensor",
            "use lutdla_vq::LutEngine;\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, LAYERING);
        assert!(v[0].message.contains("lutdla_vq"), "{}", v[0].message);
    }

    #[test]
    fn layering_accepts_sanctioned_and_self_imports() {
        let v = check(
            "crates/lutboost/src/ok.rs",
            "lutdla-lutboost",
            "use lutdla_vq::LutEngine;\nuse lutdla_nn::Graph;\nuse lutdla_lutboost::x;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn layering_ignores_test_regions_and_doc_comments() {
        let src = "//! works with lutdla_bench somehow\n#[cfg(test)]\nmod tests {\n    use lutdla_bench::x;\n}\n";
        assert!(check("crates/tensor/src/t.rs", "lutdla-tensor", src).is_empty());
    }

    #[test]
    fn spawn_flagged_outside_pool_allowed_inside() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let v = check("crates/nn/src/x.rs", "lutdla-nn", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, SPAWN);
        assert!(check("crates/vq/src/pool.rs", "lutdla-vq", src).is_empty());
    }

    #[test]
    fn spawn_allowlist_suppresses() {
        let cfg = Config::parse(
            "[allow.spawn-discipline]\n\"crates/nn/src/x.rs\" = \"test rig\"\n",
            "t",
        )
        .expect("valid");
        let lexed = lex("fn f() { std::thread::scope(|s| {}); }\n");
        assert!(check_file(&ctx("crates/nn/src/x.rs", "lutdla-nn"), &lexed, &cfg).is_empty());
    }

    #[test]
    fn clock_flagged_outside_timing_modules() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(check("crates/nn/src/x.rs", "lutdla-nn", src)[0].rule, CLOCK);
        assert!(check("crates/vq/src/serve.rs", "lutdla-vq", src).is_empty());
        assert!(check("crates/bench/src/lib.rs", "lutdla-bench", src).is_empty());
    }

    #[test]
    fn unsafe_requires_adjacent_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let v = check("crates/vq/src/x.rs", "lutdla-vq", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, UNSAFE);

        let good = "// SAFETY: p is valid for reads per the caller contract.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(check("crates/vq/src/x.rs", "lutdla-vq", good).is_empty());
    }

    #[test]
    fn unsafe_safety_comment_may_sit_above_attributes() {
        let good = "// SAFETY: only called when AVX2 was detected.\n#[target_feature(enable = \"avx2\")]\nunsafe fn fast() {}\n";
        assert!(check("crates/vq/src/x.rs", "lutdla-vq", good).is_empty());
        let trailing = "unsafe fn fast() {} // SAFETY: caller checked\n";
        assert!(check("crates/vq/src/x.rs", "lutdla-vq", trailing).is_empty());
    }

    #[test]
    fn multi_line_safety_comment_is_recognized() {
        let good = "// SAFETY: `use_avx2` is only set when\n// the detection macro reported support.\nlet x = unsafe { fast() };\n";
        assert!(check("crates/vq/src/x.rs", "lutdla-vq", good).is_empty());
    }

    #[test]
    fn doc_comment_is_not_an_allow_justification() {
        let src =
            "/// Documents the function, not the lint exemption.\n#[allow(dead_code)]\nfn f() {}\n";
        let v = check("crates/nn/src/x.rs", "lutdla-nn", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, ALLOW);
    }

    #[test]
    fn unsafe_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        let v = check("crates/vq/src/x.rs", "lutdla-vq", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, UNSAFE);
    }

    #[test]
    fn unsafe_interposing_code_defeats_a_distant_safety_comment() {
        let src = "// SAFETY: stale comment about other code.\nlet x = 1;\nlet y = unsafe { std::mem::zeroed() };\n";
        assert_eq!(check("crates/vq/src/x.rs", "lutdla-vq", src).len(), 1);
    }

    #[test]
    fn panic_rule_scoped_to_hot_paths() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let v = check("crates/vq/src/serve.rs", "lutdla-vq", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, PANIC);
        // The packed-codes module runs on the encode path of every memo
        // lookup, so it is hot too.
        let v = check("crates/vq/src/codes.rs", "lutdla-vq", src);
        assert_eq!(v.len(), 1, "codes.rs is a hot path");
        assert_eq!(v[0].rule, PANIC);
        assert!(
            check("crates/nn/src/x.rs", "lutdla-nn", src).is_empty(),
            "non-hot files exempt"
        );
    }

    #[test]
    fn poison_recovery_is_compliant() {
        let src = "fn f(m: &std::sync::Mutex<u8>) -> u8 { *m.lock().unwrap_or_else(|p| p.into_inner()) }\n";
        assert!(check("crates/vq/src/pool.rs", "lutdla-vq", src).is_empty());
    }

    #[test]
    fn panic_macro_and_expect_are_flagged_catch_unwind_is_not() {
        let v = check(
            "crates/vq/src/engine.rs",
            "lutdla-vq",
            "fn f() { std::panic::catch_unwind(|| {}).ok(); }\nfn g(o: Option<u8>) { o.expect(\"x\"); }\nfn h() { panic!(\"no\"); }\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn panic_in_hot_path_tests_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"assert\"); }\n}\n";
        assert!(check("crates/vq/src/serve.rs", "lutdla-vq", src).is_empty());
    }

    #[test]
    fn allow_needs_justification() {
        let bad = "#[allow(dead_code)]\nfn unused() {}\n";
        let v = check("crates/nn/src/x.rs", "lutdla-nn", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, ALLOW);

        let trailing = "#[allow(dead_code)] // kept for the serialized form\nfn unused() {}\n";
        assert!(check("crates/nn/src/x.rs", "lutdla-nn", trailing).is_empty());

        let above = "// kept for the serialized form\n#[allow(dead_code)]\nfn unused() {}\n";
        assert!(check("crates/nn/src/x.rs", "lutdla-nn", above).is_empty());
    }

    #[test]
    fn test_like_files_only_get_unsafe_rule() {
        let src = "use lutdla_bench::x;\nfn f() { std::thread::spawn(|| {}); let t = std::time::Instant::now(); }\nfn g(p: *const u8) -> u8 { unsafe { *p } }\n";
        let fc = FileCtx {
            path: "tests/smoke.rs",
            krate: "lutdla",
            test_like: true,
        };
        let v = check_file(&fc, &lex(src), &Config::empty());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, UNSAFE);
    }

    #[test]
    fn strings_and_comments_never_match_rules() {
        let src = "// call .unwrap() and panic! freely here\nlet s = \"thread::spawn Instant::now .unwrap() unsafe\";\nlet r = r#\"#[allow(dead_code)]\"#;\n";
        assert!(check("crates/vq/src/serve.rs", "lutdla-vq", src).is_empty());
    }
}
