//! A small hand-rolled Rust lexer: enough of the token grammar to tell
//! *code* apart from *comments* and *literal contents*, line by line.
//!
//! The rule engine ([`crate::rules`]) works on substring matches over
//! source text, which is only sound if a `.unwrap()` inside a string
//! literal or a `thread::spawn` inside a doc comment can never match. The
//! lexer therefore produces, per source line:
//!
//! - `code`: the line's code with every string/char literal's *contents*
//!   blanked out (delimiters kept, so brace counting and attribute shapes
//!   survive) and every comment removed,
//! - `comment`: the concatenated text of any comment overlapping the line
//!   (line comments, doc comments, and each line's slice of a block
//!   comment), used for `// SAFETY:` and justification detection,
//! - `in_test`: whether the line sits inside a `#[cfg(test)]` item or a
//!   `mod tests { .. }` region (tracked by brace depth over the blanked
//!   code, so braces in literals cannot desync the regions).
//!
//! Handled literal forms: `"…"` with escapes, raw strings `r"…"` /
//! `r#"…"#` (any hash count), byte strings `b"…"` / `br#"…"#`, char and
//! byte-char literals (`'x'`, `'\n'`, `'\u{1F600}'`, `b'x'`) including the
//! delimiter-bearing `'"'`, lifetimes (`'a`, `'static`) which must *not*
//! open a char literal, raw identifiers (`r#match`), and nested block
//! comments `/* /* */ */`.

/// One source line, split into its code and comment parts.
#[derive(Debug, Default, Clone)]
pub struct LineInfo {
    /// Code with literal contents blanked and comments stripped.
    pub code: String,
    /// Comment text overlapping this line (without the `//`/`/*` markers).
    pub comment: String,
    /// Inside a `#[cfg(test)]` / `mod tests` region.
    pub in_test: bool,
}

/// A lexed source file: per-line code/comment split plus test regions.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub lines: Vec<LineInfo>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment with its current depth.
    BlockComment(usize),
    /// Normal or byte string (escape-aware).
    Str,
    /// Raw (byte) string terminated by `"` followed by `hashes` `#`s.
    RawStr {
        hashes: usize,
    },
}

/// Lexes `source` into per-line code/comment views and marks test regions.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<LineInfo> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    // Last code character emitted, for `r"…"`-vs-identifier disambiguation.
    let mut prev_code: Option<char> = None;
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(LineInfo {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    prev_code = Some('"');
                    state = State::Str;
                    i += 1;
                } else if c == '\'' {
                    i = lex_char_or_lifetime(&chars, i, &mut code, &mut prev_code);
                } else if (c == 'r' || c == 'b') && !is_ident_char(prev_code) {
                    match raw_or_byte_literal(&chars, i) {
                        Some(Literal::Raw { skip, hashes }) => {
                            // Emit the opening delimiters so columns of
                            // `r#"`/`br##"` survive as code.
                            for k in 0..skip {
                                code.push(chars[i + k]);
                            }
                            prev_code = Some('"');
                            state = State::RawStr { hashes };
                            i += skip;
                        }
                        Some(Literal::ByteStr) => {
                            code.push_str("b\"");
                            prev_code = Some('"');
                            state = State::Str;
                            i += 2;
                        }
                        None => {
                            code.push(c);
                            prev_code = Some(c);
                            i += 1;
                        }
                    }
                } else {
                    code.push(c);
                    prev_code = Some(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        comment.push_str("*/");
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Mask the escape pair; `\"` must not close the string.
                    // A line-continuation `\` before the newline skips only
                    // itself, so the newline still flushes the line.
                    code.push(' ');
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without a trailing newline.
    if !code.is_empty() || !comment.is_empty() || state != State::Code {
        flush_line!();
    }

    let mut file = LexedFile { lines };
    mark_test_regions(&mut file);
    file
}

enum Literal {
    /// Raw string opener (`r"`, `r#"`, `br##"`, …): total opener length
    /// and the hash count its closer must match.
    Raw { skip: usize, hashes: usize },
    /// Byte-string opener `b"`.
    ByteStr,
}

/// Decides whether position `i` (an `r` or `b` in code) opens a raw/byte
/// string literal, or is just an identifier head (`r#match` raw idents,
/// `b'x'` byte chars fall through to the char lexer).
fn raw_or_byte_literal(chars: &[char], i: usize) -> Option<Literal> {
    let mut j = i;
    let mut byte = false;
    if chars[j] == 'b' {
        byte = true;
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return None; // b'x' — the char lexer handles the quote.
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        let mut hashes = 0;
        while chars.get(j + hashes) == Some(&'#') {
            hashes += 1;
        }
        if chars.get(j + hashes) == Some(&'"') {
            return Some(Literal::Raw {
                skip: j + hashes + 1 - i,
                hashes,
            });
        }
        return None; // r#ident / br not followed by a quote
    }
    if byte && chars.get(j) == Some(&'"') {
        return Some(Literal::ByteStr);
    }
    None
}

/// Lexes a `'`: either a char literal (blanked to `' '`) or a lifetime
/// (kept verbatim). Returns the next position.
fn lex_char_or_lifetime(
    chars: &[char],
    i: usize,
    code: &mut String,
    prev_code: &mut Option<char>,
) -> usize {
    let next = chars.get(i + 1).copied();
    if next == Some('\\') {
        // Escaped char literal: skip to the closing quote, escape-aware
        // (`'\''`, `'\\'`, `'\u{..}'`).
        let mut j = i + 2;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '\'' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        code.push_str("' '");
        *prev_code = Some('\'');
        return j;
    }
    if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
        // Plain one-char literal — including '"' and '{'.
        code.push_str("' '");
        *prev_code = Some('\'');
        return i + 3;
    }
    // Lifetime or loop label: emit the quote, leave the rest to the loop.
    code.push('\'');
    *prev_code = Some('\'');
    i + 1
}

fn is_ident_char(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_alphanumeric() || c == '_')
}

/// Marks lines inside `#[cfg(test)]` items and `mod tests` blocks.
///
/// A trigger line arms a pending region; the next `{` at code level opens
/// it (closed when brace depth returns), while a `;` first means the
/// attribute covered a single braceless item (`#[cfg(test)] use …;`).
fn mark_test_regions(file: &mut LexedFile) {
    let mut depth = 0usize;
    let mut region_starts: Vec<usize> = Vec::new();
    let mut pending = false;
    for line in &mut file.lines {
        if line.code.contains("#[cfg(test)]") || is_mod_tests(&line.code) {
            pending = true;
        }
        let mut in_test = pending || !region_starts.is_empty();
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    if pending {
                        region_starts.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if region_starts.last() == Some(&depth) {
                        region_starts.pop();
                        in_test = true; // the closing brace itself
                    }
                }
                ';' if pending && region_starts.is_empty() => {
                    pending = false; // single-item #[cfg(test)]
                }
                _ => {}
            }
            if !region_starts.is_empty() {
                in_test = true;
            }
        }
        line.in_test = in_test;
    }
}

/// `mod tests` (optionally `pub`) at item position on this line.
fn is_mod_tests(code: &str) -> bool {
    let Some(pos) = code.find("mod tests") else {
        return false;
    };
    let before_ok = code[..pos].trim().is_empty() || code[..pos].ends_with(' ');
    let after = &code[pos + "mod tests".len()..];
    let after_ok = after.is_empty() || after.starts_with([' ', '{', ';']);
    before_ok && after_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_lines(src: &str) -> Vec<String> {
        lex(src).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn raw_string_containing_line_comment_stays_code() {
        let f = lex("let s = r\"no // comment\";\n");
        assert!(f.lines[0].comment.is_empty(), "// inside r\"..\" is data");
        assert!(f.lines[0].code.contains("let s = r\""));
        assert!(!f.lines[0].code.contains("//"), "contents must be blanked");
    }

    #[test]
    fn hashed_raw_string_with_embedded_quote() {
        let f = lex("let s = r#\"a \" b // c\"#; // real\n");
        assert_eq!(f.lines[0].comment.trim(), "real");
        assert!(!f.lines[0].code.contains("// c"));
        assert!(f.lines[0].code.trim_end().ends_with(';'));
    }

    #[test]
    fn byte_strings_and_hashed_byte_strings() {
        let f = lex("let a = b\"//\"; let b = br##\"'x' //\"##;\n");
        assert!(f.lines[0].comment.is_empty());
        assert!(!f.lines[0].code.contains("//"));
    }

    #[test]
    fn nested_block_comments_close_at_outer_depth() {
        let f = lex("/* a /* b */ still comment */ let x = 1; /* c */\n");
        assert!(f.lines[0].comment.contains("still comment"));
        assert_eq!(f.lines[0].code.trim(), "let x = 1;");
    }

    #[test]
    fn multi_line_block_comment_splits_per_line() {
        let f = lex("let a = 1; /* first\nsecond SAFETY: here\n*/ let b = 2;\n");
        assert_eq!(f.lines[0].code.trim(), "let a = 1;");
        assert!(f.lines[1].comment.contains("SAFETY: here"));
        assert!(f.lines[1].code.is_empty());
        assert_eq!(f.lines[2].code.trim(), "let b = 2;");
    }

    #[test]
    fn double_quote_char_literal_does_not_open_a_string() {
        let f = lex("let q = '\"'; let x = 1; // tail\n");
        assert_eq!(f.lines[0].comment.trim(), "tail");
        assert!(f.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn escaped_char_literals_and_lifetimes() {
        let lines =
            code_lines("let a: &'static str = \"s\"; let q = '\\''; let u = '\\u{1F600}';\n");
        assert!(
            lines[0].contains("&'static str"),
            "lifetime kept: {}",
            lines[0]
        );
        assert!(lines[0].contains("let u = ' ';"), "unicode escape blanked");
    }

    #[test]
    fn brace_char_literal_does_not_skew_depth() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let c = '}'; }\n    fn g() {}\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(f.lines[3].in_test, "line after '}}' literal still in tests");
        assert!(f.lines[4].in_test, "closing brace in tests");
        assert!(!f.lines[5].in_test, "fn after() is back outside");
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let f = lex("let r#match = 1; // ok\n");
        assert_eq!(f.lines[0].comment.trim(), "ok");
        assert!(f.lines[0].code.contains("r#match"));
    }

    #[test]
    fn cfg_test_region_boundaries() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\nfn also_live() {}\n";
        let flags: Vec<bool> = lex(src).lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [false, true, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_single_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::thread;\nfn live() {}\n";
        let flags: Vec<bool> = lex(src).lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { work(); }\n";
        let flags: Vec<bool> = lex(src).lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [false, false]);
    }

    #[test]
    fn cfg_test_in_string_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\nfn live() {}\n";
        let flags: Vec<bool> = lex(src).lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [false, false]);
    }

    #[test]
    fn mod_tests_without_attribute_is_a_region() {
        let src = "mod tests {\n    fn helper() {}\n}\n";
        let flags: Vec<bool> = lex(src).lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [true, true, true]);
    }

    #[test]
    fn last_line_without_newline_is_kept() {
        let f = lex("fn a() {} // trailing");
        assert_eq!(f.lines.len(), 1);
        assert_eq!(f.lines[0].comment.trim(), "trailing");
    }
}
