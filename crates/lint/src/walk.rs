//! Workspace file discovery for the self-run: every member crate's
//! sources and manifest, with the vendored shims and build outputs
//! excluded.

use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned. `vendor/` holds API stand-ins for external
/// crates (not our code); the seeded-violation fixtures are excluded in
/// [`walk`] because they must keep tripping the rules in unit tests.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// A discovered source file with its workspace-relative path.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated.
    pub rel_path: String,
    pub abs_path: PathBuf,
    /// Under a `tests/`, `examples/`, or `benches/` directory.
    pub test_like: bool,
}

/// Collects all `.rs` files under `root`, skipping `SKIP_DIRS` and the
/// linter's own seeded-violation fixtures.
pub fn rust_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        let rel = relative(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            if rel == "crates/lint/tests/fixtures" {
                continue; // seeded violations, checked by unit tests instead
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let test_like = rel
                .split('/')
                .any(|part| matches!(part, "tests" | "examples" | "benches"));
            out.push(SourceFile {
                rel_path: rel,
                abs_path: path,
                test_like,
            });
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// All member manifests: the workspace root `Cargo.toml` plus each
/// `crates/*/Cargo.toml`.
pub fn manifests(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = vec![("Cargo.toml".to_string(), root.join("Cargo.toml"))];
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("read_dir {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", crates.display()))?;
        let manifest = entry.path().join("Cargo.toml");
        if manifest.is_file() {
            out.push((relative(root, &manifest), manifest));
        }
    }
    out.sort();
    Ok(out)
}
