//! The linter's own acceptance gate, embedded in `cargo test`: running
//! the full workspace check from inside the repo must come back clean.
//! CI additionally runs the binary (`cargo run -p lutdla-lint`), but this
//! test makes `cargo test -q` alone catch a violation introduced by any
//! PR — including one that edits the linter itself.

use std::path::Path;

#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.toml").is_file() && root.join("lint.toml").is_file(),
        "workspace root not where expected: {}",
        root.display()
    );
    let cfg = lutdla_lint::load_config(root).expect("lint.toml parses");
    let violations = lutdla_lint::run(root, &cfg).expect("workspace walk succeeds");
    assert!(
        violations.is_empty(),
        "lutdla-lint self-check failed:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn config_allowlist_entries_all_still_match_real_files() {
    // An allowlist entry whose path no longer exists is a stale exemption
    // waiting to hide a future violation — fail loudly instead.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let cfg = lutdla_lint::load_config(root).expect("lint.toml parses");
    for entry in &cfg.allow {
        assert!(
            root.join(&entry.path_prefix).exists(),
            "lint.toml allowlists missing path {:?} for rule {} — remove the stale entry",
            entry.path_prefix,
            entry.rule
        );
    }
}
