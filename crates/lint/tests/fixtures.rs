//! Drives the seeded-violation fixtures: every `tests/fixtures/<rule>.rs`
//! file must trip *exactly one* violation, of exactly its rule — the
//! compliant forms sitting next to the seeded one must stay silent. The
//! fixtures are excluded from the workspace walk ([`lutdla_lint::walk`]),
//! so the self-run stays clean while these keep proving each rule fires.

use std::path::Path;

use lutdla_lint::{check_source, Config};

/// `(fixture stem, path the source pretends to live at, owning crate)`.
/// The pretend paths place each fixture where its rule is live: the panic
/// fixture on a hot-path file, the layering fixture in the bottom crate.
const FIXTURES: &[(&str, &str, &str)] = &[
    ("layering", "crates/tensor/src/seeded.rs", "lutdla-tensor"),
    ("spawn-discipline", "crates/nn/src/seeded.rs", "lutdla-nn"),
    ("clock-discipline", "crates/nn/src/seeded.rs", "lutdla-nn"),
    ("unsafe-safety", "crates/vq/src/seeded.rs", "lutdla-vq"),
    ("panic-discipline", "crates/vq/src/serve.rs", "lutdla-vq"),
    (
        "allow-justification",
        "crates/models/src/seeded.rs",
        "lutdla-models",
    ),
];

fn fixture_source(stem: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{stem}.rs"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must exist: {e}", path.display()))
}

#[test]
fn every_rule_has_a_fixture() {
    let mut covered: Vec<&str> = FIXTURES.iter().map(|(stem, _, _)| *stem).collect();
    covered.sort();
    let mut rules: Vec<&str> = lutdla_lint::RULE_CATALOG
        .iter()
        .map(|(id, _)| *id)
        .collect();
    rules.sort();
    assert_eq!(covered, rules, "one seeded fixture per rule id");
}

#[test]
fn each_fixture_trips_exactly_its_rule_once() {
    for (stem, pretend_path, krate) in FIXTURES {
        let source = fixture_source(stem);
        let violations = check_source(pretend_path, krate, &source, &Config::empty());
        assert_eq!(
            violations.len(),
            1,
            "fixture {stem}: expected exactly one violation, got {violations:#?}"
        );
        assert_eq!(
            violations[0].rule, *stem,
            "fixture {stem} tripped the wrong rule: {}",
            violations[0]
        );
        assert_eq!(violations[0].file, *pretend_path);
        assert!(violations[0].line > 0);
    }
}

#[test]
fn gateway_is_a_panic_discipline_hot_path() {
    // PR 8 put the multi-tenant gateway on the panic-discipline hot-path
    // list: a panic there unwinds the serving front door mid-request. The
    // seeded fixture must trip at the gateway's path — and stay silent at
    // a non-hot lutboost path, proving the rule is scoped per file, not
    // per crate.
    let source = fixture_source("panic-discipline");
    let hot = check_source(
        "crates/lutboost/src/gateway.rs",
        "lutdla-lutboost",
        &source,
        &Config::empty(),
    );
    assert_eq!(hot.len(), 1, "gateway.rs must be a hot path, got {hot:#?}");
    assert_eq!(hot[0].rule, "panic-discipline");
    assert_eq!(hot[0].file, "crates/lutboost/src/gateway.rs");
    let cold = check_source(
        "crates/lutboost/src/convert.rs",
        "lutdla-lutboost",
        &source,
        &Config::empty(),
    );
    assert!(
        cold.is_empty(),
        "non-hot-path lutboost file must stay silent, got {cold:#?}"
    );
}

#[test]
fn fixtures_go_quiet_under_an_allowlist_entry() {
    for (stem, pretend_path, krate) in FIXTURES {
        let toml = format!(
            "[allow.{stem}]\n\"{pretend_path}\" = \"seeded fixture, deliberately exempt\"\n"
        );
        let cfg = Config::parse(&toml, "test-config").expect("valid allowlist");
        let violations = check_source(pretend_path, krate, &fixture_source(stem), &cfg);
        assert!(
            violations.is_empty(),
            "fixture {stem} should be suppressed by its allowlist entry, got {violations:#?}"
        );
    }
}

#[test]
fn violations_print_in_file_line_rule_message_format() {
    let (stem, pretend_path, krate) = FIXTURES[0];
    let violations = check_source(pretend_path, krate, &fixture_source(stem), &Config::empty());
    let line = violations[0].to_string();
    let mut parts = line.splitn(4, ':');
    assert_eq!(parts.next(), Some("crates/tensor/src/seeded.rs"));
    assert!(parts
        .next()
        .is_some_and(|n| n.trim().parse::<usize>().is_ok()));
    assert_eq!(parts.next().map(str::trim_start), Some("layering"));
    assert!(parts.next().is_some_and(|m| !m.trim().is_empty()));
}
