//! Seeded violation: a raw `std::thread::spawn` outside
//! `crates/vq/src/pool.rs`. Exactly one violation: the spawn inside the
//! test module and the one named in a string are both exempt.

pub fn rogue_background_work() {
    let handle = std::thread::spawn(|| 1 + 1); // VIOLATION: not the pool
    let _ = handle.join();
    let _doc = "std::thread::spawn in a string is data, not a spawn";
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_rigs_may_spawn() {
        std::thread::scope(|s| {
            s.spawn(|| ());
        });
    }
}
