//! Seeded violation: an `unsafe` block with no adjacent `// SAFETY:`
//! comment. Exactly one violation: the commented block below it complies,
//! and `unsafe` inside a string is data.

pub fn read_first(bytes: &[u8]) -> u8 {
    let p = bytes.as_ptr();
    unsafe { *p } // VIOLATION: no SAFETY comment anywhere adjacent
}

pub fn read_first_documented(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    let p = bytes.as_ptr();
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer is valid for a one-byte read.
    unsafe { *p }
}

pub fn not_code() -> &'static str {
    "unsafe { spooky } is just a string here"
}
