//! Seeded violation: checked under the hot-path name
//! `crates/vq/src/serve.rs`, where `.unwrap()` is banned. Exactly one
//! violation: the poison-recovery form and the test-module unwrap comply.

use std::sync::Mutex;

pub fn rogue_unwrap(slot: &Mutex<u64>) -> u64 {
    *slot.lock().unwrap() // VIOLATION: poisoning unwinds the collector
}

pub fn poison_recovering(slot: &Mutex<u64>) -> u64 {
    *slot.lock().unwrap_or_else(|poison| poison.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_assert_freely() {
        let v: Option<u64> = Some(7);
        assert_eq!(v.unwrap(), 7);
    }
}
