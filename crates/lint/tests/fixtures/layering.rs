//! Seeded violation: checked as a `lutdla-tensor` source file, so the
//! non-test `lutdla_vq` import below breaks the sanctioned DAG (tensor is
//! the bottom layer and may import no lutdla crate). Exactly one
//! violation: the test-region import of the same crate is exempt.

use lutdla_vq::LutEngine; // VIOLATION: tensor must not reach up into vq

pub fn touch(engine: &LutEngine) -> usize {
    engine.input_dim()
}

#[cfg(test)]
mod tests {
    use lutdla_vq::LutEngine; // dev-dep context: exempt

    #[test]
    fn compiles() {
        let _ = std::mem::size_of::<LutEngine>();
    }
}
