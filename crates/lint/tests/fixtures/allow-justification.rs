//! Seeded violation: a bare `#[allow(...)]` with no justification
//! comment. Exactly one violation: the annotated forms below comply.

#[allow(dead_code)]
pub fn bare_allow() {} // the attribute two lines up is the VIOLATION

// The serialized form keeps this field even though nothing reads it yet.
#[allow(dead_code)]
struct Justified {
    kept: u32,
}

#[allow(dead_code)] // trailing justification also counts
pub fn trailing() {}
