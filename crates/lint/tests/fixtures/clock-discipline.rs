//! Seeded violation: an ad-hoc `Instant::now()` outside the sanctioned
//! timing modules (vq/serve.rs stamp sites, the bench crate). Exactly one
//! violation: the test-module read and the doc mention are exempt.

pub fn rogue_latency_probe() -> std::time::Duration {
    let t0 = std::time::Instant::now(); // VIOLATION: not a stamp site
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
