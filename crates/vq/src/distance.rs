//! Similarity (distance) kernels: Euclidean, Manhattan, Chebyshev.
//!
//! These are the three similarity metrics LUT-DLA's dPE supports (paper
//! §V-2). Lower distance ⇔ higher similarity; every kernel returns the raw
//! distance (L2 returns the *squared* Euclidean distance — the square root
//! is monotone and never materialised in hardware).

use std::fmt;
use std::str::FromStr;

/// The similarity metric used for centroid matching.
///
/// Hardware cost decreases down the list: L2 needs multipliers, L1 swaps
/// them for absolute-difference adders, Chebyshev replaces the adder tree
/// with a max tree (see `lutdla-hwmodel`'s dPE model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Squared Euclidean distance `Σ (a−b)²`.
    L2,
    /// Manhattan distance `Σ |a−b|` — multiplication-free.
    L1,
    /// Chebyshev distance `max |a−b|` — multiplication-free, max-tree only.
    Chebyshev,
}

impl Distance {
    /// All supported metrics, in decreasing hardware cost.
    pub const ALL: [Distance; 3] = [Distance::L2, Distance::L1, Distance::Chebyshev];

    /// Distance between two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if lengths differ.
    #[inline]
    pub fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "distance operand length mismatch");
        match self {
            Distance::L2 => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| {
                    let d = x - y;
                    d * d
                })
                .sum(),
            Distance::L1 => a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum(),
            Distance::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| (x - y).abs())
                .fold(0.0, f32::max),
        }
    }

    /// Index of the closest centroid to `v` among `centroids` (row-major
    /// `[c, v.len()]`).
    ///
    /// Ties resolve to the lowest index, matching the dPE chain in the
    /// hardware (strict `<` comparison as the vector flows down the chain).
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is not a multiple of `v.len()` or is empty.
    pub fn argmin(&self, v: &[f32], centroids: &[f32]) -> usize {
        self.argmin_masked(v, centroids, v.len())
    }

    /// Like [`Distance::argmin`], but each centroid row is `stride` long and
    /// only the leading `x.len()` components participate in the distance.
    ///
    /// This is the ragged-`K` kernel: when `v ∤ K`, the final subspace holds
    /// `K mod v` real dimensions, and the trailing centroid slots are
    /// meaningless (k-means fits them to the zero padding; trained codebooks
    /// never receive gradient there). Masking them out makes assignments
    /// independent of whatever those slots contain.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or longer than `stride`, or if `centroids` is
    /// not a non-empty multiple of `stride`.
    pub fn argmin_masked(&self, x: &[f32], centroids: &[f32], stride: usize) -> usize {
        let dim = x.len();
        assert!(dim > 0 && !centroids.is_empty(), "empty operands");
        assert!(dim <= stride, "mask length exceeds centroid stride");
        assert_eq!(
            centroids.len() % stride,
            0,
            "centroid matrix shape mismatch"
        );
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, cent) in centroids.chunks_exact(stride).enumerate() {
            let d = self.eval(x, &cent[..dim]);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Number of elementary hardware operations per element-pair, used by
    /// the computational model (Eq. 1): L2 = multiply + add, L1 = |sub| +
    /// add, Chebyshev = |sub| + compare.
    pub fn alpha_sim(&self) -> f64 {
        match self {
            Distance::L2 => 2.0,
            Distance::L1 => 2.0,
            Distance::Chebyshev => 2.0,
        }
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Distance::L2 => "L2",
            Distance::L1 => "L1",
            Distance::Chebyshev => "Chebyshev",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`Distance`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDistanceError(String);

impl fmt::Display for ParseDistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown distance metric `{}`", self.0)
    }
}

impl std::error::Error for ParseDistanceError {}

impl FromStr for Distance {
    type Err = ParseDistanceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "l2" | "euclidean" => Ok(Distance::L2),
            "l1" | "manhattan" => Ok(Distance::L1),
            "chebyshev" | "che" | "linf" => Ok(Distance::Chebyshev),
            other => Err(ParseDistanceError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_is_squared_euclidean() {
        assert_eq!(Distance::L2.eval(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn l1_sums_absolute_differences() {
        assert_eq!(Distance::L1.eval(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn chebyshev_takes_max() {
        assert_eq!(Distance::Chebyshev.eval(&[0.0, 0.0], &[3.0, -4.0]), 4.0);
    }

    #[test]
    fn distances_are_zero_on_identity() {
        let v = [1.5, -2.0, 0.25];
        for d in Distance::ALL {
            assert_eq!(d.eval(&v, &v), 0.0, "{d}");
        }
    }

    #[test]
    fn argmin_finds_closest() {
        let cents = [0.0, 0.0, /* c1 */ 1.0, 1.0, /* c2 */ 5.0, 5.0];
        for d in Distance::ALL {
            assert_eq!(d.argmin(&[0.9, 1.1], &cents), 1, "{d}");
            assert_eq!(d.argmin(&[4.0, 4.5], &cents), 2, "{d}");
        }
    }

    #[test]
    fn argmin_tie_breaks_low_index() {
        let cents = [1.0, 0.0, /* mirror */ -1.0, 0.0];
        for d in Distance::ALL {
            assert_eq!(d.argmin(&[0.0, 0.0], &cents), 0, "{d}");
        }
    }

    #[test]
    fn argmin_masked_ignores_tail_slots() {
        // Two 3-wide centroid rows whose first two components are symmetric
        // around the query; the tail slot would flip the decision if counted.
        let cents = [
            0.0, 0.0, 100.0, // c0: closest in the leading dims, huge tail
            0.2, 0.2, 0.0, // c1: further in the leading dims, zero tail
        ];
        for d in Distance::ALL {
            assert_eq!(d.argmin_masked(&[0.0, 0.0], &cents, 3), 0, "{d}");
            // Full-width argmin is dominated by the garbage tail.
            assert_eq!(d.argmin(&[0.0, 0.0, 0.0], &cents), 1, "{d}");
        }
    }

    #[test]
    fn argmin_masked_full_width_equals_argmin() {
        let cents = [1.0, 2.0, -1.0, 0.5, 3.0, 3.0];
        let x = [0.4, 1.9];
        for d in Distance::ALL {
            assert_eq!(d.argmin(&x, &cents), d.argmin_masked(&x, &cents, 2), "{d}");
        }
    }

    #[test]
    fn parse_round_trip() {
        for d in Distance::ALL {
            let parsed: Distance = d.to_string().parse().expect("parse");
            assert_eq!(parsed, d);
        }
        assert!("foo".parse::<Distance>().is_err());
    }

    #[test]
    fn metrics_order_distances_consistently_near_zero() {
        // For small perturbations, all three metrics should agree on which of
        // two centroids is closer when the difference is in a single axis.
        let a = [1.0, 2.0, 3.0];
        let close = [1.1, 2.0, 3.0];
        let far = [1.6, 2.0, 3.0];
        for d in Distance::ALL {
            assert!(d.eval(&a, &close) < d.eval(&a, &far), "{d}");
        }
    }
}
