//! Approximate matrix multiplication: encode → lookup → accumulate
//! (paper Fig. 2 steps ➌/➍). This is the *functional* reference the
//! cycle-accurate simulator is validated against.

use lutdla_tensor::Tensor;

use crate::codebook::ProductQuantizer;
use crate::lut::LutTable;
use crate::precision::FloatPrecision;

/// Approximate `A[M,K] × B[K,N]` using a fitted quantizer and a table built
/// from `B`.
///
/// # Panics
///
/// Panics if shapes disagree with the quantizer/table.
///
/// # Example
///
/// ```
/// use lutdla_vq::{approx_matmul, Distance, LutQuant, LutTable, ProductQuantizer};
/// use lutdla_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let a = Tensor::rand_uniform(&mut rng, &[32, 8], -1.0, 1.0);
/// let b = Tensor::rand_uniform(&mut rng, &[8, 4], -1.0, 1.0);
/// let pq = ProductQuantizer::fit(&a, 2, 32, Distance::L2, &mut rng);
/// let lut = LutTable::build(&pq, &b, LutQuant::F32);
/// let approx = approx_matmul(&a, &pq, &lut);
/// let exact = a.matmul(&b);
/// assert!(approx.rel_error(&exact) < 0.3);
/// ```
pub fn approx_matmul(a: &Tensor, pq: &ProductQuantizer, lut: &LutTable) -> Tensor {
    approx_matmul_with_precision(a, pq, lut, FloatPrecision::Fp32)
}

/// Like [`approx_matmul`] but with the similarity datapath emulated at a
/// reduced float precision (Table IV's BF16 deployments).
pub fn approx_matmul_with_precision(
    a: &Tensor,
    pq: &ProductQuantizer,
    lut: &LutTable,
    precision: FloatPrecision,
) -> Tensor {
    let m = a.dims()[0];
    let codes = pq.encode_with_precision(a, precision);
    approx_matmul_from_codes(&codes, m, pq, lut)
}

/// Lookup/accumulate phase only, starting from precomputed codes.
///
/// # Panics
///
/// Panics if the code buffer doesn't match `m` rows of `pq.num_subspaces()`.
pub fn approx_matmul_from_codes(
    codes: &[u16],
    m: usize,
    pq: &ProductQuantizer,
    lut: &LutTable,
) -> Tensor {
    let n_sub = pq.num_subspaces();
    assert_eq!(codes.len(), m * n_sub, "code buffer shape mismatch");
    assert_eq!(lut.num_subspaces(), n_sub, "table subspace mismatch");
    let n = lut.output_dim();
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let acc = &mut out.data_mut()[i * n..(i + 1) * n];
        for s in 0..n_sub {
            lut.accumulate(s, codes[i * n_sub + s] as usize, acc);
        }
    }
    out
}

/// Error report comparing an approximate product with the exact one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmmError {
    /// Relative Frobenius error `‖Ĉ − C‖_F / ‖C‖_F`.
    pub rel_frobenius: f32,
    /// Largest absolute elementwise error.
    pub max_abs: f32,
}

/// Computes both the approximate product and its error versus the exact GEMM.
pub fn amm_error(a: &Tensor, b: &Tensor, pq: &ProductQuantizer, lut: &LutTable) -> AmmError {
    let approx = approx_matmul(a, pq, lut);
    let exact = a.matmul(b);
    let rel = approx.rel_error(&exact);
    let max_abs = approx
        .sub(&exact)
        .data()
        .iter()
        .fold(0.0f32, |m, &v| m.max(v.abs()));
    AmmError {
        rel_frobenius: rel,
        max_abs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Distance;
    use crate::lut::LutQuant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_when_rows_are_centroids() {
        // If every input row is exactly a concatenation of centroids, AMM
        // must equal the exact GEMM (up to f32 summation order).
        let mut rng = StdRng::seed_from_u64(80);
        let calib = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[8, 5], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&calib, 4, 8, Distance::L2, &mut rng);
        let lut = LutTable::build(&pq, &b, LutQuant::F32);

        let m = 16;
        let mut a = Tensor::zeros(&[m, 8]);
        for i in 0..m {
            for s in 0..2 {
                let cent = pq.codebooks()[s].centroid((i + s) % 8);
                for (j, &cj) in cent.iter().enumerate() {
                    a.set(&[i, s * 4 + j], cj);
                }
            }
        }
        let approx = approx_matmul(&a, &pq, &lut);
        let exact = a.matmul(&b);
        assert!(
            approx.allclose(&exact, 1e-4),
            "rel err {}",
            approx.rel_error(&exact)
        );
    }

    #[test]
    fn error_decreases_with_centroids() {
        let mut rng = StdRng::seed_from_u64(81);
        let a = Tensor::rand_uniform(&mut rng, &[128, 16], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[16, 8], -1.0, 1.0);
        let err = |c: usize, rng: &mut StdRng| {
            let pq = ProductQuantizer::fit(&a, 4, c, Distance::L2, rng);
            let lut = LutTable::build(&pq, &b, LutQuant::F32);
            amm_error(&a, &b, &pq, &lut).rel_frobenius
        };
        let e4 = err(4, &mut rng);
        let e64 = err(64, &mut rng);
        assert!(e64 < e4, "e64={e64} e4={e4}");
    }

    #[test]
    fn error_decreases_with_shorter_subvectors() {
        // Paper Fig. 8 (right): shorter v → better accuracy at fixed c.
        let mut rng = StdRng::seed_from_u64(82);
        let a = Tensor::rand_uniform(&mut rng, &[128, 24], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[24, 8], -1.0, 1.0);
        let err = |v: usize, rng: &mut StdRng| {
            let pq = ProductQuantizer::fit(&a, v, 16, Distance::L2, rng);
            let lut = LutTable::build(&pq, &b, LutQuant::F32);
            amm_error(&a, &b, &pq, &lut).rel_frobenius
        };
        let e3 = err(3, &mut rng);
        let e12 = err(12, &mut rng);
        assert!(e3 < e12, "e3={e3} e12={e12}");
    }

    #[test]
    fn all_metrics_produce_reasonable_error() {
        let mut rng = StdRng::seed_from_u64(83);
        let a = Tensor::rand_uniform(&mut rng, &[96, 12], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[12, 6], -1.0, 1.0);
        for metric in Distance::ALL {
            let pq = ProductQuantizer::fit(&a, 3, 32, metric, &mut rng);
            let lut = LutTable::build(&pq, &b, LutQuant::F32);
            let e = amm_error(&a, &b, &pq, &lut).rel_frobenius;
            assert!(e < 0.5, "{metric}: rel err {e}");
        }
    }

    #[test]
    fn int8_table_close_to_f32_table() {
        let mut rng = StdRng::seed_from_u64(84);
        let a = Tensor::rand_uniform(&mut rng, &[64, 16], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[16, 8], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, 4, 16, Distance::L2, &mut rng);
        let f = LutTable::build(&pq, &b, LutQuant::F32);
        let q = LutTable::build(&pq, &b, LutQuant::Int8);
        let cf = approx_matmul(&a, &pq, &f);
        let cq = approx_matmul(&a, &pq, &q);
        assert!(cq.rel_error(&cf) < 0.05, "rel {}", cq.rel_error(&cf));
    }

    #[test]
    fn codes_path_equals_direct_path() {
        let mut rng = StdRng::seed_from_u64(85);
        let a = Tensor::rand_uniform(&mut rng, &[32, 8], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[8, 4], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, 4, 8, Distance::L1, &mut rng);
        let lut = LutTable::build(&pq, &b, LutQuant::F32);
        let direct = approx_matmul(&a, &pq, &lut);
        let codes = pq.encode(&a);
        let from_codes = approx_matmul_from_codes(&codes, 32, &pq, &lut);
        assert!(direct.allclose(&from_codes, 0.0));
    }
}
