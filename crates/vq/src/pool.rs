//! `WorkerPool`: a persistent, channel-fed thread pool with a scoped-spawn
//! API.
//!
//! The deploy path used to pay a `std::thread::spawn` per worker per
//! `run_batch` call (via `std::thread::scope`). For serving workloads —
//! many small batches against long-lived engines — that spawn cost
//! dominates. This pool spawns its threads once; engines (and anything
//! else) dispatch borrowed-data tasks onto them through [`WorkerPool::scope`],
//! which provides the same guarantee as `std::thread::scope`: it does not
//! return until every task spawned inside it has finished, so tasks may
//! freely borrow from the caller's stack.
//!
//! One pool can be shared by any number of engines (`Arc<WorkerPool>`);
//! scopes from different threads interleave their tasks on the same workers
//! and each waits only for its own.
//!
//! # Example
//!
//! ```
//! use lutdla_vq::WorkerPool;
//!
//! let pool = WorkerPool::new(2);
//! let mut halves = [0u32; 2];
//! let (lo, hi) = halves.split_at_mut(1);
//! pool.scope(|scope| {
//!     scope.spawn(|| lo[0] = 1);
//!     scope.spawn(|| hi[0] = 2);
//! });
//! assert_eq!(halves, [1, 2]);
//! ```

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent thread pool executing scoped tasks. See the module docs.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    threads: Vec<JoinHandle<()>>,
}

/// Book-keeping shared between one [`WorkerPool::scope`] call and the tasks
/// it spawned: an outstanding-task count plus the first captured panic.
#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    // Every `pending` lock below recovers from poisoning instead of
    // unwrapping: the counter mutation is a bare usize add/sub that cannot
    // be left half-done, so the value is consistent even if some holder
    // panicked, and the serving path must not cascade that panic.
    fn task_started(&self) {
        *self
            .pending
            .lock()
            .unwrap_or_else(|poison| poison.into_inner()) += 1;
    }

    fn task_finished(&self) {
        let mut pending = self
            .pending
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self
            .pending
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

/// Waits for the scope's tasks in `drop`, so borrowed data stays alive for
/// every spawned task even when the scope body unwinds.
struct WaitGuard<'a>(&'a ScopeState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait_all();
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`]. The `'env`
/// lifetime ties every spawned task to data that outlives the scope call.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`: keeps callers from
    /// shrinking the environment lifetime that spawned tasks borrow.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `task` on the pool's persistent workers. The task may borrow
    /// anything that lives for `'env`; the enclosing
    /// [`WorkerPool::scope`] call blocks until it completes.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.task_started();
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the fake 'static lifetime never outlives 'env — the scope
        // that created `self` waits (in `WaitGuard::drop`, which runs even
        // on unwind) until `task_finished` has been called for every spawned
        // task, and workers drop each job at the end of its execution.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            if let Err(payload) = result {
                let mut slot = state
                    .panic
                    .lock()
                    .unwrap_or_else(|poison| poison.into_inner());
                slot.get_or_insert(payload);
            }
            state.task_finished();
        });
        // The sender lives until the pool drops and the workers outlive
        // every scope, so the send normally succeeds. If the pool is
        // degraded — zero workers spawned, or the channel somehow closed —
        // run the job inline on the caller instead of panicking: the scope
        // still completes every task, just without parallelism.
        let rejected = if self.pool.threads.is_empty() {
            Some(job)
        } else {
            match self.pool.tx.as_ref() {
                Some(tx) => tx.send(job).err().map(|e| e.0),
                // tx is only None during drop, which cannot overlap a live
                // scope — but losing a job would hang wait_all, so inline.
                None => Some(job),
            }
        };
        if let Some(job) = rejected {
            job();
        }
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = (0..threads)
            .filter_map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("lutdla-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the blocking recv;
                        // release before running the job so siblings can
                        // pick up the next one. A poisoned queue lock is
                        // recovered: the receiver itself is still intact.
                        let job = {
                            rx.lock()
                                .unwrap_or_else(|poison| poison.into_inner())
                                .recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // all senders dropped: shutdown
                        }
                    })
                    // An OS that refuses a thread leaves the pool with
                    // fewer workers; if none spawn at all, `scope` runs
                    // every job inline on the caller (see `PoolScope::
                    // spawn`) instead of panicking the serving path.
                    .ok()
            })
            .collect();
        Self {
            tx: Some(tx),
            threads,
        }
    }

    /// A pool sized by [`crate::default_workers`] (which honours the
    /// `LUTDLA_WORKERS` override).
    pub fn with_default_size() -> Self {
        Self::new(crate::default_workers())
    }

    /// Number of persistent worker threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Runs `f` with a spawn handle; returns once every task spawned through
    /// the handle has completed. If a task panicked, the panic is re-raised
    /// on the calling thread after all tasks have drained (matching
    /// `std::thread::scope` semantics).
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> T,
    {
        let state = Arc::new(ScopeState::default());
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let out = {
            let _guard = WaitGuard(&state);
            f(&scope)
            // `_guard` drops here: waits for all tasks, even on unwind of `f`.
        };
        let payload = state
            .panic
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker loop; join so no detached
        // threads outlive the pool.
        drop(self.tx.take());
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tasks_run_and_scope_waits() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 8];
        pool.scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(move || *slot = i + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn threads_persist_across_scopes() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        let counter = AtomicUsize::new(0);
        for _ in 0..5 {
            pool.scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = WorkerPool::new(1);
        let got = pool.scope(|scope| {
            scope.spawn(|| {});
            42
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn shared_pool_serves_concurrent_scopes() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let pool = Arc::clone(&pool);
                let total = &total;
                s.spawn(move || {
                    pool.scope(|scope| {
                        for _ in 0..10 {
                            scope.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn degraded_zero_worker_pool_runs_jobs_inline() {
        // As if every OS spawn failed in `new`: scopes must still complete
        // every task (inline on the caller) instead of hanging or panicking.
        let (tx, _rx) = channel::<Job>();
        let pool = WorkerPool {
            tx: Some(tx),
            threads: Vec::new(),
        };
        let hits = AtomicUsize::new(0);
        let got = pool.scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            7
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert_eq!(got, 7);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("boom"));
                scope.spawn(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "panic must cross the scope");
        assert_eq!(finished.load(Ordering::Relaxed), 1, "siblings still ran");
        // The pool survives a panicked scope.
        pool.scope(|scope| {
            scope.spawn(|| {
                finished.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(finished.load(Ordering::Relaxed), 2);
    }
}
