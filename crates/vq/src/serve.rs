//! `MicroBatcher`: a serving front door that coalesces row requests into
//! the batched [`LutEngine`] calls the engine is fast at.
//!
//! The engine's throughput comes from streaming many rows against one
//! cache-resident table tile; a request stream of single rows forfeits all
//! of it. The batcher runs one collector thread per engine: the first
//! request opens a batch and starts a deadline clock, further requests join
//! until either [`BatchOptions::max_batch`] rows are pending or
//! [`BatchOptions::max_delay`] elapses, then the whole batch runs through
//! [`LutEngine::run_batch`] and each caller's [`Pending`] handle resolves
//! with its own output rows.
//!
//! Requests may carry one row ([`MicroBatcher::submit`]) or a whole block
//! ([`MicroBatcher::submit_rows`]) — a model pipeline submits each LUT
//! stage's entire activation block as one request, and
//! [`Pending::forward`] hands a resolved block straight to the next
//! stage's batcher without surfacing the buffer to the caller.
//!
//! Two degenerate policies are first-class: `max_batch == 1` flushes every
//! request the moment it arrives, and `max_delay == 0` drains only what is
//! already queued — neither ever touches the deadline clock, so
//! latency-critical single-row serving never sleeps.
//!
//! The coalescing window itself is a policy decision
//! ([`BatchPolicy`]): a **static** window ([`BatchOptions`]) pins the
//! flush threshold, while an **adaptive** window ([`AdaptiveOptions`])
//! tracks queue pressure — the collector widens the window when flushes
//! observe backlog (requests still queued once the window filled, or a
//! single block overflowing it) and collapses it when flushes run
//! under-filled, bounded by a latency SLO that caps how long any partial
//! batch may wait. Either way the per-batcher signals (batches run, rows
//! served, queued-depth high-water, current window, cumulative engine
//! service time) are exposed through [`MicroBatcher::stats`] as a
//! [`StageStats`] snapshot, and every resolved request carries its own
//! submit→resolve [`ServeTiming`] ([`Pending::wait_timed`]) — the hooks a
//! latency-percentile harness builds histograms from.
//!
//! Because the engine computes every output row independently (encode and
//! accumulate never mix rows), a row's result is **bit-identical** whether
//! it was submitted alone, coalesced with others, or part of a direct
//! `run_batch` call — batching is purely a throughput decision.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lutdla_tensor::Tensor;

use crate::codes::EncodeMemo;
use crate::engine::LutEngine;

/// An engine behind a lock, shareable between a deployed layer, a cache,
/// and a [`MicroBatcher`] collector thread.
pub type SharedEngine = Arc<Mutex<LutEngine>>;

/// Wraps an engine for shared ownership.
pub fn share(engine: LutEngine) -> SharedEngine {
    Arc::new(Mutex::new(engine))
}

/// Locks a shared engine, recovering from poison: a panic while the lock
/// was held (e.g. a shape assert on one caller's bad input) only ever
/// leaves per-call scratch buffers in a stale-but-valid state — the
/// quantizer and tiled table are immutable after construction — so the
/// engine stays perfectly usable and one caller's mistake must not brick
/// every cached handle to it.
pub fn lock_engine(engine: &SharedEngine) -> std::sync::MutexGuard<'_, LutEngine> {
    engine.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Static coalescing policy of a [`MicroBatcher`].
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Flush as soon as this many rows are pending. `0` is normalized to
    /// `1` at batcher construction ([`BatchOptions::normalized`]) — a
    /// window of zero rows could never flush anything.
    pub max_batch: usize,
    /// Flush a partial batch this long after its first row arrived.
    pub max_delay: Duration,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
        }
    }
}

impl BatchOptions {
    /// A zero-latency policy: every flush drains only what is already
    /// queued (up to `max_batch` rows) and never waits on the deadline
    /// clock. Concurrent submitters still coalesce opportunistically; a
    /// lone submitter gets an immediate run.
    pub fn immediate(max_batch: usize) -> Self {
        Self {
            max_batch,
            max_delay: Duration::ZERO,
        }
    }

    /// The same options with degenerate fields clamped to servable values:
    /// `max_batch == 0` becomes `1`. Applied by [`MicroBatcher::new`] /
    /// [`MicroBatcher::with_policy`], so a zero window is an explicit
    /// construction-time contract rather than a silent clamp deep in the
    /// collector loop.
    pub fn normalized(self) -> Self {
        Self {
            max_batch: self.max_batch.max(1),
            max_delay: self.max_delay,
        }
    }
}

/// Adaptive coalescing policy: the flush window tracks queue pressure
/// instead of being pinned.
///
/// The collector thread already observes every signal the controller
/// needs: how many rows a flush drained (queue depth), and whether the
/// window filled with requests still waiting (backlog — the inter-arrival
/// rate outpacing the window). The rules:
///
/// * **Widen** — a flush that observed backlog (a request was already
///   queued when the window filled, or one block overflowed the window)
///   multiplies the window by [`AdaptiveOptions::widen_factor`], capped at
///   [`AdaptiveOptions::max_batch`].
/// * **Collapse** — a flush draining at most `window / collapse_divisor`
///   rows divides the window by `widen_factor`, floored at
///   [`AdaptiveOptions::min_batch`].
/// * **Latency SLO** — a partial batch never waits longer than
///   [`AdaptiveOptions::slo`] past its first arrival; `slo == 0` drains
///   only what is already queued and never touches the deadline clock
///   (the adaptive twin of [`BatchOptions::immediate`]).
///
/// An idle stream (one resolved request at a time) is a fixed point at
/// `min_batch`: a lone row neither observes backlog nor, at the floor,
/// under-fills the window — so idle traffic is served immediately, with no
/// widen/collapse oscillation.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveOptions {
    /// Collapsed window floor, in rows (normalized to at least 1).
    pub min_batch: usize,
    /// Widened window ceiling, in rows (normalized to at least
    /// `min_batch`).
    pub max_batch: usize,
    /// Longest a partial batch may wait for its window to fill. Zero means
    /// drain-only: never sleep on the deadline clock.
    pub slo: Duration,
    /// Window multiplier on a backlog flush — and the divisor on a
    /// collapse (normalized to at least 2).
    pub widen_factor: usize,
    /// A flush draining at most `window / collapse_divisor` rows collapses
    /// the window (normalized to at least 2).
    pub collapse_divisor: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self {
            min_batch: 1,
            max_batch: 64,
            slo: Duration::from_millis(2),
            widen_factor: 2,
            collapse_divisor: 2,
        }
    }
}

impl AdaptiveOptions {
    /// A drain-only adaptive policy (`slo == 0`) over the given window
    /// range: never sleeps, still widens under backlog and collapses when
    /// idle.
    pub fn drain_only(min_batch: usize, max_batch: usize) -> Self {
        Self {
            min_batch,
            max_batch,
            slo: Duration::ZERO,
            ..Self::default()
        }
    }

    /// The same options with degenerate fields clamped to servable values
    /// (see the field docs).
    pub fn normalized(self) -> Self {
        let min_batch = self.min_batch.max(1);
        Self {
            min_batch,
            max_batch: self.max_batch.max(min_batch),
            slo: self.slo,
            widen_factor: self.widen_factor.max(2),
            collapse_divisor: self.collapse_divisor.max(2),
        }
    }
}

/// How a [`MicroBatcher`]'s collector decides when to flush: a pinned
/// window, or one that adapts to queue pressure.
#[derive(Debug, Clone, Copy)]
pub enum BatchPolicy {
    /// Fixed `max_batch`/`max_delay` coalescing ([`BatchOptions`]).
    Static(BatchOptions),
    /// Pressure-driven window between `min_batch` and `max_batch`, bounded
    /// by a latency SLO ([`AdaptiveOptions`]).
    Adaptive(AdaptiveOptions),
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::Static(BatchOptions::default())
    }
}

impl BatchPolicy {
    /// The default adaptive policy ([`AdaptiveOptions::default`]).
    pub fn adaptive() -> Self {
        BatchPolicy::Adaptive(AdaptiveOptions::default())
    }

    /// The policy with its options normalized (see
    /// [`BatchOptions::normalized`] / [`AdaptiveOptions::normalized`]).
    pub fn normalized(self) -> Self {
        match self {
            BatchPolicy::Static(o) => BatchPolicy::Static(o.normalized()),
            BatchPolicy::Adaptive(o) => BatchPolicy::Adaptive(o.normalized()),
        }
    }

    /// The widest batch this policy will ever flush (the front-door
    /// coalescing width serving layers above the batcher should match).
    pub fn max_batch(&self) -> usize {
        match self {
            BatchPolicy::Static(o) => o.max_batch.max(1),
            BatchPolicy::Adaptive(o) => o.max_batch.max(o.min_batch).max(1),
        }
    }
}

/// A point-in-time snapshot of one batcher's serving counters — the
/// per-stage observability surface of a whole-model session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Coalesced batches run so far.
    pub batches_run: usize,
    /// Rows served so far.
    pub rows_served: usize,
    /// Largest queue depth (rows drained by one flush) observed so far.
    pub queued_high_water: usize,
    /// The current flush window, in rows. Constant for a static policy;
    /// tracks the controller for an adaptive one.
    pub current_window: usize,
    /// Cumulative wall time spent inside the engine's `run_batch` across
    /// every flush, in nanoseconds. `service_nanos / batches_run` is the
    /// stage's mean per-flush service latency — the per-stage signal a
    /// latency harness reads next to the per-request
    /// [`ServeTiming`] timestamps.
    pub service_nanos: u64,
    /// Encode-memo hits so far ([`MicroBatcher::with_policy_memo`]): rows
    /// whose similarity walk was skipped via the cross-request
    /// [`EncodeMemo`]. Zero for a batcher without a memo.
    pub memo_hits: usize,
    /// Encode-memo misses so far (rows that paid the walk and were
    /// inserted). Zero for a batcher without a memo.
    pub memo_misses: usize,
    /// Encode-memo evictions so far (rows dropped to stay within the memo
    /// bound). Zero for a batcher without a memo.
    pub memo_evictions: usize,
}

impl StageStats {
    /// The counters accumulated *since* an earlier snapshot of the same
    /// batcher — what a periodic reporter (the serve bench, a gateway's
    /// per-scenario stats) emits instead of process-lifetime totals.
    ///
    /// The monotone counters (`batches_run`, `rows_served`,
    /// `service_nanos`) subtract saturating, so a mismatched or stale
    /// `prev` (from a different batcher, or taken *after* `self`) yields
    /// zeros rather than wrapped-around garbage. The gauges
    /// (`queued_high_water`, `current_window`) are point-in-time readings,
    /// not counters: the delta carries `self`'s current values unchanged.
    pub fn delta(&self, prev: &StageStats) -> StageStats {
        StageStats {
            batches_run: self.batches_run.saturating_sub(prev.batches_run),
            rows_served: self.rows_served.saturating_sub(prev.rows_served),
            queued_high_water: self.queued_high_water,
            current_window: self.current_window,
            service_nanos: self.service_nanos.saturating_sub(prev.service_nanos),
            memo_hits: self.memo_hits.saturating_sub(prev.memo_hits),
            memo_misses: self.memo_misses.saturating_sub(prev.memo_misses),
            memo_evictions: self.memo_evictions.saturating_sub(prev.memo_evictions),
        }
    }
}

/// The pure widen/collapse state machine behind [`BatchPolicy::Adaptive`].
/// Kept free of channels and clocks so the rules are unit-testable
/// deterministically; the collector feeds it one `(drained, backlog)`
/// observation per flush.
#[derive(Debug)]
struct AdaptiveController {
    opts: AdaptiveOptions,
    window: usize,
}

impl AdaptiveController {
    /// Starts at the collapsed floor: an idle stage should not pay widened
    /// latency until pressure is actually observed.
    fn new(opts: AdaptiveOptions) -> Self {
        let opts = opts.normalized();
        Self {
            window: opts.min_batch,
            opts,
        }
    }

    fn window(&self) -> usize {
        self.window
    }

    /// Applies the widen/collapse rules to one flush observation:
    /// `drained` rows left the queue, and `backlog` says whether more
    /// requests were already waiting when the window filled.
    fn on_flush(&mut self, drained: usize, backlog: bool) {
        if backlog || drained > self.window {
            self.window = self
                .window
                .saturating_mul(self.opts.widen_factor)
                .min(self.opts.max_batch);
        } else if drained.saturating_mul(self.opts.collapse_divisor) <= self.window {
            self.window = (self.window / self.opts.widen_factor).max(self.opts.min_batch);
        }
    }
}

/// Errors surfaced by the submit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The submitted row does not have the engine's input width `K`.
    RowShape {
        /// Engine input width.
        expected: usize,
        /// Submitted row length.
        got: usize,
    },
    /// A submitted block is empty or not a whole number of `K`-wide rows.
    BlockShape {
        /// Engine input width (block length must be a non-zero multiple).
        row_width: usize,
        /// Submitted block length.
        got: usize,
    },
    /// The batcher shut down before the request could be served.
    Closed,
    /// Admission control turned the request away: the serving layer's
    /// bounded queue was already holding `queue_depth` requests, and the
    /// shed-or-queue decision came down on shed. The caller may retry
    /// later or fail fast — nothing was enqueued.
    Shed {
        /// Queue depth observed at the shed decision (the configured
        /// bound, for a full bounded queue).
        queue_depth: usize,
    },
    /// The request never reached a queue: it failed validation at the
    /// front door (unknown tenant, model-level input rejection, …).
    Invalid {
        /// Human-readable rejection reason.
        reason: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::RowShape { expected, got } => {
                write!(f, "row holds {got} values, engine expects K = {expected}")
            }
            SubmitError::BlockShape { row_width, got } => write!(
                f,
                "block holds {got} values, expected a non-zero multiple of K = {row_width}"
            ),
            SubmitError::Closed => write!(f, "micro-batcher is shut down"),
            SubmitError::Shed { queue_depth } => write!(
                f,
                "request shed by admission control (bounded queue at depth {queue_depth})"
            ),
            SubmitError::Invalid { reason } => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The one error surface every serving front door above the engine speaks
/// — whole-model sessions, decode sessions, and multi-tenant gateways all
/// return `ServeError`, so callers match a single enum whether a request
/// died at engine-level validation ([`SubmitError`], converted via
/// `From`), at model-level validation, or in the session machinery.
///
/// The `Display` text is stable: the engine-level variants render exactly
/// as their [`SubmitError`] counterparts, so log scrapers survive the
/// unification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The submitted row does not have the engine's input width `K`.
    RowShape {
        /// Engine input width.
        expected: usize,
        /// Submitted row length.
        got: usize,
    },
    /// A submitted block is empty or not a whole number of `K`-wide rows.
    BlockShape {
        /// Engine input width (block length must be a non-zero multiple).
        row_width: usize,
        /// Submitted block length.
        got: usize,
    },
    /// The serving path shut down before the request could be served.
    Closed,
    /// Admission control turned the request away (bounded queue full);
    /// nothing was enqueued.
    Shed {
        /// Queue depth observed at the shed decision.
        queue_depth: usize,
    },
    /// The request never reached a queue: it failed validation at the
    /// front door (unknown tenant, malformed stream, …).
    Invalid {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The request failed the model's input validation.
    InvalidInput(String),
    /// A batch entry point was handed no inputs.
    EmptyRun,
    /// A handle's resolver was dropped before resolving it (a forward
    /// panicked mid-flush and unwound past the queue).
    Lost,
}

impl From<SubmitError> for ServeError {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::RowShape { expected, got } => ServeError::RowShape { expected, got },
            SubmitError::BlockShape { row_width, got } => ServeError::BlockShape { row_width, got },
            SubmitError::Closed => ServeError::Closed,
            SubmitError::Shed { queue_depth } => ServeError::Shed { queue_depth },
            SubmitError::Invalid { reason } => ServeError::Invalid { reason },
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::RowShape { expected, got } => {
                write!(f, "row holds {got} values, engine expects K = {expected}")
            }
            ServeError::BlockShape { row_width, got } => write!(
                f,
                "block holds {got} values, expected a non-zero multiple of K = {row_width}"
            ),
            ServeError::Closed => write!(f, "micro-batcher is shut down"),
            ServeError::Shed { queue_depth } => write!(
                f,
                "request shed by admission control (bounded queue at depth {queue_depth})"
            ),
            ServeError::Invalid { reason } => write!(f, "invalid request: {reason}"),
            ServeError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ServeError::EmptyRun => write!(f, "run() needs at least one input"),
            ServeError::Lost => write!(f, "request handle dropped unresolved"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Submit→resolve timestamps of one served request, returned by
/// [`Pending::wait_timed`].
///
/// `submitted_at` is stamped when the request is created (one
/// `Instant::now` per submit); `resolved_at` is stamped by whoever resolved
/// it — once per coalesced flush, not per request — so the serving hot path
/// never pays more than two clock reads per batch. An open-loop load
/// generator measures from its own *scheduled* arrival instant
/// ([`ServeTiming::latency_since`]) so queueing delay ahead of the submit
/// call (coordinated omission) is not dropped from the record.
#[derive(Debug, Clone, Copy)]
pub struct ServeTiming {
    /// When the request entered its front door's queue.
    pub submitted_at: Instant,
    /// When the flush that computed the request's output resolved it.
    pub resolved_at: Instant,
}

impl ServeTiming {
    /// Queueing + service latency: submit → resolve.
    pub fn latency(&self) -> Duration {
        self.resolved_at
            .saturating_duration_since(self.submitted_at)
    }

    /// Latency measured from an earlier reference instant — typically an
    /// open-loop generator's scheduled arrival time, which may precede the
    /// actual submit call when the serving thread was busy.
    pub fn latency_since(&self, arrival: Instant) -> Duration {
        self.resolved_at.saturating_duration_since(arrival)
    }
}

/// Future-style handle to a submitted request's output rows.
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<(Vec<f32>, Instant)>,
    submitted_at: Instant,
}

/// The resolving half of a [`Pending`] handle minted by
/// [`Pending::channel`]: whoever computes the output calls
/// [`PendingResolver::resolve`] exactly once.
///
/// This is what lets layers *above* the engine (a whole-model serving
/// session, say) hand out the same `Pending` handles the micro-batcher
/// does, so one `wait`/`try_wait` contract covers every serving front door.
#[derive(Debug)]
pub struct PendingResolver {
    tx: Sender<(Vec<f32>, Instant)>,
}

impl PendingResolver {
    /// Resolves the paired [`Pending`] with `rows`, stamped now. A dropped
    /// handle is fine — the caller lost interest.
    pub fn resolve(self, rows: Vec<f32>) {
        self.resolve_at(rows, Instant::now());
    }

    /// Resolves with an explicit resolution stamp, so a front door
    /// resolving a whole coalesced batch reads the clock once per flush
    /// instead of once per request.
    pub fn resolve_at(self, rows: Vec<f32>, resolved_at: Instant) {
        let _ = self.tx.send((rows, resolved_at));
    }
}

impl Pending {
    /// Mints an unresolved handle plus its resolver (for serving layers
    /// that compute outputs themselves rather than through a
    /// [`MicroBatcher`]). Dropping the resolver unresolved makes
    /// [`Pending::wait`] report [`SubmitError::Closed`].
    pub fn channel() -> (PendingResolver, Pending) {
        let (tx, rx) = channel();
        (
            PendingResolver { tx },
            Pending {
                rx,
                submitted_at: Instant::now(),
            },
        )
    }

    /// Blocks until the batch containing this request has run; returns the
    /// output rows (length `rows · N`). Errors only if the batcher died
    /// first.
    pub fn wait(self) -> Result<Vec<f32>, SubmitError> {
        self.rx
            .recv()
            .map(|(rows, _)| rows)
            .map_err(|_| SubmitError::Closed)
    }

    /// [`Pending::wait`] plus the request's [`ServeTiming`] — when it was
    /// submitted and when its flush resolved it. The latency a waiter
    /// would measure around `wait` includes its own scheduling delay
    /// picking the result up; the timing here is the serving path's own.
    pub fn wait_timed(self) -> Result<(Vec<f32>, ServeTiming), SubmitError> {
        let submitted_at = self.submitted_at;
        self.rx
            .recv()
            .map(|(rows, resolved_at)| {
                (
                    rows,
                    ServeTiming {
                        submitted_at,
                        resolved_at,
                    },
                )
            })
            .map_err(|_| SubmitError::Closed)
    }

    /// Blocks until this request resolves, then moves the resolved block
    /// straight into `next`'s queue — the buffer never surfaces to (or is
    /// copied by) the caller. Returns the next stage's handle, so
    /// multi-stage chains over per-layer sessions compose as
    /// `submit(...)?.forward(&s2)?.forward(&s3)?.wait()`.
    pub fn forward(self, next: &MicroBatcher) -> Result<Pending, SubmitError> {
        let rows = self.wait()?;
        next.submit_owned(rows)
    }

    /// Blocks until this request resolves, then resolves `next` with the
    /// same rows **and the same resolution stamp** — the step-granular
    /// relay a serving layer uses when it waits on an inner handle (a
    /// stage batcher, a shared model session) while owning an outer handle
    /// of its own: the outer waiter's [`ServeTiming`] then reports when
    /// the work actually finished, not when the relay got scheduled.
    /// Propagates [`ServeError::Closed`] if the inner resolver died first.
    pub fn chain(self, next: PendingResolver) -> Result<(), ServeError> {
        let (rows, timing) = self.wait_timed()?;
        next.resolve_at(rows, timing.resolved_at);
        Ok(())
    }

    /// Non-blocking poll: `Ok(Some(row))` once the batch has run,
    /// `Ok(None)` while it has not flushed yet, and
    /// `Err(`[`SubmitError::Closed`]`)` if the batcher died first — so a
    /// poll loop observes the same terminal condition [`Pending::wait`]
    /// reports instead of spinning forever.
    pub fn try_wait(&self) -> Result<Option<Vec<f32>>, SubmitError> {
        match self.rx.try_recv() {
            Ok((row, _)) => Ok(Some(row)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(SubmitError::Closed),
        }
    }
}

struct Request {
    /// `nrows · K` activation values.
    rows: Vec<f32>,
    /// Row count of this request (1 for `submit`, the block height for
    /// `submit_rows`).
    nrows: usize,
    done: Sender<(Vec<f32>, Instant)>,
}

/// The collector's shared counter block (one allocation, shared between
/// the batcher handle and the collector thread).
struct Counters {
    batches: AtomicUsize,
    rows: AtomicUsize,
    high_water: AtomicUsize,
    window: AtomicUsize,
    service_nanos: AtomicU64,
}

impl Counters {
    fn new(initial_window: usize) -> Self {
        Self {
            batches: AtomicUsize::new(0),
            rows: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            window: AtomicUsize::new(initial_window),
            service_nanos: AtomicU64::new(0),
        }
    }
}

/// The serving front door over one [`SharedEngine`]. See the module docs.
pub struct MicroBatcher {
    tx: Option<Sender<Request>>,
    collector: Option<JoinHandle<()>>,
    k: usize,
    n: usize,
    counters: Arc<Counters>,
    memo: Option<Arc<EncodeMemo>>,
}

impl MicroBatcher {
    /// Spawns the collector thread for `engine` with a fixed coalescing
    /// window. `opts` is normalized first ([`BatchOptions::normalized`]):
    /// `max_batch == 0` is served as a window of 1.
    pub fn new(engine: SharedEngine, opts: BatchOptions) -> Self {
        Self::with_policy(engine, BatchPolicy::Static(opts))
    }

    /// Spawns the collector thread for `engine` with the given
    /// [`BatchPolicy`] (normalized first). [`BatchPolicy::Adaptive`] makes
    /// this batcher's window track queue pressure independently of any
    /// other batcher's.
    pub fn with_policy(engine: SharedEngine, policy: BatchPolicy) -> Self {
        Self::with_policy_memo(engine, policy, None)
    }

    /// [`MicroBatcher::with_policy`] with a cross-request [`EncodeMemo`]
    /// fronting the engine's encode phase: every flush goes through
    /// [`LutEngine::run_batch_memo`], so rows this stage has already seen
    /// skip the similarity walk. Sharing one memo `Arc` across stages that
    /// serve the same codebook shares the hit pool too; the memo's
    /// hit/miss/evict counters surface in [`MicroBatcher::stats`].
    pub fn with_policy_memo(
        engine: SharedEngine,
        policy: BatchPolicy,
        memo: Option<Arc<EncodeMemo>>,
    ) -> Self {
        let policy = policy.normalized();
        let (k, n) = {
            let e = lock_engine(&engine);
            (e.input_dim(), e.output_dim())
        };
        let (tx, rx) = channel::<Request>();
        let initial_window = match policy {
            BatchPolicy::Static(o) => o.max_batch,
            // The adaptive controller starts at the collapsed floor.
            BatchPolicy::Adaptive(o) => o.min_batch,
        };
        let counters = Arc::new(Counters::new(initial_window));
        let shared = Arc::clone(&counters);
        let collector_memo = memo.clone();
        let collector = std::thread::Builder::new()
            .name("lutdla-microbatch".to_string())
            .spawn(move || collect_loop(engine, rx, policy, k, n, &shared, collector_memo))
            // If the OS refuses the collector thread the batcher is born
            // closed: `tx` is dropped, so every submit reports
            // `SubmitError::Closed` instead of panicking the caller.
            .ok();
        Self {
            tx: collector.is_some().then_some(tx),
            collector,
            k,
            n,
            counters,
            memo,
        }
    }

    /// Submits one activation row (length `K`); returns a handle that
    /// resolves with the output row (length `N`) once its batch has run.
    pub fn submit(&self, row: &[f32]) -> Result<Pending, SubmitError> {
        if row.len() != self.k {
            return Err(SubmitError::RowShape {
                expected: self.k,
                got: row.len(),
            });
        }
        self.send(row.to_vec(), 1)
    }

    /// Submits a block of rows (`rows.len()` must be a non-zero multiple of
    /// `K`) as **one** request; the handle resolves with the whole output
    /// block (`nrows · N` values) once a batch containing it has run.
    ///
    /// This is the stage entry point of a model pipeline: an upstream
    /// layer's full activation block joins the batcher in a single send,
    /// coalescing with whatever other blocks or single rows are queued.
    pub fn submit_rows(&self, rows: &[f32]) -> Result<Pending, SubmitError> {
        self.submit_owned(rows.to_vec())
    }

    /// [`MicroBatcher::submit_rows`] taking ownership of the buffer, so
    /// chained stages ([`Pending::forward`]) move blocks between batchers
    /// without copying.
    pub fn submit_owned(&self, rows: Vec<f32>) -> Result<Pending, SubmitError> {
        if rows.is_empty() || !rows.len().is_multiple_of(self.k) {
            return Err(SubmitError::BlockShape {
                row_width: self.k,
                got: rows.len(),
            });
        }
        let nrows = rows.len() / self.k;
        self.send(rows, nrows)
    }

    fn send(&self, rows: Vec<f32>, nrows: usize) -> Result<Pending, SubmitError> {
        let (done, rx) = channel();
        let submitted_at = Instant::now();
        // `tx` is None only after drop took it or when the collector never
        // spawned — both are "this batcher no longer serves", not a bug in
        // the caller, so they surface as `Closed` rather than a panic.
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        tx.send(Request { rows, nrows, done })
            .map_err(|_| SubmitError::Closed)?;
        Ok(Pending { rx, submitted_at })
    }

    /// Engine input width `K`.
    pub fn input_dim(&self) -> usize {
        self.k
    }

    /// Engine output width `N`.
    pub fn output_dim(&self) -> usize {
        self.n
    }

    /// How many coalesced batches have run so far.
    pub fn batches_run(&self) -> usize {
        self.counters.batches.load(Ordering::Acquire)
    }

    /// How many rows have been served so far.
    pub fn rows_served(&self) -> usize {
        self.counters.rows.load(Ordering::Acquire)
    }

    /// The current flush window, in rows: the static `max_batch`, or
    /// wherever the adaptive controller last converged.
    pub fn current_window(&self) -> usize {
        self.counters.window.load(Ordering::Acquire)
    }

    /// Snapshot of this batcher's serving counters.
    pub fn stats(&self) -> StageStats {
        let memo = self.memo.as_ref().map(|m| m.stats()).unwrap_or_default();
        StageStats {
            batches_run: self.batches_run(),
            rows_served: self.rows_served(),
            queued_high_water: self.counters.high_water.load(Ordering::Acquire),
            current_window: self.current_window(),
            service_nanos: self.counters.service_nanos.load(Ordering::Acquire),
            memo_hits: memo.hits as usize,
            memo_misses: memo.misses as usize,
            memo_evictions: memo.evictions as usize,
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        // Closing the request channel lets the collector flush what is
        // pending and exit; join so no thread outlives the batcher.
        drop(self.tx.take());
        if let Some(t) = self.collector.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for MicroBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("batches_run", &self.batches_run())
            .field("rows_served", &self.rows_served())
            .field("window", &self.current_window())
            .finish()
    }
}

fn collect_loop(
    engine: SharedEngine,
    rx: Receiver<Request>,
    policy: BatchPolicy,
    k: usize,
    n: usize,
    counters: &Counters,
    memo: Option<Arc<EncodeMemo>>,
) {
    let memo = memo.as_deref();
    match policy {
        BatchPolicy::Static(opts) => static_loop(&engine, &rx, opts, k, n, counters, memo),
        BatchPolicy::Adaptive(opts) => adaptive_loop(&engine, &rx, opts, k, n, counters, memo),
    }
}

/// The pinned-window collector (`policy` already normalized, so
/// `max_batch >= 1`).
fn static_loop(
    engine: &SharedEngine,
    rx: &Receiver<Request>,
    opts: BatchOptions,
    k: usize,
    n: usize,
    counters: &Counters,
    memo: Option<&EncodeMemo>,
) {
    let max_rows = opts.max_batch;
    let mut open = true;
    while open {
        // Block for the first request of the next batch.
        let first = match rx.recv() {
            Ok(req) => req,
            Err(_) => break,
        };
        let mut queued = first.nrows;
        let mut pending = vec![first];
        // Grow the batch — but only if the first request left room. A full
        // first request (always true for `max_batch == 1`) flushes without
        // ever consulting the clock, and a zero-delay policy drains only
        // what is already queued: both degenerate cases serve immediately,
        // with no deadline sleeps.
        if queued < max_rows && opts.max_delay.is_zero() {
            open = drain_queued(rx, &mut pending, &mut queued, max_rows);
        } else if queued < max_rows {
            open = wait_for_window(rx, &mut pending, &mut queued, max_rows, opts.max_delay);
        }
        flush(engine, pending, k, n, counters, memo);
    }
}

/// The pressure-driven collector: the flush window follows the
/// [`AdaptiveController`], and partial batches wait at most the SLO.
fn adaptive_loop(
    engine: &SharedEngine,
    rx: &Receiver<Request>,
    opts: AdaptiveOptions,
    k: usize,
    n: usize,
    counters: &Counters,
    memo: Option<&EncodeMemo>,
) {
    // `Counters::new` already seeded the window with the controller's
    // starting point (the collapsed floor).
    let mut ctl = AdaptiveController::new(opts);
    let mut open = true;
    while open {
        let first = match rx.recv() {
            Ok(req) => req,
            Err(_) => break,
        };
        let window = ctl.window();
        let mut queued = first.nrows;
        let mut pending = vec![first];
        // Fill up to the current window: drain-only when the SLO is zero,
        // otherwise sleep at most `slo` past the first arrival — the
        // deadline is the policy's, not a constant's.
        if queued < window && opts.slo.is_zero() {
            open = drain_queued(rx, &mut pending, &mut queued, window);
        } else if queued < window {
            open = wait_for_window(rx, &mut pending, &mut queued, window, opts.slo);
        }
        // Queue-depth probe: a request already waiting once the window
        // filled is backlog pressure. It joins this batch (it is queued
        // anyway) and the controller widens.
        let mut backlog = false;
        if open && queued >= window {
            match rx.try_recv() {
                Ok(req) => {
                    queued += req.nrows;
                    pending.push(req);
                    backlog = true;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => open = false,
            }
        }
        // The controller only needs the (queued, backlog) observation, so
        // step it *before* the flush resolves any handle: a caller whose
        // `wait` returned always observes the post-flush window.
        ctl.on_flush(queued, backlog);
        counters.window.store(ctl.window(), Ordering::Release);
        flush(engine, pending, k, n, counters, memo);
    }
}

/// Drains already-queued requests into `pending` until the window fills or
/// the queue is empty. Returns `false` once the channel is disconnected.
fn drain_queued(
    rx: &Receiver<Request>,
    pending: &mut Vec<Request>,
    queued: &mut usize,
    window: usize,
) -> bool {
    loop {
        match rx.try_recv() {
            Ok(req) => {
                *queued += req.nrows;
                pending.push(req);
                if *queued >= window {
                    return true;
                }
            }
            Err(TryRecvError::Empty) => return true,
            Err(TryRecvError::Disconnected) => return false,
        }
    }
}

/// Waits for the window to fill, sleeping at most `max_delay` past the
/// first arrival. Returns `false` once the channel is disconnected.
fn wait_for_window(
    rx: &Receiver<Request>,
    pending: &mut Vec<Request>,
    queued: &mut usize,
    window: usize,
    max_delay: Duration,
) -> bool {
    let deadline = Instant::now() + max_delay;
    while *queued < window {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(req) => {
                *queued += req.nrows;
                pending.push(req);
            }
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => return false,
        }
    }
    true
}

/// Runs one coalesced batch and resolves every caller's handle with its own
/// slice of the output.
fn flush(
    engine: &SharedEngine,
    pending: Vec<Request>,
    k: usize,
    n: usize,
    counters: &Counters,
    memo: Option<&EncodeMemo>,
) {
    let m: usize = pending.iter().map(|r| r.nrows).sum();
    let mut data = Vec::with_capacity(m * k);
    for req in &pending {
        data.extend_from_slice(&req.rows);
    }
    let x = Tensor::from_vec(data, &[m, k]);
    // Two clock reads per *batch* (not per request): the engine service
    // time feeds `StageStats::service_nanos`, and the same end stamp
    // resolves every handle's `ServeTiming`.
    let service_start = Instant::now();
    let y = match memo {
        Some(memo) => lock_engine(engine).run_batch_memo(&x, memo),
        None => lock_engine(engine).run_batch(&x),
    };
    let resolved_at = Instant::now();
    counters.service_nanos.fetch_add(
        resolved_at.duration_since(service_start).as_nanos() as u64,
        Ordering::Release,
    );
    counters.batches.fetch_add(1, Ordering::Release);
    counters.rows.fetch_add(m, Ordering::Release);
    counters.high_water.fetch_max(m, Ordering::AcqRel);
    let mut row0 = 0;
    for req in pending {
        // A dropped Pending is fine — the caller lost interest.
        let _ = req.done.send((
            y.data()[row0 * n..(row0 + req.nrows) * n].to_vec(),
            resolved_at,
        ));
        row0 += req.nrows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::ProductQuantizer;
    use crate::distance::Distance;
    use crate::lut::{LutQuant, LutTable};
    use crate::precision::FloatPrecision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(quant: LutQuant, precision: FloatPrecision, seed: u64) -> (Tensor, LutEngine, Tensor) {
        let (m, k, n, v, c) = (24, 10, 9, 4, 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
        let table = LutTable::build(&pq, &b, quant);
        let mut engine = LutEngine::new(pq, &table).with_precision(precision);
        let reference = engine.run_batch(&a);
        (a, engine, reference)
    }

    #[test]
    fn concurrent_single_row_submits_match_run_batch_bitwise() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 60);
        let m = a.dims()[0];
        let k = a.dims()[1];
        let n = reference.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: m,
                max_delay: Duration::from_millis(200),
            },
        );
        let mut outs = vec![Vec::new(); m];
        std::thread::scope(|s| {
            for (i, out) in outs.iter_mut().enumerate() {
                let batcher = &batcher;
                let a = &a;
                s.spawn(move || {
                    let row = &a.data()[i * k..(i + 1) * k];
                    *out = batcher
                        .submit(row)
                        .expect("row shape is valid")
                        .wait()
                        .expect("batcher alive");
                });
            }
        });
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(
                out.as_slice(),
                &reference.data()[i * n..(i + 1) * n],
                "row {i} diverged from run_batch"
            );
        }
    }

    #[test]
    fn full_batch_coalesces_into_one_engine_call() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 61);
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: m,
                // Generous deadline: the collector must flush on max_batch,
                // not the clock.
                max_delay: Duration::from_secs(5),
            },
        );
        let handles: Vec<Pending> = (0..m)
            .map(|i| {
                batcher
                    .submit(&a.data()[i * k..(i + 1) * k])
                    .expect("valid row")
            })
            .collect();
        let n = reference.dims()[1];
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("batcher alive");
            assert_eq!(out.as_slice(), &reference.data()[i * n..(i + 1) * n]);
        }
        assert_eq!(batcher.batches_run(), 1, "rows did not coalesce");
        assert_eq!(batcher.rows_served(), m);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let (a, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 62);
        let k = a.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: 1000, // never reached: only the deadline can flush
                max_delay: Duration::from_millis(20),
            },
        );
        let handles: Vec<Pending> = (0..3)
            .map(|i| {
                batcher
                    .submit(&a.data()[i * k..(i + 1) * k])
                    .expect("valid row")
            })
            .collect();
        for h in handles {
            h.wait().expect("deadline flush must resolve the handle");
        }
        assert!(batcher.batches_run() >= 1, "no batch ran");
        assert_eq!(batcher.rows_served(), 3);
    }

    #[test]
    fn bit_identical_across_all_quant_precision_combos() {
        let quants = [LutQuant::F32, LutQuant::F16, LutQuant::Int8];
        let precisions = [
            FloatPrecision::Fp32,
            FloatPrecision::Bf16,
            FloatPrecision::Fp16,
        ];
        for (qi, &quant) in quants.iter().enumerate() {
            for (pi, &precision) in precisions.iter().enumerate() {
                let (a, engine, reference) = setup(quant, precision, 63 + (qi * 3 + pi) as u64);
                let (m, k) = (a.dims()[0], a.dims()[1]);
                let n = reference.dims()[1];
                let batcher = MicroBatcher::new(share(engine), BatchOptions::default());
                let handles: Vec<Pending> = (0..m)
                    .map(|i| {
                        batcher
                            .submit(&a.data()[i * k..(i + 1) * k])
                            .expect("valid row")
                    })
                    .collect();
                for (i, h) in handles.into_iter().enumerate() {
                    let out = h.wait().expect("batcher alive");
                    assert_eq!(
                        out.as_slice(),
                        &reference.data()[i * n..(i + 1) * n],
                        "{quant:?}+{precision:?}: row {i} not bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn poisoned_engine_lock_recovers_instead_of_bricking_the_handle() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 65);
        let shared = share(engine);
        // One caller panics while holding the lock (the shape assert a bad
        // input would trip): the mutex is now poisoned.
        let bad = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = bad.lock().expect("first lock");
            panic!("simulated bad-input panic under the engine lock");
        })
        .join();
        assert!(shared.is_poisoned(), "test setup: lock must be poisoned");
        // Every shared handle — direct locks and batcher flushes — must
        // keep serving correct results.
        let got = lock_engine(&shared).run_batch(&a);
        assert!(got.allclose(&reference, 0.0));
        let batcher = MicroBatcher::new(shared, BatchOptions::default());
        let k = a.dims()[1];
        let n = reference.dims()[1];
        let out = batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait()
            .expect("batcher alive despite earlier poison");
        assert_eq!(out.as_slice(), &reference.data()[..n]);
    }

    #[test]
    fn try_wait_distinguishes_not_ready_from_closed() {
        let (a, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 66);
        let k = a.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: 1000,
                max_delay: Duration::from_millis(100),
            },
        );
        let pending = batcher.submit(&a.data()[..k]).expect("valid row");
        // Polling before the deadline flush usually sees "not ready" —
        // and must never see Closed while the batcher lives.
        assert!(!matches!(pending.try_wait(), Err(SubmitError::Closed)));
        // Dropping the batcher flushes outstanding rows, so the handle
        // resolves with data …
        drop(batcher);
        let served = loop {
            match pending.try_wait() {
                Ok(Some(row)) => break row,
                Ok(None) => std::thread::yield_now(),
                Err(e) => panic!("flush-on-drop lost the row: {e}"),
            }
        };
        assert_eq!(served.len(), 9);
        // … and a handle drained after resolution reports Closed, not an
        // eternal Ok(None).
        assert_eq!(pending.try_wait(), Err(SubmitError::Closed));
    }

    #[test]
    fn block_submissions_coalesce_with_single_rows_bitwise() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 70);
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = reference.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: m,
                max_delay: Duration::from_secs(5),
            },
        );
        // One 10-row block, one single row, one 13-row block: 24 rows total
        // coalesce into exactly one engine call, each handle getting its own
        // slice.
        let b1 = batcher.submit_rows(&a.data()[..10 * k]).expect("block");
        let r1 = batcher.submit(&a.data()[10 * k..11 * k]).expect("row");
        let b2 = batcher
            .submit_rows(&a.data()[11 * k..24 * k])
            .expect("block");
        assert_eq!(b1.wait().expect("alive"), &reference.data()[..10 * n]);
        assert_eq!(r1.wait().expect("alive"), &reference.data()[10 * n..11 * n]);
        assert_eq!(b2.wait().expect("alive"), &reference.data()[11 * n..24 * n]);
        assert_eq!(batcher.batches_run(), 1, "requests did not coalesce");
        assert_eq!(batcher.rows_served(), m, "max_batch must count rows");
    }

    #[test]
    fn max_batch_one_serves_immediately_without_deadline_sleep() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 71);
        let k = a.dims()[1];
        let n = reference.dims()[1];
        // A pathologically long deadline: if the collector consulted the
        // clock at all, this test would hang for minutes.
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: 1,
                max_delay: Duration::from_secs(600),
            },
        );
        let t0 = Instant::now();
        for i in 0..4 {
            let out = batcher
                .submit(&a.data()[i * k..(i + 1) * k])
                .expect("valid row")
                .wait()
                .expect("batcher alive");
            assert_eq!(out.as_slice(), &reference.data()[i * n..(i + 1) * n]);
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "max_batch == 1 slept on the deadline clock"
        );
        assert_eq!(batcher.batches_run(), 4, "each row must run immediately");
        assert_eq!(batcher.rows_served(), 4);
    }

    #[test]
    fn zero_delay_runs_single_rows_immediately() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 72);
        let k = a.dims()[1];
        let n = reference.dims()[1];
        // max_batch leaves plenty of room, so only the zero-delay policy
        // (drain what is queued, never wait) can flush a lone row.
        let batcher = MicroBatcher::new(share(engine), BatchOptions::immediate(1000));
        let out = batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait()
            .expect("batcher alive");
        assert_eq!(out.as_slice(), &reference.data()[..n]);
        assert!(batcher.batches_run() >= 1);
        assert_eq!(batcher.rows_served(), 1);
    }

    #[test]
    fn forward_chains_stage_outputs_into_the_next_batcher() {
        // Stage 1: K=10 → N=9; stage 2 consumes 9-wide rows. A block
        // submitted to stage 1 and forwarded must match running the two
        // engines back to back by hand.
        let (a, engine1, mid) = setup(LutQuant::F32, FloatPrecision::Fp32, 73);
        let (k2, n2, v2, c2) = (9usize, 7usize, 3usize, 8usize);
        let mut rng = StdRng::seed_from_u64(74);
        let b2 = Tensor::rand_uniform(&mut rng, &[k2, n2], -1.0, 1.0);
        let pq2 = ProductQuantizer::fit(&mid, v2, c2, Distance::L2, &mut rng);
        let table2 = LutTable::build(&pq2, &b2, LutQuant::F32);
        let mut engine2 = LutEngine::new(pq2, &table2);
        let expected = engine2.run_batch(&mid);

        let stage1 = MicroBatcher::new(share(engine1), BatchOptions::immediate(64));
        let stage2 = MicroBatcher::new(share(engine2), BatchOptions::immediate(64));
        let rows = 6;
        let k = a.dims()[1];
        let out = stage1
            .submit_rows(&a.data()[..rows * k])
            .expect("stage-1 block")
            .forward(&stage2)
            .expect("stage-2 block")
            .wait()
            .expect("pipeline alive");
        assert_eq!(out.as_slice(), &expected.data()[..rows * n2]);
        assert_eq!(stage1.rows_served(), rows);
        assert_eq!(stage2.rows_served(), rows);
    }

    #[test]
    fn malformed_blocks_are_rejected_immediately() {
        let (_, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 75);
        let batcher = MicroBatcher::new(share(engine), BatchOptions::default());
        // Not a multiple of K = 10.
        let err = batcher.submit_rows(&[0.0; 15]).expect_err("ragged block");
        assert_eq!(
            err,
            SubmitError::BlockShape {
                row_width: 10,
                got: 15
            }
        );
        let err = batcher.submit_rows(&[]).expect_err("empty block");
        assert_eq!(
            err,
            SubmitError::BlockShape {
                row_width: 10,
                got: 0
            }
        );
    }

    #[test]
    fn wait_timed_reports_submit_to_resolve_latency() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 67);
        let k = a.dims()[1];
        let n = reference.dims()[1];
        let batcher = MicroBatcher::new(share(engine), BatchOptions::immediate(8));
        let before = Instant::now();
        let (out, timing) = batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait_timed()
            .expect("batcher alive");
        let after = Instant::now();
        assert_eq!(out.as_slice(), &reference.data()[..n]);
        // The stamps bracket the serving work and never run backwards.
        assert!(timing.submitted_at >= before);
        assert!(timing.resolved_at >= timing.submitted_at);
        assert!(timing.resolved_at <= after);
        assert!(timing.latency() <= after.duration_since(before));
        // Measuring from an earlier arrival instant can only lengthen the
        // observed latency (open-loop accounting), never shorten it.
        assert!(timing.latency_since(before) >= timing.latency());
        // The flush accounted its engine service time.
        let stats = batcher.stats();
        assert_eq!(stats.batches_run, 1);
        assert!(stats.service_nanos > 0, "flush did not record service time");
    }

    #[test]
    fn resolve_at_stamps_the_given_instant() {
        let (resolver, pending) = Pending::channel();
        let stamp = Instant::now();
        resolver.resolve_at(vec![3.0], stamp);
        let (rows, timing) = pending.wait_timed().expect("resolved");
        assert_eq!(rows, vec![3.0]);
        assert_eq!(timing.resolved_at, stamp);
        assert!(timing.submitted_at <= stamp);
    }

    #[test]
    fn pending_channel_resolves_through_the_same_contract() {
        let (resolver, pending) = Pending::channel();
        assert_eq!(pending.try_wait(), Ok(None), "unresolved must be pending");
        resolver.resolve(vec![1.0, 2.0]);
        assert_eq!(pending.wait().expect("resolved"), vec![1.0, 2.0]);

        // A resolver dropped unresolved surfaces Closed, not a hang.
        let (resolver, pending) = Pending::channel();
        drop(resolver);
        assert_eq!(pending.wait(), Err(SubmitError::Closed));
    }

    #[test]
    fn zero_max_batch_is_normalized_at_construction() {
        // The contract lives at construction, not as a silent clamp deep in
        // the collector loop.
        assert_eq!(
            BatchOptions {
                max_batch: 0,
                max_delay: Duration::ZERO
            }
            .normalized()
            .max_batch,
            1
        );
        let norm = AdaptiveOptions {
            min_batch: 0,
            max_batch: 0,
            slo: Duration::ZERO,
            widen_factor: 0,
            collapse_divisor: 1,
        }
        .normalized();
        assert_eq!((norm.min_batch, norm.max_batch), (1, 1));
        assert_eq!((norm.widen_factor, norm.collapse_divisor), (2, 2));

        // A zero-window batcher serves as a window of 1 — and says so.
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 80);
        let k = a.dims()[1];
        let n = reference.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: 0,
                // Pathological deadline: a window of 1 must never consult it.
                max_delay: Duration::from_secs(600),
            },
        );
        assert_eq!(batcher.stats().current_window, 1);
        let out = batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait()
            .expect("batcher alive");
        assert_eq!(out.as_slice(), &reference.data()[..n]);
        assert_eq!(batcher.batches_run(), 1);
    }

    #[test]
    fn adaptive_controller_rules_are_deterministic() {
        let mut ctl = AdaptiveController::new(AdaptiveOptions::drain_only(1, 16));
        assert_eq!(ctl.window(), 1, "starts at the collapsed floor");
        // Backlog widens geometrically to the cap.
        for expect in [2, 4, 8, 16, 16] {
            ctl.on_flush(ctl.window(), true);
            assert_eq!(ctl.window(), expect);
        }
        // A block overflowing the window widens too, without backlog.
        let mut ctl = AdaptiveController::new(AdaptiveOptions::drain_only(1, 16));
        ctl.on_flush(9, false);
        assert_eq!(ctl.window(), 2);
        // A well-filled flush (more than 1/collapse_divisor) holds steady.
        let mut ctl = AdaptiveController::new(AdaptiveOptions::drain_only(2, 16));
        ctl.on_flush(16, true);
        ctl.on_flush(16, true);
        ctl.on_flush(16, true);
        assert_eq!(ctl.window(), 16);
        ctl.on_flush(9, false);
        assert_eq!(ctl.window(), 16, "9 of 16 is above the collapse line");
        // Under-filled flushes collapse back down to the floor, where an
        // idle single-row stream is a fixed point (no oscillation).
        for expect in [8, 4, 2, 2] {
            ctl.on_flush(1, false);
            assert_eq!(ctl.window(), expect);
        }
        ctl.on_flush(2, false);
        assert_eq!(ctl.window(), 2, "floor is stable under lone requests");
    }

    #[test]
    fn adaptive_window_widens_on_block_load_and_collapses_when_idle() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 81);
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = reference.dims()[1];
        let batcher = MicroBatcher::with_policy(
            share(engine),
            BatchPolicy::Adaptive(AdaptiveOptions::drain_only(1, 32)),
        );
        assert_eq!(batcher.stats().current_window, 1);
        // Sustained block load: every flush drains a whole 24-row block —
        // overflow pressure — so the window doubles per flush up to the cap.
        // Submit-and-wait keeps exactly one flush per block: deterministic.
        for (i, expect) in [2usize, 4, 8, 16, 32, 32].into_iter().enumerate() {
            let out = batcher
                .submit_rows(a.data())
                .expect("block")
                .wait()
                .expect("batcher alive");
            assert_eq!(out.as_slice(), reference.data(), "block {i} diverged");
            assert_eq!(
                batcher.stats().current_window,
                expect,
                "window after block {i}"
            );
        }
        let widened = batcher.stats();
        assert_eq!(widened.queued_high_water, m);
        assert_eq!(widened.rows_served, 6 * m);
        // Idle traffic: lone rows under-fill the widened window, so it
        // halves per flush back down to the floor and stays there.
        for (i, expect) in [16usize, 8, 4, 2, 1, 1, 1].into_iter().enumerate() {
            let out = batcher
                .submit(&a.data()[..k])
                .expect("valid row")
                .wait()
                .expect("batcher alive");
            assert_eq!(out.as_slice(), &reference.data()[..n]);
            assert_eq!(
                batcher.stats().current_window,
                expect,
                "window after row {i}"
            );
        }
    }

    #[test]
    fn adaptive_window_widens_under_sustained_concurrent_load() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 82);
        let batcher = MicroBatcher::with_policy(
            share(engine),
            BatchPolicy::Adaptive(AdaptiveOptions::drain_only(1, 16)),
        );
        // 3 submitters × 3 whole-batch blocks: every flush drains at least
        // one 24-row block, which overflows any window below the 16-row cap
        // — so whatever the interleaving, the window converges to the cap.
        std::thread::scope(|s| {
            for _ in 0..3 {
                let batcher = &batcher;
                let a = &a;
                let reference = &reference;
                s.spawn(move || {
                    for _ in 0..3 {
                        let out = batcher
                            .submit_rows(a.data())
                            .expect("block")
                            .wait()
                            .expect("batcher alive");
                        assert_eq!(out.as_slice(), reference.data());
                    }
                });
            }
        });
        let stats = batcher.stats();
        assert_eq!(
            stats.current_window, 16,
            "sustained concurrent load must widen to the cap: {stats:?}"
        );
        assert_eq!(stats.rows_served, 9 * a.dims()[0]);
        assert!(stats.queued_high_water >= a.dims()[0]);
    }

    #[test]
    fn adaptive_slo_flushes_partial_batches_and_is_policy_driven() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 83);
        let k = a.dims()[1];
        let n = reference.dims()[1];
        let batcher = MicroBatcher::with_policy(
            share(engine),
            BatchPolicy::Adaptive(AdaptiveOptions {
                min_batch: 1,
                max_batch: 8,
                slo: Duration::from_millis(20),
                ..AdaptiveOptions::default()
            }),
        );
        // Widen to the cap with whole-block pressure (a full first request
        // never consults the clock, SLO or not).
        for expect in [2usize, 4, 8] {
            batcher
                .submit_rows(a.data())
                .expect("block")
                .wait()
                .expect("batcher alive");
            assert_eq!(batcher.stats().current_window, expect);
        }
        // A lone row cannot fill the widened 8-row window: only the SLO
        // deadline can flush it. The handle must resolve (with the right
        // row), and the under-filled flush must collapse the window.
        let out = batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait()
            .expect("SLO flush must resolve the handle");
        assert_eq!(out.as_slice(), &reference.data()[..n]);
        assert_eq!(batcher.stats().current_window, 4, "1 of 8 must collapse");
    }

    #[test]
    fn adaptive_policy_bit_identical_across_all_quant_precision_combos() {
        let quants = [LutQuant::F32, LutQuant::F16, LutQuant::Int8];
        let precisions = [
            FloatPrecision::Fp32,
            FloatPrecision::Bf16,
            FloatPrecision::Fp16,
        ];
        for (qi, &quant) in quants.iter().enumerate() {
            for (pi, &precision) in precisions.iter().enumerate() {
                let (a, engine, reference) = setup(quant, precision, 84 + (qi * 3 + pi) as u64);
                let (m, k) = (a.dims()[0], a.dims()[1]);
                let n = reference.dims()[1];
                let batcher = MicroBatcher::with_policy(
                    share(engine),
                    BatchPolicy::Adaptive(AdaptiveOptions::drain_only(1, m)),
                );
                // Concurrent single-row submitters: rows coalesce into
                // whatever windows the controller is at — the outputs must
                // not care.
                let mut outs = vec![Vec::new(); m];
                std::thread::scope(|s| {
                    for (i, out) in outs.iter_mut().enumerate() {
                        let batcher = &batcher;
                        let a = &a;
                        s.spawn(move || {
                            *out = batcher
                                .submit(&a.data()[i * k..(i + 1) * k])
                                .expect("valid row")
                                .wait()
                                .expect("batcher alive");
                        });
                    }
                });
                for (i, out) in outs.iter().enumerate() {
                    assert_eq!(
                        out.as_slice(),
                        &reference.data()[i * n..(i + 1) * n],
                        "{quant:?}+{precision:?}: row {i} not bit-identical under adaptive policy"
                    );
                }
            }
        }
    }

    #[test]
    fn stage_stats_delta_subtracts_counters_and_carries_gauges() {
        let prev = StageStats {
            batches_run: 10,
            rows_served: 400,
            queued_high_water: 32,
            current_window: 16,
            service_nanos: 9_000,
            memo_hits: 100,
            memo_misses: 40,
            memo_evictions: 2,
        };
        let now = StageStats {
            batches_run: 13,
            rows_served: 460,
            queued_high_water: 48,
            current_window: 8,
            service_nanos: 12_500,
            memo_hits: 160,
            memo_misses: 55,
            memo_evictions: 6,
        };
        let d = now.delta(&prev);
        // Monotone counters: the interval's own increments.
        assert_eq!(d.batches_run, 3);
        assert_eq!(d.rows_served, 60);
        assert_eq!(d.service_nanos, 3_500);
        assert_eq!(d.memo_hits, 60);
        assert_eq!(d.memo_misses, 15);
        assert_eq!(d.memo_evictions, 4);
        // Gauges: the latest point-in-time readings, not a subtraction.
        assert_eq!(d.queued_high_water, 48);
        assert_eq!(d.current_window, 8);
        // A snapshot differenced against itself is all-zero counters.
        let z = now.delta(&now);
        assert_eq!((z.batches_run, z.rows_served, z.service_nanos), (0, 0, 0));
    }

    #[test]
    fn stage_stats_delta_is_wraparound_free_on_stale_snapshots() {
        // `prev` taken *after* `self` (or from a different batcher): the
        // subtraction must saturate to zero, never wrap.
        let older = StageStats {
            batches_run: 2,
            rows_served: 50,
            queued_high_water: 8,
            current_window: 4,
            service_nanos: 1_000,
            memo_hits: 10,
            memo_misses: 5,
            memo_evictions: 1,
        };
        let newer = StageStats {
            batches_run: 7,
            rows_served: 300,
            queued_high_water: 24,
            current_window: 16,
            service_nanos: 8_000,
            memo_hits: 90,
            memo_misses: 30,
            memo_evictions: 3,
        };
        let d = older.delta(&newer);
        assert_eq!(d.batches_run, 0);
        assert_eq!(d.rows_served, 0);
        assert_eq!(d.service_nanos, 0);
        assert_eq!(
            (d.memo_hits, d.memo_misses, d.memo_evictions),
            (0, 0, 0),
            "memo counters must saturate like the other counters"
        );
        assert_eq!(d.queued_high_water, 8, "gauge must come from self");
        assert_eq!(d.current_window, 4, "gauge must come from self");
    }

    #[test]
    fn stage_stats_delta_tracks_a_live_batcher_interval() {
        let (a, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 90);
        let k = a.dims()[1];
        let batcher = MicroBatcher::new(share(engine), BatchOptions::immediate(8));
        batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait()
            .expect("batcher alive");
        let snap = batcher.stats();
        batcher
            .submit_rows(&a.data()[..3 * k])
            .expect("valid block")
            .wait()
            .expect("batcher alive");
        let d = batcher.stats().delta(&snap);
        assert_eq!(d.batches_run, 1, "exactly the interval's flush");
        assert_eq!(d.rows_served, 3, "exactly the interval's rows");
        assert!(d.service_nanos > 0, "interval accounted engine time");
    }

    #[test]
    fn memo_backed_batcher_is_bit_identical_and_reports_memo_counters() {
        let (a, engine, reference) = setup(LutQuant::Int8, FloatPrecision::Bf16, 91);
        let m = a.dims()[0];
        // Capacity of `8 * m` rows means even a fully skewed shard
        // distribution cannot evict (each shard holds `m`).
        let memo = Arc::new(EncodeMemo::new(8 * m));
        let batcher = MicroBatcher::with_policy_memo(
            share(engine),
            BatchPolicy::Static(BatchOptions::immediate(8)),
            Some(Arc::clone(&memo)),
        );
        // Two passes over the same block: the first is all misses, the
        // second is all hits — and both must match the memo-less reference
        // bit for bit.
        for pass in 0..2 {
            let out = batcher
                .submit_rows(a.data())
                .expect("valid block")
                .wait()
                .expect("batcher alive");
            assert_eq!(
                out.as_slice(),
                reference.data(),
                "pass {pass} not bit-identical through the memo"
            );
        }
        let stats = batcher.stats();
        assert_eq!(stats.memo_misses, m, "first pass populated the memo");
        assert_eq!(stats.memo_hits, m, "second pass was served from the memo");
        assert_eq!(stats.memo_evictions, 0, "memo was sized to hold the batch");
        assert_eq!(stats.rows_served, 2 * m);
    }

    #[test]
    fn memoless_batcher_reports_zero_memo_counters() {
        let (a, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 92);
        let k = a.dims()[1];
        let batcher = MicroBatcher::new(share(engine), BatchOptions::immediate(4));
        batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait()
            .expect("batcher alive");
        let stats = batcher.stats();
        assert_eq!(
            (stats.memo_hits, stats.memo_misses, stats.memo_evictions),
            (0, 0, 0),
            "no memo, no memo traffic"
        );
    }

    #[test]
    fn shed_and_invalid_errors_format_their_context() {
        let shed = SubmitError::Shed { queue_depth: 16 };
        assert_eq!(
            shed.to_string(),
            "request shed by admission control (bounded queue at depth 16)"
        );
        let invalid = SubmitError::Invalid {
            reason: "unknown tenant id 7".to_string(),
        };
        assert_eq!(invalid.to_string(), "invalid request: unknown tenant id 7");
        // Structured matching stays available to retry logic.
        assert!(matches!(shed, SubmitError::Shed { queue_depth: 16 }));
        // The unified ServeError renders engine-level variants with the
        // exact same stable text — conversion never rewrites messages.
        for e in [
            SubmitError::RowShape {
                expected: 8,
                got: 3,
            },
            SubmitError::BlockShape {
                row_width: 8,
                got: 12,
            },
            SubmitError::Closed,
            shed,
            invalid,
        ] {
            let text = e.to_string();
            assert_eq!(ServeError::from(e).to_string(), text);
        }
        // And the session-level variants have their own stable text.
        assert_eq!(
            ServeError::InvalidInput("token 99 outside vocab".to_string()).to_string(),
            "invalid input: token 99 outside vocab"
        );
        assert_eq!(
            ServeError::EmptyRun.to_string(),
            "run() needs at least one input"
        );
        assert_eq!(
            ServeError::Lost.to_string(),
            "request handle dropped unresolved"
        );
    }

    #[test]
    fn chain_relays_rows_and_the_inner_resolution_stamp() {
        let (inner_resolver, inner) = Pending::channel();
        let (outer_resolver, outer) = Pending::channel();
        let stamp = Instant::now();
        inner_resolver.resolve_at(vec![1.0, 2.0], stamp);
        inner.chain(outer_resolver).expect("inner resolved");
        let (rows, timing) = outer.wait_timed().expect("outer resolved");
        assert_eq!(rows, vec![1.0, 2.0]);
        // The relay preserves the *inner* resolution instant, so an outer
        // waiter's latency excludes relay scheduling slack.
        assert_eq!(timing.resolved_at, stamp);

        // A dead inner resolver surfaces as the unified Closed error.
        let (dead, never) = Pending::channel();
        drop(dead);
        let (outer_resolver, outer) = Pending::channel();
        assert_eq!(never.chain(outer_resolver), Err(ServeError::Closed));
        assert_eq!(outer.wait(), Err(SubmitError::Closed));
    }

    #[test]
    fn wrong_row_width_is_rejected_immediately() {
        let (_, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 64);
        let batcher = MicroBatcher::new(share(engine), BatchOptions::default());
        let err = batcher.submit(&[1.0, 2.0]).expect_err("short row");
        assert_eq!(
            err,
            SubmitError::RowShape {
                expected: 10,
                got: 2
            }
        );
    }
}
