//! `MicroBatcher`: a serving front door that coalesces single-row requests
//! into the batched [`LutEngine`] calls the engine is fast at.
//!
//! The engine's throughput comes from streaming many rows against one
//! cache-resident table tile; a request stream of single rows forfeits all
//! of it. The batcher runs one collector thread per engine: the first row
//! opens a batch and starts a deadline clock, further rows join until either
//! [`BatchOptions::max_batch`] rows are pending or
//! [`BatchOptions::max_delay`] elapses, then the whole batch runs through
//! [`LutEngine::run_batch`] and each caller's [`Pending`] handle resolves
//! with its own output row.
//!
//! Because the engine computes every output row independently (encode and
//! accumulate never mix rows), a row's result is **bit-identical** whether
//! it was submitted alone, coalesced with others, or part of a direct
//! `run_batch` call — batching is purely a throughput decision.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lutdla_tensor::Tensor;

use crate::engine::LutEngine;

/// An engine behind a lock, shareable between a deployed layer, a cache,
/// and a [`MicroBatcher`] collector thread.
pub type SharedEngine = Arc<Mutex<LutEngine>>;

/// Wraps an engine for shared ownership.
pub fn share(engine: LutEngine) -> SharedEngine {
    Arc::new(Mutex::new(engine))
}

/// Locks a shared engine, recovering from poison: a panic while the lock
/// was held (e.g. a shape assert on one caller's bad input) only ever
/// leaves per-call scratch buffers in a stale-but-valid state — the
/// quantizer and tiled table are immutable after construction — so the
/// engine stays perfectly usable and one caller's mistake must not brick
/// every cached handle to it.
pub fn lock_engine(engine: &SharedEngine) -> std::sync::MutexGuard<'_, LutEngine> {
    engine.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Coalescing policy of a [`MicroBatcher`].
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Flush as soon as this many rows are pending.
    pub max_batch: usize,
    /// Flush a partial batch this long after its first row arrived.
    pub max_delay: Duration,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Errors surfaced by the submit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The submitted row does not have the engine's input width `K`.
    RowShape {
        /// Engine input width.
        expected: usize,
        /// Submitted row length.
        got: usize,
    },
    /// The batcher shut down before the request could be served.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::RowShape { expected, got } => {
                write!(f, "row holds {got} values, engine expects K = {expected}")
            }
            SubmitError::Closed => write!(f, "micro-batcher is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Future-style handle to one submitted row's output.
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<Vec<f32>>,
}

impl Pending {
    /// Blocks until the batch containing this row has run; returns the
    /// output row (length `N`). Errors only if the batcher died first.
    pub fn wait(self) -> Result<Vec<f32>, SubmitError> {
        self.rx.recv().map_err(|_| SubmitError::Closed)
    }

    /// Non-blocking poll: `Ok(Some(row))` once the batch has run,
    /// `Ok(None)` while it has not flushed yet, and
    /// `Err(`[`SubmitError::Closed`]`)` if the batcher died first — so a
    /// poll loop observes the same terminal condition [`Pending::wait`]
    /// reports instead of spinning forever.
    pub fn try_wait(&self) -> Result<Option<Vec<f32>>, SubmitError> {
        match self.rx.try_recv() {
            Ok(row) => Ok(Some(row)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(SubmitError::Closed),
        }
    }
}

struct Request {
    row: Vec<f32>,
    done: Sender<Vec<f32>>,
}

/// The serving front door over one [`SharedEngine`]. See the module docs.
pub struct MicroBatcher {
    tx: Option<Sender<Request>>,
    collector: Option<JoinHandle<()>>,
    k: usize,
    n: usize,
    batches: Arc<AtomicUsize>,
    rows: Arc<AtomicUsize>,
}

impl MicroBatcher {
    /// Spawns the collector thread for `engine` with the given coalescing
    /// policy.
    pub fn new(engine: SharedEngine, opts: BatchOptions) -> Self {
        let (k, n) = {
            let e = lock_engine(&engine);
            (e.input_dim(), e.output_dim())
        };
        let (tx, rx) = channel::<Request>();
        let batches = Arc::new(AtomicUsize::new(0));
        let rows = Arc::new(AtomicUsize::new(0));
        let counters = (Arc::clone(&batches), Arc::clone(&rows));
        let collector = std::thread::Builder::new()
            .name("lutdla-microbatch".to_string())
            .spawn(move || collect_loop(engine, rx, opts, k, n, counters))
            .expect("spawn micro-batch collector");
        Self {
            tx: Some(tx),
            collector: Some(collector),
            k,
            n,
            batches,
            rows,
        }
    }

    /// Submits one activation row (length `K`); returns a handle that
    /// resolves with the output row (length `N`) once its batch has run.
    pub fn submit(&self, row: &[f32]) -> Result<Pending, SubmitError> {
        if row.len() != self.k {
            return Err(SubmitError::RowShape {
                expected: self.k,
                got: row.len(),
            });
        }
        let (done, rx) = channel();
        self.tx
            .as_ref()
            .expect("sender lives until drop")
            .send(Request {
                row: row.to_vec(),
                done,
            })
            .map_err(|_| SubmitError::Closed)?;
        Ok(Pending { rx })
    }

    /// Engine input width `K`.
    pub fn input_dim(&self) -> usize {
        self.k
    }

    /// Engine output width `N`.
    pub fn output_dim(&self) -> usize {
        self.n
    }

    /// How many coalesced batches have run so far.
    pub fn batches_run(&self) -> usize {
        self.batches.load(Ordering::Acquire)
    }

    /// How many rows have been served so far.
    pub fn rows_served(&self) -> usize {
        self.rows.load(Ordering::Acquire)
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        // Closing the request channel lets the collector flush what is
        // pending and exit; join so no thread outlives the batcher.
        drop(self.tx.take());
        if let Some(t) = self.collector.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for MicroBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("batches_run", &self.batches_run())
            .field("rows_served", &self.rows_served())
            .finish()
    }
}

fn collect_loop(
    engine: SharedEngine,
    rx: Receiver<Request>,
    opts: BatchOptions,
    k: usize,
    n: usize,
    (batches, rows): (Arc<AtomicUsize>, Arc<AtomicUsize>),
) {
    let max_batch = opts.max_batch.max(1);
    let mut open = true;
    while open {
        // Block for the first row of the next batch.
        let first = match rx.recv() {
            Ok(req) => req,
            Err(_) => break,
        };
        let mut pending = vec![first];
        let deadline = Instant::now() + opts.max_delay;
        while pending.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(req) => pending.push(req),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        flush(&engine, pending, k, n, &batches, &rows);
    }
}

/// Runs one coalesced batch and resolves every caller's handle.
fn flush(
    engine: &SharedEngine,
    pending: Vec<Request>,
    k: usize,
    n: usize,
    batches: &AtomicUsize,
    rows: &AtomicUsize,
) {
    let m = pending.len();
    let mut data = Vec::with_capacity(m * k);
    for req in &pending {
        data.extend_from_slice(&req.row);
    }
    let x = Tensor::from_vec(data, &[m, k]);
    let y = lock_engine(engine).run_batch(&x);
    batches.fetch_add(1, Ordering::Release);
    rows.fetch_add(m, Ordering::Release);
    for (i, req) in pending.into_iter().enumerate() {
        // A dropped Pending is fine — the caller lost interest.
        let _ = req.done.send(y.data()[i * n..(i + 1) * n].to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::ProductQuantizer;
    use crate::distance::Distance;
    use crate::lut::{LutQuant, LutTable};
    use crate::precision::FloatPrecision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(quant: LutQuant, precision: FloatPrecision, seed: u64) -> (Tensor, LutEngine, Tensor) {
        let (m, k, n, v, c) = (24, 10, 9, 4, 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
        let table = LutTable::build(&pq, &b, quant);
        let mut engine = LutEngine::new(pq, &table).with_precision(precision);
        let reference = engine.run_batch(&a);
        (a, engine, reference)
    }

    #[test]
    fn concurrent_single_row_submits_match_run_batch_bitwise() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 60);
        let m = a.dims()[0];
        let k = a.dims()[1];
        let n = reference.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: m,
                max_delay: Duration::from_millis(200),
            },
        );
        let mut outs = vec![Vec::new(); m];
        std::thread::scope(|s| {
            for (i, out) in outs.iter_mut().enumerate() {
                let batcher = &batcher;
                let a = &a;
                s.spawn(move || {
                    let row = &a.data()[i * k..(i + 1) * k];
                    *out = batcher
                        .submit(row)
                        .expect("row shape is valid")
                        .wait()
                        .expect("batcher alive");
                });
            }
        });
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(
                out.as_slice(),
                &reference.data()[i * n..(i + 1) * n],
                "row {i} diverged from run_batch"
            );
        }
    }

    #[test]
    fn full_batch_coalesces_into_one_engine_call() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 61);
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: m,
                // Generous deadline: the collector must flush on max_batch,
                // not the clock.
                max_delay: Duration::from_secs(5),
            },
        );
        let handles: Vec<Pending> = (0..m)
            .map(|i| {
                batcher
                    .submit(&a.data()[i * k..(i + 1) * k])
                    .expect("valid row")
            })
            .collect();
        let n = reference.dims()[1];
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("batcher alive");
            assert_eq!(out.as_slice(), &reference.data()[i * n..(i + 1) * n]);
        }
        assert_eq!(batcher.batches_run(), 1, "rows did not coalesce");
        assert_eq!(batcher.rows_served(), m);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let (a, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 62);
        let k = a.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: 1000, // never reached: only the deadline can flush
                max_delay: Duration::from_millis(20),
            },
        );
        let handles: Vec<Pending> = (0..3)
            .map(|i| {
                batcher
                    .submit(&a.data()[i * k..(i + 1) * k])
                    .expect("valid row")
            })
            .collect();
        for h in handles {
            h.wait().expect("deadline flush must resolve the handle");
        }
        assert!(batcher.batches_run() >= 1, "no batch ran");
        assert_eq!(batcher.rows_served(), 3);
    }

    #[test]
    fn bit_identical_across_all_quant_precision_combos() {
        let quants = [LutQuant::F32, LutQuant::F16, LutQuant::Int8];
        let precisions = [
            FloatPrecision::Fp32,
            FloatPrecision::Bf16,
            FloatPrecision::Fp16,
        ];
        for (qi, &quant) in quants.iter().enumerate() {
            for (pi, &precision) in precisions.iter().enumerate() {
                let (a, engine, reference) = setup(quant, precision, 63 + (qi * 3 + pi) as u64);
                let (m, k) = (a.dims()[0], a.dims()[1]);
                let n = reference.dims()[1];
                let batcher = MicroBatcher::new(share(engine), BatchOptions::default());
                let handles: Vec<Pending> = (0..m)
                    .map(|i| {
                        batcher
                            .submit(&a.data()[i * k..(i + 1) * k])
                            .expect("valid row")
                    })
                    .collect();
                for (i, h) in handles.into_iter().enumerate() {
                    let out = h.wait().expect("batcher alive");
                    assert_eq!(
                        out.as_slice(),
                        &reference.data()[i * n..(i + 1) * n],
                        "{quant:?}+{precision:?}: row {i} not bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn poisoned_engine_lock_recovers_instead_of_bricking_the_handle() {
        let (a, engine, reference) = setup(LutQuant::F32, FloatPrecision::Fp32, 65);
        let shared = share(engine);
        // One caller panics while holding the lock (the shape assert a bad
        // input would trip): the mutex is now poisoned.
        let bad = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = bad.lock().expect("first lock");
            panic!("simulated bad-input panic under the engine lock");
        })
        .join();
        assert!(shared.is_poisoned(), "test setup: lock must be poisoned");
        // Every shared handle — direct locks and batcher flushes — must
        // keep serving correct results.
        let got = lock_engine(&shared).run_batch(&a);
        assert!(got.allclose(&reference, 0.0));
        let batcher = MicroBatcher::new(shared, BatchOptions::default());
        let k = a.dims()[1];
        let n = reference.dims()[1];
        let out = batcher
            .submit(&a.data()[..k])
            .expect("valid row")
            .wait()
            .expect("batcher alive despite earlier poison");
        assert_eq!(out.as_slice(), &reference.data()[..n]);
    }

    #[test]
    fn try_wait_distinguishes_not_ready_from_closed() {
        let (a, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 66);
        let k = a.dims()[1];
        let batcher = MicroBatcher::new(
            share(engine),
            BatchOptions {
                max_batch: 1000,
                max_delay: Duration::from_millis(100),
            },
        );
        let pending = batcher.submit(&a.data()[..k]).expect("valid row");
        // Polling before the deadline flush usually sees "not ready" —
        // and must never see Closed while the batcher lives.
        assert!(!matches!(pending.try_wait(), Err(SubmitError::Closed)));
        // Dropping the batcher flushes outstanding rows, so the handle
        // resolves with data …
        drop(batcher);
        let served = loop {
            match pending.try_wait() {
                Ok(Some(row)) => break row,
                Ok(None) => std::thread::yield_now(),
                Err(e) => panic!("flush-on-drop lost the row: {e}"),
            }
        };
        assert_eq!(served.len(), 9);
        // … and a handle drained after resolution reports Closed, not an
        // eternal Ok(None).
        assert_eq!(pending.try_wait(), Err(SubmitError::Closed));
    }

    #[test]
    fn wrong_row_width_is_rejected_immediately() {
        let (_, engine, _) = setup(LutQuant::F32, FloatPrecision::Fp32, 64);
        let batcher = MicroBatcher::new(share(engine), BatchOptions::default());
        let err = batcher.submit(&[1.0, 2.0]).expect_err("short row");
        assert_eq!(
            err,
            SubmitError::RowShape {
                expected: 10,
                got: 2
            }
        );
    }
}
