//! Numeric-precision emulation: BF16 rounding and symmetric INT8
//! quantization.
//!
//! Table IV's "BF16+INT8" column uses BF16 arithmetic for the similarity
//! comparison and INT8 entries in the lookup tables. We emulate both on f32:
//! BF16 by round-to-nearest-even mantissa truncation, INT8 by per-tensor (or
//! per-group) symmetric scaling.

/// Floating-point precision of the similarity datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatPrecision {
    /// IEEE single precision (no rounding).
    Fp32,
    /// Brain-float 16: 8 exponent bits, 7 mantissa bits.
    Bf16,
    /// IEEE half precision: 5 exponent bits, 10 mantissa bits.
    Fp16,
}

impl FloatPrecision {
    /// Bit width of the representation.
    pub fn bits(&self) -> u32 {
        match self {
            FloatPrecision::Fp32 => 32,
            FloatPrecision::Bf16 | FloatPrecision::Fp16 => 16,
        }
    }

    /// Rounds an f32 value to this precision (and back to f32).
    pub fn round(&self, x: f32) -> f32 {
        match self {
            FloatPrecision::Fp32 => x,
            FloatPrecision::Bf16 => bf16_round(x),
            FloatPrecision::Fp16 => fp16_round(x),
        }
    }

    /// Rounds a slice in place.
    pub fn round_slice(&self, xs: &mut [f32]) {
        if *self == FloatPrecision::Fp32 {
            return;
        }
        for x in xs {
            *x = self.round(*x);
        }
    }
}

/// Rounds to bfloat16 via round-to-nearest-even on the upper 16 bits.
pub fn bf16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // round-to-nearest-even: add 0x7FFF + lsb of the kept part.
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x7FFF + lsb) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

/// Rounds to IEEE fp16 (round-to-nearest-even), returned as f32.
/// Values overflowing fp16 saturate to ±65504.
pub fn fp16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    const FP16_MAX: f32 = 65504.0;
    if x.abs() > FP16_MAX {
        return FP16_MAX.copysign(x);
    }
    // Keep 10 mantissa bits: round the lower 13 bits of the f32 mantissa.
    let bits = x.to_bits();
    let lsb = (bits >> 13) & 1;
    let rounded = bits.wrapping_add(0xFFF + lsb) & 0xFFFF_E000;
    let y = f32::from_bits(rounded);
    // Flush fp16 subnormals to zero (adequate for our emulation purposes).
    if y != 0.0 && y.abs() < 6.103_515_6e-5 {
        0.0
    } else {
        y
    }
}

/// Symmetric INT8 quantization of a group of values: `q = round(x / scale)`
/// clamped to `[-127, 127]`, with `scale = max|x| / 127`.
#[derive(Debug, Clone, PartialEq)]
pub struct Int8Block {
    /// Quantized values.
    pub values: Vec<i8>,
    /// Dequantization scale.
    pub scale: f32,
}

impl Int8Block {
    /// Quantizes a slice with a single symmetric scale.
    pub fn quantize(xs: &[f32]) -> Self {
        let max_abs = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let values = xs
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self { values, scale }
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Dequantizes a single element.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.values[i] as f32 * self.scale
    }

    /// Number of quantized values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_idempotent() {
        for &x in &[0.0f32, 1.0, -3.25, 1e-8, 12345.678] {
            let once = bf16_round(x);
            assert_eq!(bf16_round(once), once, "x={x}");
        }
    }

    #[test]
    fn bf16_error_bounded() {
        // bf16 has ~3 decimal digits: relative error ≤ 2^-8.
        for i in 1..100 {
            let x = i as f32 * 0.37;
            let r = bf16_round(x);
            assert!(((r - x) / x).abs() <= 1.0 / 256.0, "x={x} r={r}");
        }
    }

    #[test]
    fn fp16_error_bounded() {
        for i in 1..100 {
            let x = i as f32 * 0.37;
            let r = fp16_round(x);
            assert!(((r - x) / x).abs() <= 1.0 / 2048.0, "x={x} r={r}");
        }
    }

    #[test]
    fn fp16_saturates() {
        assert_eq!(fp16_round(1e6), 65504.0);
        assert_eq!(fp16_round(-1e6), -65504.0);
    }

    #[test]
    fn int8_round_trip_error_bounded() {
        let xs: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.173).collect();
        let q = Int8Block::quantize(&xs);
        let back = q.dequantize();
        let max_abs = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= max_abs / 127.0 / 2.0 + 1e-6);
        }
    }

    #[test]
    fn int8_zero_input() {
        let q = Int8Block::quantize(&[0.0, 0.0]);
        assert_eq!(q.dequantize(), vec![0.0, 0.0]);
    }

    #[test]
    fn precision_enum_bits() {
        assert_eq!(FloatPrecision::Fp32.bits(), 32);
        assert_eq!(FloatPrecision::Bf16.bits(), 16);
        assert_eq!(FloatPrecision::Fp16.bits(), 16);
    }
}
