//! Vector/product quantization and LUT-based approximate matrix
//! multiplication — the algorithmic core of LUT-DLA.
//!
//! The pipeline mirrors the paper's Fig. 2:
//!
//! 1. [`ProductQuantizer::fit`] — k-means per subspace over calibration
//!    activations (step ➊);
//! 2. [`LutTable::build`] — precompute centroid×weight partial sums
//!    (step ➋);
//! 3. [`approx_matmul`] — encode inputs by similarity search (step ➌) and
//!    accumulate table rows (step ➍).
//!
//! Three similarity metrics ([`Distance::L2`], [`Distance::L1`],
//! [`Distance::Chebyshev`]) and three table precisions ([`LutQuant`]) span
//! the accuracy/hardware-cost design space explored by `lutdla-dse`.
//!
//! # Example
//!
//! ```
//! use lutdla_vq::{approx_matmul, Distance, LutQuant, LutTable, ProductQuantizer};
//! use lutdla_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let activations = Tensor::rand_uniform(&mut rng, &[128, 16], -1.0, 1.0);
//! let weight = Tensor::rand_uniform(&mut rng, &[16, 8], -1.0, 1.0);
//!
//! let pq = ProductQuantizer::fit(&activations, 4, 32, Distance::L1, &mut rng);
//! let lut = LutTable::build(&pq, &weight, LutQuant::Int8);
//! let product = approx_matmul(&activations, &pq, &lut);
//! assert_eq!(product.dims(), &[128, 8]);
//! ```

mod amm;
mod codebook;
mod codes;
mod distance;
mod engine;
mod kmeans;
mod lut;
mod nonlinear;
mod pool;
mod precision;
mod serve;

pub use amm::{
    amm_error, approx_matmul, approx_matmul_from_codes, approx_matmul_with_precision, AmmError,
};
pub use codebook::{Codebook, ProductQuantizer};
pub use codes::{CodeWidth, EncodeMemo, MemoStats, PackedCodes, ROW_BLOCK_ALIGN};
pub use distance::{Distance, ParseDistanceError};
pub use engine::{
    default_workers, EngineError, EngineOptions, LutEngine, TileTables, DEFAULT_TILE_N, MAX_WORKERS,
};
pub use kmeans::{kmeans, KmeansConfig, KmeansResult};
pub use lut::{LutQuant, LutTable};
pub use nonlinear::{Nonlinearity, PiecewiseTable};
pub use pool::{PoolScope, WorkerPool};
pub use precision::{bf16_round, fp16_round, FloatPrecision, Int8Block};
pub use serve::{
    lock_engine, share, AdaptiveOptions, BatchOptions, BatchPolicy, MicroBatcher, Pending,
    PendingResolver, ServeError, ServeTiming, SharedEngine, StageStats, SubmitError,
};
