//! Lookup-table precomputation (paper Fig. 2 step ➋).
//!
//! For a GEMM `A[M,K] × B[K,N]`, the quantizer fixes per-subspace centroids;
//! because `B` is constant at inference time, the partial product of every
//! (centroid, output column) pair is precomputed:
//!
//! `table[s][ci][n] = Σ_j centroid_s[ci][j] · B[s·v + j][n]`
//!
//! The table can be stored in f32 or per-subspace-scaled INT8 (Table IV's
//! deployment configuration, 4× smaller and 4× cheaper to move on-chip).

use lutdla_tensor::Tensor;

use crate::codebook::ProductQuantizer;
use crate::precision::Int8Block;

/// Storage precision of the PSum LUT entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutQuant {
    /// 32-bit float entries.
    F32,
    /// 16-bit entries (bf16-rounded f32).
    F16,
    /// Symmetric INT8 with one scale per subspace.
    Int8,
}

impl LutQuant {
    /// Bits per stored table entry.
    pub fn bits(&self) -> u32 {
        match self {
            LutQuant::F32 => 32,
            LutQuant::F16 => 16,
            LutQuant::Int8 => 8,
        }
    }
}

enum Storage {
    F32(Vec<f32>),
    Int8(Vec<Int8Block>), // one block per subspace
}

/// The precomputed table for one LUT operator.
///
/// # Example
///
/// ```
/// use lutdla_vq::{Distance, LutQuant, LutTable, ProductQuantizer};
/// use lutdla_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let acts = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
/// let weight = Tensor::rand_uniform(&mut rng, &[8, 4], -1.0, 1.0);
/// let pq = ProductQuantizer::fit(&acts, 4, 16, Distance::L2, &mut rng);
/// let lut = LutTable::build(&pq, &weight, LutQuant::F32);
/// assert_eq!(lut.row(0, 3).len(), 4);
/// ```
pub struct LutTable {
    storage: Storage,
    /// Output columns `N`.
    n: usize,
    /// Centroids per codebook.
    c: usize,
    /// Subspace count `Nc`.
    n_subspaces: usize,
    quant: LutQuant,
}

impl LutTable {
    /// Precomputes the table for `weight: [K, N]` under `pq`.
    ///
    /// # Panics
    ///
    /// Panics if the weight's `K` doesn't match the quantizer.
    pub fn build(pq: &ProductQuantizer, weight: &Tensor, quant: LutQuant) -> Self {
        assert_eq!(weight.shape().rank(), 2, "weight must be [K, N]");
        let (k, n) = (weight.dims()[0], weight.dims()[1]);
        assert_eq!(k, pq.input_dim(), "weight K mismatch");
        let v = pq.subvector_len();
        let c = pq.num_centroids();
        let n_sub = pq.num_subspaces();

        let mut raw = vec![0.0f32; n_sub * c * n];
        for (s, cb) in pq.codebooks().iter().enumerate() {
            for ci in 0..c {
                let cent = cb.centroid(ci);
                let out = &mut raw[(s * c + ci) * n..(s * c + ci + 1) * n];
                for (j, &cj) in cent.iter().enumerate() {
                    let row = s * v + j;
                    if row >= k {
                        break; // zero padding contributes nothing
                    }
                    let wrow = weight.row(row);
                    if cj == 0.0 {
                        continue;
                    }
                    for (o, &w) in out.iter_mut().zip(wrow) {
                        *o += cj * w;
                    }
                }
            }
        }

        let storage = match quant {
            LutQuant::F32 => Storage::F32(raw),
            LutQuant::F16 => {
                let mut r = raw;
                for x in &mut r {
                    *x = crate::precision::bf16_round(*x);
                }
                Storage::F32(r)
            }
            LutQuant::Int8 => {
                let blocks = raw.chunks_exact(c * n).map(Int8Block::quantize).collect();
                Storage::Int8(blocks)
            }
        };
        Self {
            storage,
            n,
            c,
            n_subspaces: n_sub,
            quant,
        }
    }

    /// Output width `N`.
    pub fn output_dim(&self) -> usize {
        self.n
    }

    /// Centroids per codebook.
    pub fn num_centroids(&self) -> usize {
        self.c
    }

    /// Subspace count.
    pub fn num_subspaces(&self) -> usize {
        self.n_subspaces
    }

    /// Storage precision.
    pub fn quant(&self) -> LutQuant {
        self.quant
    }

    /// The dequantized table row for (subspace, centroid): `N` partial sums.
    pub fn row(&self, subspace: usize, centroid: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n];
        self.write_row(subspace, centroid, &mut out);
        out
    }

    /// Writes the dequantized row for (subspace, centroid) into `dst`
    /// without allocating. Dequantization applies exactly the arithmetic of
    /// [`LutTable::accumulate`] (`value as f32 * scale` for INT8), so an
    /// engine accumulating precomputed f32 copies stays bit-identical to the
    /// on-the-fly path.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != N`.
    pub fn write_row(&self, subspace: usize, centroid: usize, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.n, "row buffer width mismatch");
        let off = (subspace * self.c + centroid) * self.n;
        match &self.storage {
            Storage::F32(raw) => dst.copy_from_slice(&raw[off..off + self.n]),
            Storage::Int8(blocks) => {
                let b = &blocks[subspace];
                let scale = b.scale;
                let local = centroid * self.n;
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = b.values[local + j] as f32 * scale;
                }
            }
        }
    }

    /// Accumulates the row for (subspace, centroid) into `acc`.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != N`.
    #[inline]
    pub fn accumulate(&self, subspace: usize, centroid: usize, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.n, "accumulator width mismatch");
        let off = (subspace * self.c + centroid) * self.n;
        match &self.storage {
            Storage::F32(raw) => {
                for (a, &t) in acc.iter_mut().zip(&raw[off..off + self.n]) {
                    *a += t;
                }
            }
            Storage::Int8(blocks) => {
                let b = &blocks[subspace];
                let scale = b.scale;
                let local = centroid * self.n;
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += b.values[local + j] as f32 * scale;
                }
            }
        }
    }

    /// Total table size in bytes at the configured entry precision
    /// (Eq. 2's `mem_lut` term).
    pub fn size_bytes(&self) -> usize {
        self.n_subspaces * self.c * self.n * self.quant.bits() as usize / 8
    }
}

impl std::fmt::Debug for LutTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LutTable")
            .field("n", &self.n)
            .field("c", &self.c)
            .field("n_subspaces", &self.n_subspaces)
            .field("quant", &self.quant)
            .field("size_bytes", &self.size_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(rng: &mut StdRng) -> (ProductQuantizer, Tensor) {
        let acts = Tensor::rand_uniform(rng, &[64, 8], -1.0, 1.0);
        let weight = Tensor::rand_uniform(rng, &[8, 6], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&acts, 4, 8, Distance::L2, rng);
        (pq, weight)
    }

    #[test]
    fn table_rows_match_direct_dot_products() {
        let mut rng = StdRng::seed_from_u64(70);
        let (pq, weight) = setup(&mut rng);
        let lut = LutTable::build(&pq, &weight, LutQuant::F32);
        for s in 0..pq.num_subspaces() {
            for ci in 0..pq.num_centroids() {
                let cent = pq.codebooks()[s].centroid(ci);
                let row = lut.row(s, ci);
                for (n, &rn) in row.iter().enumerate() {
                    let direct: f32 = (0..4).map(|j| cent[j] * weight.at(&[s * 4 + j, n])).sum();
                    assert!(
                        (rn - direct).abs() < 1e-5,
                        "s={s} ci={ci} n={n}: {} vs {direct}",
                        row[n]
                    );
                }
            }
        }
    }

    #[test]
    fn int8_table_error_small() {
        let mut rng = StdRng::seed_from_u64(71);
        let (pq, weight) = setup(&mut rng);
        let f32_lut = LutTable::build(&pq, &weight, LutQuant::F32);
        let i8_lut = LutTable::build(&pq, &weight, LutQuant::Int8);
        let mut worst: f32 = 0.0;
        let mut max_abs: f32 = 0.0;
        for s in 0..pq.num_subspaces() {
            for ci in 0..pq.num_centroids() {
                let a = f32_lut.row(s, ci);
                let b = i8_lut.row(s, ci);
                for (x, y) in a.iter().zip(&b) {
                    worst = worst.max((x - y).abs());
                    max_abs = max_abs.max(x.abs());
                }
            }
        }
        assert!(worst <= max_abs / 127.0 + 1e-6, "worst={worst}");
    }

    #[test]
    fn size_accounts_for_precision() {
        let mut rng = StdRng::seed_from_u64(72);
        let (pq, weight) = setup(&mut rng);
        let f = LutTable::build(&pq, &weight, LutQuant::F32).size_bytes();
        let h = LutTable::build(&pq, &weight, LutQuant::F16).size_bytes();
        let q = LutTable::build(&pq, &weight, LutQuant::Int8).size_bytes();
        assert_eq!(f, 2 * 8 * 6 * 4);
        assert_eq!(h, f / 2);
        assert_eq!(q, f / 4);
    }

    #[test]
    fn accumulate_matches_row() {
        let mut rng = StdRng::seed_from_u64(73);
        let (pq, weight) = setup(&mut rng);
        let lut = LutTable::build(&pq, &weight, LutQuant::Int8);
        let mut acc = vec![0.0f32; 6];
        lut.accumulate(1, 3, &mut acc);
        lut.accumulate(0, 5, &mut acc);
        let expect: Vec<f32> = lut
            .row(1, 3)
            .iter()
            .zip(lut.row(0, 5))
            .map(|(a, b)| a + b)
            .collect();
        for (x, y) in acc.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
