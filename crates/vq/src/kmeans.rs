//! K-means clustering with k-means++ seeding and metric-aware updates.
//!
//! Used by LUTBoost's operator-replacement stage to initialise centroids
//! from calibration activations (paper Fig. 2 step ➊).

use rand::Rng;

use crate::distance::Distance;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KmeansConfig {
    /// Number of centroids (`c` in the paper).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Early-stop threshold on relative inertia improvement.
    pub tol: f64,
    /// Assignment metric. The update step uses the metric-appropriate
    /// estimator: mean for L2/Chebyshev, coordinate-wise median for L1.
    pub distance: Distance,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 16,
            max_iters: 25,
            tol: 1e-4,
            distance: Distance::L2,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Row-major `[k, dim]` centroid matrix.
    pub centroids: Vec<f32>,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Final inertia (sum of distances of each point to its centroid).
    pub inertia: f64,
    /// Inertia after each Lloyd iteration (monotone non-increasing for L2).
    pub history: Vec<f64>,
}

/// Runs k-means on `data` (row-major `[n, dim]`).
///
/// # Panics
///
/// Panics if `data` is empty, `dim` is zero, or `cfg.k` is zero.
pub fn kmeans<R: Rng>(data: &[f32], dim: usize, cfg: &KmeansConfig, rng: &mut R) -> KmeansResult {
    assert!(dim > 0, "dim must be positive");
    assert!(cfg.k > 0, "k must be positive");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    let n = data.len() / dim;
    assert!(n > 0, "empty data");

    let mut centroids = kmeanspp_init(data, dim, n, cfg.k, cfg.distance, rng);
    let mut assignments = vec![0usize; n];
    let mut history = Vec::new();
    let mut last_inertia = f64::INFINITY;

    for _ in 0..cfg.max_iters {
        // Assignment step.
        let mut inertia = 0.0f64;
        for (i, row) in data.chunks_exact(dim).enumerate() {
            let a = cfg.distance.argmin(row, &centroids);
            assignments[i] = a;
            inertia += cfg.distance.eval(row, &centroids[a * dim..(a + 1) * dim]) as f64;
        }
        history.push(inertia);

        // Update step.
        match cfg.distance {
            Distance::L1 => update_median(data, dim, &assignments, cfg.k, &mut centroids),
            _ => update_mean(data, dim, &assignments, cfg.k, &mut centroids, rng),
        }

        if last_inertia.is_finite() && (last_inertia - inertia).abs() <= cfg.tol * last_inertia {
            break;
        }
        last_inertia = inertia;
    }

    // Final assignment against the last centroid update.
    let mut inertia = 0.0f64;
    for (i, row) in data.chunks_exact(dim).enumerate() {
        let a = cfg.distance.argmin(row, &centroids);
        assignments[i] = a;
        inertia += cfg.distance.eval(row, &centroids[a * dim..(a + 1) * dim]) as f64;
    }
    history.push(inertia);

    KmeansResult {
        centroids,
        assignments,
        inertia,
        history,
    }
}

fn kmeanspp_init<R: Rng>(
    data: &[f32],
    dim: usize,
    n: usize,
    k: usize,
    distance: Distance,
    rng: &mut R,
) -> Vec<f32> {
    let mut centroids = Vec::with_capacity(k * dim);
    // First centroid: uniform random point.
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(&data[first * dim..(first + 1) * dim]);

    let mut dists: Vec<f64> = data
        .chunks_exact(dim)
        .map(|row| distance.eval(row, &centroids[0..dim]) as f64)
        .collect();

    while centroids.len() < k * dim {
        let total: f64 = dists.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids: fall back to uniform.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        let new_off = centroids.len();
        centroids.extend_from_slice(&data[chosen * dim..(chosen + 1) * dim]);
        // Update min-distances with the new centroid.
        let new_c = centroids[new_off..new_off + dim].to_vec();
        for (i, row) in data.chunks_exact(dim).enumerate() {
            let d = distance.eval(row, &new_c) as f64;
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

fn update_mean<R: Rng>(
    data: &[f32],
    dim: usize,
    assignments: &[usize],
    k: usize,
    centroids: &mut [f32],
    rng: &mut R,
) {
    let n = assignments.len();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (i, row) in data.chunks_exact(dim).enumerate() {
        let a = assignments[i];
        counts[a] += 1;
        for (s, &v) in sums[a * dim..(a + 1) * dim].iter_mut().zip(row) {
            *s += v as f64;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            // Dead centroid: re-seed at a random point to keep k live codes.
            let j = rng.gen_range(0..n);
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&data[j * dim..(j + 1) * dim]);
        } else {
            for d in 0..dim {
                centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
            }
        }
    }
}

fn update_median(data: &[f32], dim: usize, assignments: &[usize], k: usize, centroids: &mut [f32]) {
    // Coordinate-wise median minimises the L1 objective (k-medians).
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        members[a].push(i);
    }
    let mut buf = Vec::new();
    for c in 0..k {
        if members[c].is_empty() {
            continue; // keep previous position
        }
        for d in 0..dim {
            buf.clear();
            buf.extend(members[c].iter().map(|&i| data[i * dim + d]));
            buf.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in k-means input"));
            centroids[c * dim + d] = buf[buf.len() / 2];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(rng: &mut StdRng, centers: &[[f32; 2]], per: usize, noise: f32) -> Vec<f32> {
        let mut data = Vec::new();
        for c in centers {
            for _ in 0..per {
                data.push(c[0] + (rng.gen::<f32>() - 0.5) * noise);
                data.push(c[1] + (rng.gen::<f32>() - 0.5) * noise);
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(50);
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let data = blobs(&mut rng, &centers, 50, 1.0);
        let cfg = KmeansConfig {
            k: 3,
            ..Default::default()
        };
        let res = kmeans(&data, 2, &cfg, &mut rng);
        // Every true center must be close to some learned centroid.
        for c in &centers {
            let best = res
                .centroids
                .chunks_exact(2)
                .map(|cc| Distance::L2.eval(c, cc))
                .fold(f32::INFINITY, f32::min);
            assert!(best < 1.0, "center {c:?} not recovered: d²={best}");
        }
    }

    #[test]
    fn inertia_non_increasing_for_l2() {
        let mut rng = StdRng::seed_from_u64(51);
        let data: Vec<f32> = (0..600).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let cfg = KmeansConfig {
            k: 8,
            max_iters: 20,
            tol: 0.0,
            distance: Distance::L2,
        };
        let res = kmeans(&data, 3, &cfg, &mut rng);
        for w in res.history.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-9),
                "inertia increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn k_one_gives_centroid_at_mean() {
        let mut rng = StdRng::seed_from_u64(52);
        let data = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 points in 2-D
        let cfg = KmeansConfig {
            k: 1,
            ..Default::default()
        };
        let res = kmeans(&data, 2, &cfg, &mut rng);
        assert!((res.centroids[0] - 3.0).abs() < 1e-5);
        assert!((res.centroids[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn l1_kmedians_robust_to_outlier() {
        let mut rng = StdRng::seed_from_u64(53);
        // 9 points at 0, 1 outlier at 100 → median stays at 0; mean would not.
        let mut data = vec![0.0f32; 9];
        data.push(100.0);
        let cfg = KmeansConfig {
            k: 1,
            distance: Distance::L1,
            ..Default::default()
        };
        let res = kmeans(&data, 1, &cfg, &mut rng);
        assert!(
            res.centroids[0].abs() < 1e-6,
            "median pulled to {}",
            res.centroids[0]
        );
    }

    #[test]
    fn assignments_in_range() {
        let mut rng = StdRng::seed_from_u64(54);
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let cfg = KmeansConfig {
            k: 7,
            ..Default::default()
        };
        let res = kmeans(&data, 2, &cfg, &mut rng);
        assert_eq!(res.assignments.len(), 50);
        assert!(res.assignments.iter().all(|&a| a < 7));
    }

    #[test]
    fn more_centroids_never_hurt_inertia_much() {
        let mut rng = StdRng::seed_from_u64(55);
        let data: Vec<f32> = (0..512).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let inertia_of = |k: usize, rng: &mut StdRng| {
            let cfg = KmeansConfig {
                k,
                max_iters: 30,
                ..Default::default()
            };
            kmeans(&data, 4, &cfg, rng).inertia
        };
        let i4 = inertia_of(4, &mut rng);
        let i32 = inertia_of(32, &mut rng);
        assert!(
            i32 < i4,
            "32 centroids should fit better than 4: {i32} vs {i4}"
        );
    }
}
