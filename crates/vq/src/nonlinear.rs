//! LUT-based non-linear function approximation (paper §IV-A: "IMM also
//! supports element-wise activation and dequantization by using polynomial
//! approximations", citing NN-LUT [61]).
//!
//! A [`PiecewiseTable`] partitions an input range into uniform segments and
//! stores a degree-1 polynomial per segment — exactly the structure NN-LUT
//! synthesises into hardware. Out-of-range inputs clamp to the boundary
//! polynomials, matching the saturating behaviour of the hardware unit.

/// The activation functions the IMM's write-back path supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Nonlinearity {
    /// Rectified linear unit (exact under piecewise-linear).
    Relu,
    /// GELU (tanh approximation as the ground truth).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// `exp(x)` on a bounded range (the softmax numerator building block).
    Exp,
}

impl Nonlinearity {
    /// Reference (float) implementation.
    pub fn eval(&self, x: f32) -> f32 {
        match self {
            Nonlinearity::Relu => x.max(0.0),
            Nonlinearity::Gelu => {
                const C: f32 = 0.797_884_6; // sqrt(2/pi) to f32 precision
                0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
            }
            Nonlinearity::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Nonlinearity::Tanh => x.tanh(),
            Nonlinearity::Exp => x.exp(),
        }
    }

    /// The natural approximation range used when building tables.
    pub fn default_range(&self) -> (f32, f32) {
        match self {
            Nonlinearity::Relu => (-4.0, 4.0),
            Nonlinearity::Gelu | Nonlinearity::Tanh | Nonlinearity::Sigmoid => (-6.0, 6.0),
            Nonlinearity::Exp => (-8.0, 0.0), // softmax uses exp(x - max) ≤ 0
        }
    }
}

impl std::fmt::Display for Nonlinearity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Nonlinearity::Relu => "relu",
            Nonlinearity::Gelu => "gelu",
            Nonlinearity::Sigmoid => "sigmoid",
            Nonlinearity::Tanh => "tanh",
            Nonlinearity::Exp => "exp",
        };
        f.write_str(s)
    }
}

/// A uniform piecewise-linear approximation table: per segment, `y ≈ a·x+b`.
///
/// # Example
///
/// ```
/// use lutdla_vq::{Nonlinearity, PiecewiseTable};
///
/// let table = PiecewiseTable::build(Nonlinearity::Gelu, 64);
/// let err = table.max_error(1000);
/// assert!(err < 0.01, "max error {err}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseTable {
    func: Nonlinearity,
    lo: f32,
    hi: f32,
    /// `(slope, intercept)` per segment.
    coeffs: Vec<(f32, f32)>,
}

impl PiecewiseTable {
    /// Builds a table with `segments` uniform pieces over the function's
    /// default range, interpolating the endpoints of each segment.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    pub fn build(func: Nonlinearity, segments: usize) -> Self {
        let (lo, hi) = func.default_range();
        Self::build_on_range(func, segments, lo, hi)
    }

    /// Builds over an explicit `[lo, hi]` range.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or `lo >= hi`.
    pub fn build_on_range(func: Nonlinearity, segments: usize, lo: f32, hi: f32) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(lo < hi, "empty range");
        let step = (hi - lo) / segments as f32;
        let coeffs = (0..segments)
            .map(|i| {
                let x0 = lo + i as f32 * step;
                let x1 = x0 + step;
                let (y0, y1) = (func.eval(x0), func.eval(x1));
                let a = (y1 - y0) / step;
                let b = y0 - a * x0;
                (a, b)
            })
            .collect();
        Self {
            func,
            lo,
            hi,
            coeffs,
        }
    }

    /// The approximated function.
    pub fn function(&self) -> Nonlinearity {
        self.func
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.coeffs.len()
    }

    /// Table storage in bytes (two coefficients per segment at `bits`).
    pub fn size_bytes(&self, coeff_bits: u32) -> usize {
        self.coeffs.len() * 2 * coeff_bits as usize / 8
    }

    /// Approximate evaluation: segment select + one multiply + one add —
    /// the hardware's datapath.
    pub fn eval(&self, x: f32) -> f32 {
        let clamped = x.clamp(self.lo, self.hi);
        let step = (self.hi - self.lo) / self.coeffs.len() as f32;
        let idx = (((clamped - self.lo) / step) as usize).min(self.coeffs.len() - 1);
        let (a, b) = self.coeffs[idx];
        // Outside the range, extend the boundary segments linearly for ReLU
        // (exact) and clamp for the saturating functions.
        match self.func {
            Nonlinearity::Relu => a * x + b,
            _ => a * clamped + b,
        }
    }

    /// Maximum absolute error against the reference over `samples` points
    /// inside the table range.
    pub fn max_error(&self, samples: usize) -> f32 {
        let mut worst = 0.0f32;
        for i in 0..=samples {
            let x = self.lo + (self.hi - self.lo) * i as f32 / samples as f32;
            worst = worst.max((self.eval(x) - self.func.eval(x)).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_is_exact_with_even_segments() {
        // With an even segment count a breakpoint lands on zero.
        let t = PiecewiseTable::build(Nonlinearity::Relu, 16);
        for i in -40..=40 {
            let x = i as f32 / 10.0;
            assert!(
                (t.eval(x) - x.max(0.0)).abs() < 1e-6,
                "x={x}: {} vs {}",
                t.eval(x),
                x.max(0.0)
            );
        }
    }

    #[test]
    fn error_shrinks_with_segments() {
        for func in [
            Nonlinearity::Gelu,
            Nonlinearity::Sigmoid,
            Nonlinearity::Tanh,
            Nonlinearity::Exp,
        ] {
            let coarse = PiecewiseTable::build(func, 8).max_error(500);
            let fine = PiecewiseTable::build(func, 128).max_error(500);
            assert!(fine < coarse / 10.0, "{func}: {coarse} -> {fine}");
        }
    }

    #[test]
    fn nn_lut_class_accuracy() {
        // NN-LUT reports ~1e-3-class error with small tables; 64 segments
        // should beat 1e-2 everywhere.
        for func in [
            Nonlinearity::Gelu,
            Nonlinearity::Sigmoid,
            Nonlinearity::Tanh,
        ] {
            let t = PiecewiseTable::build(func, 64);
            assert!(t.max_error(2000) < 1e-2, "{func}: {}", t.max_error(2000));
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let t = PiecewiseTable::build(Nonlinearity::Sigmoid, 32);
        assert!((t.eval(100.0) - 1.0).abs() < 0.01);
        assert!(t.eval(-100.0).abs() < 0.01);
    }

    #[test]
    fn size_accounting() {
        let t = PiecewiseTable::build(Nonlinearity::Gelu, 64);
        assert_eq!(t.size_bytes(16), 64 * 2 * 2);
    }

    #[test]
    fn exp_range_covers_softmax_inputs() {
        // softmax computes exp(x - max) with arguments ≤ 0.
        let t = PiecewiseTable::build(Nonlinearity::Exp, 128);
        for i in 0..=80 {
            let x = -(i as f32) / 10.0;
            let got = t.eval(x);
            assert!((got - x.exp()).abs() < 5e-3, "x={x}: {got} vs {}", x.exp());
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn rejects_zero_segments() {
        let _ = PiecewiseTable::build(Nonlinearity::Relu, 0);
    }
}
