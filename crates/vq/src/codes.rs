//! Packed code streams and the cross-request encode memo — the
//! representation layer of encode-once execution.
//!
//! A LUT-GEMM code is an index into `c` centroids, yet the engine
//! historically carried every code as a full `u16`. [`PackedCodes`] stores
//! a batch of code rows at the minimal width for the centroid count
//! ([`CodeWidth`]: 4-bit nibbles for `c ≤ 16`, bytes for `c ≤ 256`, `u16`
//! otherwise) in fixed-size row blocks padded to a 32-byte multiple — the
//! cache-line-conscious record discipline that keeps one row's codes in a
//! predictable, constant-stride block. The engine's lookup loops stream
//! the packed form directly (see `LutEngine::run_from_packed`), and the
//! fixed-size row block doubles as the value stored by the cross-request
//! [`EncodeMemo`].
//!
//! The memo fronts the encode phase on the serving path: a bounded,
//! sharded map from the bit pattern of a quantized input row to its packed
//! code block. Encoding is the expensive similarity walk; for duplicate or
//! hot rows the memo replaces it with a hash probe plus a ≤ 32·`k`-bit
//! copy. All counters (hit/miss/evict) are lock-free atomics so the
//! serving layer can surface them through `StageStats` without touching
//! the shard locks.
//!
//! This module is on the lint panic-discipline hot-path list: lookups and
//! packs run inside serving flushes, so nothing here may panic on
//! malformed sizes — callers get structural errors from the engine's
//! validation instead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Storage width of one packed code, chosen from the centroid count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeWidth {
    /// 4-bit nibbles, two codes per byte (`c ≤ 16`).
    W4,
    /// One byte per code (`c ≤ 256`).
    W8,
    /// Little-endian `u16` per code (fallback for `c > 256`).
    W16,
}

impl CodeWidth {
    /// The minimal width able to store codes `0..c`.
    pub fn for_centroids(c: usize) -> CodeWidth {
        if c <= 16 {
            CodeWidth::W4
        } else if c <= 256 {
            CodeWidth::W8
        } else {
            CodeWidth::W16
        }
    }

    /// Bits per stored code.
    pub fn bits(self) -> usize {
        match self {
            CodeWidth::W4 => 4,
            CodeWidth::W8 => 8,
            CodeWidth::W16 => 16,
        }
    }

    /// One past the largest code this width can represent.
    pub fn capacity(self) -> usize {
        1usize << self.bits()
    }

    /// Bytes needed for `n_sub` codes at this width, before row padding.
    pub fn packed_bytes(self, n_sub: usize) -> usize {
        match self {
            CodeWidth::W4 => n_sub.div_ceil(2),
            CodeWidth::W8 => n_sub,
            CodeWidth::W16 => n_sub * 2,
        }
    }
}

/// Row blocks are padded to a multiple of this (micro-blossom's 32-byte
/// record discipline): every row starts at a fixed, predictable offset and
/// short rows don't share their tail bytes with the next row.
pub const ROW_BLOCK_ALIGN: usize = 32;

/// A batch of encoded rows stored at minimal code width in fixed-stride,
/// 32-byte-aligned row blocks.
///
/// Layout: row `r` occupies `bytes[r·row_stride .. (r+1)·row_stride]`;
/// within the row, code `s` lives at nibble/byte/word `s` depending on
/// [`CodeWidth`]. Padding bytes (and the high nibble of an odd-`n_sub`
/// [`CodeWidth::W4`] row) are zero for freshly packed streams, but
/// consumers never read them — which is what lets one row block serve as a
/// self-contained memo value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodes {
    bytes: Vec<u8>,
    width: CodeWidth,
    rows: usize,
    n_sub: usize,
    row_stride: usize,
}

/// Fixed row stride in bytes for `n_sub` codes at `width`.
pub fn row_stride(n_sub: usize, width: CodeWidth) -> usize {
    width
        .packed_bytes(n_sub)
        .next_multiple_of(ROW_BLOCK_ALIGN)
        .max(ROW_BLOCK_ALIGN)
}

/// Packs one row of codes into `dst` (`dst.len() ≥ packed_bytes`). Codes
/// are masked to the width; callers guarantee they fit (the engine encodes
/// `code < c ≤ capacity` by construction, and [`PackedCodes::pack`]
/// asserts it for external streams).
#[inline]
pub(crate) fn pack_row(codes: &[u16], width: CodeWidth, dst: &mut [u8]) {
    match width {
        CodeWidth::W4 => {
            for (pair, byte) in codes.chunks(2).zip(dst.iter_mut()) {
                let lo = (pair[0] & 0xf) as u8;
                let hi = if pair.len() == 2 {
                    (pair[1] & 0xf) as u8
                } else {
                    0
                };
                *byte = lo | (hi << 4);
            }
        }
        CodeWidth::W8 => {
            for (&code, byte) in codes.iter().zip(dst.iter_mut()) {
                *byte = code as u8;
            }
        }
        CodeWidth::W16 => {
            for (&code, pair) in codes.iter().zip(dst.chunks_exact_mut(2)) {
                pair.copy_from_slice(&code.to_le_bytes());
            }
        }
    }
}

/// Decodes code `s` from one packed row block.
#[inline(always)]
pub(crate) fn code_in_row(row: &[u8], s: usize, width: CodeWidth) -> u16 {
    match width {
        CodeWidth::W4 => ((row[s / 2] >> ((s & 1) * 4)) & 0xf) as u16,
        CodeWidth::W8 => row[s] as u16,
        CodeWidth::W16 => u16::from_le_bytes([row[2 * s], row[2 * s + 1]]),
    }
}

impl PackedCodes {
    /// An all-zero stream of `rows × n_sub` codes at `width` (code 0 is
    /// always valid). The engine's encode paths fill this in place.
    pub fn zeroed(rows: usize, n_sub: usize, width: CodeWidth) -> Self {
        let row_stride = row_stride(n_sub, width);
        Self {
            bytes: vec![0u8; rows * row_stride],
            width,
            rows,
            n_sub,
            row_stride,
        }
    }

    /// Packs a row-major `u16` code buffer (`rows × n_sub` entries, the
    /// `ProductQuantizer::encode` layout) into a minimal-width stream.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows · n_sub` or any code exceeds what
    /// `width` can represent — a packed stream silently truncating codes
    /// would corrupt every later lookup.
    pub fn pack(codes: &[u16], rows: usize, n_sub: usize, width: CodeWidth) -> Self {
        assert_eq!(codes.len(), rows * n_sub, "code buffer is not rows × n_sub");
        let cap = width.capacity();
        assert!(
            codes.iter().all(|&code| (code as usize) < cap),
            "code exceeds {}-bit width",
            width.bits()
        );
        let mut packed = Self::zeroed(rows, n_sub, width);
        let stride = packed.row_stride;
        for (r, row_codes) in codes.chunks_exact(n_sub).enumerate() {
            pack_row(
                row_codes,
                width,
                &mut packed.bytes[r * stride..(r + 1) * stride],
            );
        }
        packed
    }

    /// Reconstructs a stream from raw bytes without validating the byte
    /// length against `rows × row_stride` — deliberately, so tests (and
    /// the engine's error paths) can represent truncated or corrupt
    /// streams. `LutEngine::run_from_packed` performs the validation and
    /// reports a structural [`EngineError`](crate::EngineError).
    pub fn from_bytes(bytes: Vec<u8>, rows: usize, n_sub: usize, width: CodeWidth) -> Self {
        let row_stride = row_stride(n_sub, width);
        Self {
            bytes,
            width,
            rows,
            n_sub,
            row_stride,
        }
    }

    /// Drops every row past the first `rows` (a no-op when the stream is
    /// already that short or shorter). An incremental decode cache uses
    /// this to rewind to the longest still-valid prefix before appending
    /// freshly encoded rows.
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows < self.rows {
            self.rows = rows;
            self.bytes.truncate(rows * self.row_stride);
        }
    }

    /// Appends another stream's rows onto this one. Row blocks are
    /// fixed-stride, so concatenating the byte streams *is* concatenating
    /// the row sequences — this is the seam that lets a decode session
    /// extend a cached prefix stream with just the new token's codes.
    ///
    /// # Panics
    ///
    /// Panics if the streams disagree on `n_sub` or code width, or if
    /// either byte buffer is not well-formed (`rows × row_stride` bytes) —
    /// splicing mismatched streams would corrupt every later lookup.
    pub fn append(&mut self, suffix: &PackedCodes) {
        assert_eq!(self.n_sub, suffix.n_sub, "appending a different n_sub");
        assert_eq!(self.width, suffix.width, "appending a different width");
        assert_eq!(self.bytes.len(), self.expected_bytes(), "truncated stream");
        assert_eq!(
            suffix.bytes.len(),
            suffix.expected_bytes(),
            "truncated suffix stream"
        );
        self.bytes.extend_from_slice(&suffix.bytes);
        self.rows += suffix.rows;
    }

    /// Number of encoded rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Codes per row (the quantizer's subspace count).
    pub fn n_sub(&self) -> usize {
        self.n_sub
    }

    /// Storage width of each code.
    pub fn width(&self) -> CodeWidth {
        self.width
    }

    /// Bytes from one row's first code to the next row's (32-byte
    /// multiple).
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// The raw packed stream.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total heap footprint of the stream in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The byte length a well-formed `rows`-row stream must have.
    pub fn expected_bytes(&self) -> usize {
        self.rows * self.row_stride
    }

    /// Mutable raw stream, for the engine's parallel encode+pack.
    pub(crate) fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// One row's fixed-stride block.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or the stream is truncated.
    pub fn row_bytes(&self, row: usize) -> &[u8] {
        &self.bytes[row * self.row_stride..(row + 1) * self.row_stride]
    }

    /// Mutable row block, for per-row memo fills.
    pub(crate) fn row_bytes_mut(&mut self, row: usize) -> &mut [u8] {
        &mut self.bytes[row * self.row_stride..(row + 1) * self.row_stride]
    }

    /// Decodes the code at (`row`, `s`).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range of a well-formed stream.
    #[inline(always)]
    pub fn code(&self, row: usize, s: usize) -> u16 {
        code_in_row(self.row_bytes(row), s, self.width)
    }

    /// Unpacks the whole stream back into the row-major `u16` layout
    /// consumed by `run_from_codes` — the round-trip inverse of
    /// [`PackedCodes::pack`].
    pub fn unpack(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.rows * self.n_sub);
        for r in 0..self.rows {
            let row = self.row_bytes(r);
            for s in 0..self.n_sub {
                out.push(code_in_row(row, s, self.width));
            }
        }
        out
    }
}

/// Shard count of the [`EncodeMemo`]: bounds lock contention when many
/// collector threads front their stages with one memo. Power of two so the
/// shard pick is a mask.
const MEMO_SHARDS: usize = 8;

/// One memoized row: the input row's exact bit pattern (for verification —
/// a 64-bit hash alone could silently alias two rows) plus its packed code
/// block.
struct MemoEntry {
    row_bits: Box<[u32]>,
    packed: Box<[u8]>,
}

/// Snapshot of the memo's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that returned a cached code block (similarity walk skipped).
    pub hits: u64,
    /// Lookups that fell through to the encoder.
    pub misses: u64,
    /// Entries dropped to stay within the row capacity.
    pub evictions: u64,
}

/// A bounded, sharded memo in front of the encode phase: the bit pattern
/// of a quantized input row maps to its [`PackedCodes`] row block, so
/// duplicate or hot rows skip the similarity walk entirely.
///
/// Correctness does not rest on the 64-bit hash: every hit verifies the
/// stored row bits against the probe row, so an aliased hash degrades to a
/// miss (and is overwritten on the next insert), never to wrong codes.
/// Encoding is deterministic for a fixed engine, so a verified hit is
/// bit-identical to re-encoding — the serving path stays exact.
///
/// Eviction is per-shard and arbitrary-victim (whatever the map yields
/// first): the memo is a working-set filter, not an LRU, and the O(1)
/// policy keeps the shard lock hold time flat. Hit/miss/evict counters are
/// atomics, readable without locking via [`EncodeMemo::stats`].
pub struct EncodeMemo {
    shards: Vec<Mutex<HashMap<u64, MemoEntry>>>,
    per_shard_rows: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EncodeMemo {
    /// A memo bounded to roughly `capacity_rows` cached rows (rounded up
    /// to the shard grain; at least one row per shard).
    pub fn new(capacity_rows: usize) -> Self {
        let mut shards = Vec::with_capacity(MEMO_SHARDS);
        shards.resize_with(MEMO_SHARDS, || Mutex::new(HashMap::new()));
        Self {
            shards,
            per_shard_rows: capacity_rows.div_ceil(MEMO_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum rows the memo will hold across all shards.
    pub fn capacity_rows(&self) -> usize {
        self.per_shard_rows * MEMO_SHARDS
    }

    /// Rows currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// Whether the memo holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss/evict counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Probes the memo for `row`'s packed code block. On a verified hit
    /// the block is copied into `dst` (the caller's fixed-stride row
    /// block) and `true` is returned; any mismatch — absent, aliased hash,
    /// or a block length that doesn't match `dst` — counts a miss and
    /// leaves `dst` untouched.
    pub fn lookup(&self, row: &[f32], dst: &mut [u8]) -> bool {
        let h = hash_row(row);
        let shard = lock_shard(&self.shards[(h as usize) & (MEMO_SHARDS - 1)]);
        if let Some(entry) = shard.get(&h) {
            if entry.packed.len() == dst.len() && row_bits_match(&entry.row_bits, row) {
                dst.copy_from_slice(&entry.packed);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Stores `row → packed` (one fixed-stride row block), evicting an
    /// arbitrary same-shard victim if the shard is at capacity.
    pub fn insert(&self, row: &[f32], packed: &[u8]) {
        let h = hash_row(row);
        let mut shard = lock_shard(&self.shards[(h as usize) & (MEMO_SHARDS - 1)]);
        let mut evicted = false;
        if !shard.contains_key(&h) && shard.len() >= self.per_shard_rows {
            if let Some(&victim) = shard.keys().next() {
                shard.remove(&victim);
                evicted = true;
            }
        }
        shard.insert(
            h,
            MemoEntry {
                row_bits: row.iter().map(|v| v.to_bits()).collect(),
                packed: packed.into(),
            },
        );
        drop(shard);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for EncodeMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncodeMemo")
            .field("capacity_rows", &self.capacity_rows())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Recovers the shard map from a poisoned lock: the memo holds plain data,
/// so a panicking peer (which cannot happen on the panic-free serving
/// path, but the pool is shared with user code) leaves it structurally
/// intact — at worst a half-written insert is overwritten later.
fn lock_shard(
    shard: &Mutex<HashMap<u64, MemoEntry>>,
) -> std::sync::MutexGuard<'_, HashMap<u64, MemoEntry>> {
    shard
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// FNV-1a over the row's f32 bit patterns, finished with a 64-bit
/// avalanche mixer. Bit patterns — not values — so `-0.0`/`0.0` and NaN
/// payloads key distinct entries and a hit implies the exact input bits
/// the cached codes were produced from. The finalizer matters for the
/// shard pick: raw FNV's low bits depend only on the low bits of the
/// inputs (xor-multiply never propagates downward), which skews shard
/// load for structured rows.
fn hash_row(row: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in row {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Exact bit-pattern comparison between a stored key and a probe row.
fn row_bits_match(bits: &[u32], row: &[f32]) -> bool {
    bits.len() == row.len() && bits.iter().zip(row).all(|(&b, v)| b == v.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_selection_matches_centroid_count() {
        assert_eq!(CodeWidth::for_centroids(2), CodeWidth::W4);
        assert_eq!(CodeWidth::for_centroids(16), CodeWidth::W4);
        assert_eq!(CodeWidth::for_centroids(17), CodeWidth::W8);
        assert_eq!(CodeWidth::for_centroids(256), CodeWidth::W8);
        assert_eq!(CodeWidth::for_centroids(257), CodeWidth::W16);
        assert_eq!(CodeWidth::W4.capacity(), 16);
        assert_eq!(CodeWidth::W8.capacity(), 256);
        assert_eq!(CodeWidth::W16.capacity(), 65536);
    }

    #[test]
    fn row_blocks_are_32_byte_multiples() {
        for n_sub in [1, 2, 63, 64, 65, 129] {
            for width in [CodeWidth::W4, CodeWidth::W8, CodeWidth::W16] {
                let stride = row_stride(n_sub, width);
                assert_eq!(stride % ROW_BLOCK_ALIGN, 0, "{n_sub} {width:?}");
                assert!(stride >= width.packed_bytes(n_sub));
                assert!(stride < width.packed_bytes(n_sub) + ROW_BLOCK_ALIGN);
            }
        }
    }

    #[test]
    fn truncate_then_append_splices_row_streams_exactly() {
        for (n_sub, c) in [(3, 16), (5, 200), (4, 1000)] {
            let width = CodeWidth::for_centroids(c);
            let codes: Vec<u16> = (0..8 * n_sub).map(|i| (i * 13 % c) as u16).collect();
            let whole = PackedCodes::pack(&codes, 8, n_sub, width);

            // Keep 5 rows, then re-append the last 3 from a fresh stream:
            // the splice must be byte-identical to the original.
            let mut spliced = whole.clone();
            spliced.truncate_rows(5);
            assert_eq!(spliced.rows(), 5);
            assert_eq!(spliced.bytes().len(), spliced.expected_bytes());
            let tail = PackedCodes::pack(&codes[5 * n_sub..], 3, n_sub, width);
            spliced.append(&tail);
            assert_eq!(spliced.rows(), 8);
            assert_eq!(spliced.bytes(), whole.bytes(), "splice diverged");
            assert_eq!(spliced.unpack(), whole.unpack());

            // Truncating past the end is a no-op.
            let mut same = whole.clone();
            same.truncate_rows(99);
            assert_eq!(same.bytes(), whole.bytes());
        }
    }

    #[test]
    #[should_panic(expected = "different n_sub")]
    fn append_rejects_mismatched_streams() {
        let a_codes = vec![1u16; 2 * 3];
        let b_codes = vec![1u16; 2 * 4];
        let mut a = PackedCodes::pack(&a_codes, 2, 3, CodeWidth::W4);
        let b = PackedCodes::pack(&b_codes, 2, 4, CodeWidth::W4);
        a.append(&b);
    }

    #[test]
    fn pack_unpack_round_trips_all_widths() {
        for (n_sub, c) in [(1, 2), (5, 16), (7, 200), (9, 1000)] {
            let width = CodeWidth::for_centroids(c);
            let rows = 4;
            let codes: Vec<u16> = (0..rows * n_sub).map(|i| (i * 37 % c) as u16).collect();
            let packed = PackedCodes::pack(&codes, rows, n_sub, width);
            assert_eq!(packed.unpack(), codes, "n_sub={n_sub} c={c}");
            for r in 0..rows {
                for s in 0..n_sub {
                    assert_eq!(packed.code(r, s), codes[r * n_sub + s]);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 4-bit width")]
    fn pack_rejects_overflowing_codes() {
        let _ = PackedCodes::pack(&[16], 1, 1, CodeWidth::W4);
    }

    #[test]
    fn from_bytes_permits_truncated_streams() {
        let packed = PackedCodes::from_bytes(vec![0u8; 5], 4, 8, CodeWidth::W4);
        assert_eq!(packed.expected_bytes(), 4 * 32);
        assert_eq!(packed.size_bytes(), 5);
    }

    #[test]
    fn memo_hits_verify_and_misses_fall_through() {
        let memo = EncodeMemo::new(64);
        let row = [1.0f32, -2.5, 3.25];
        let block = [7u8; 32];
        let mut dst = [0u8; 32];
        assert!(!memo.lookup(&row, &mut dst), "cold lookup must miss");
        memo.insert(&row, &block);
        assert!(memo.lookup(&row, &mut dst));
        assert_eq!(dst, block);
        // Different row bits (even a sign flip) never alias.
        assert!(!memo.lookup(&[1.0f32, 2.5, 3.25], &mut dst));
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 0));
    }

    #[test]
    fn memo_is_bounded_and_counts_evictions() {
        let memo = EncodeMemo::new(1); // 1 row per shard after rounding
        let cap = memo.capacity_rows();
        for i in 0..(cap * 4) {
            memo.insert(&[i as f32], &[i as u8; 32]);
        }
        assert!(memo.len() <= cap, "{} > {cap}", memo.len());
        assert!(memo.stats().evictions > 0);
    }

    #[test]
    fn memo_rejects_mismatched_block_len_as_miss() {
        let memo = EncodeMemo::new(8);
        let row = [4.0f32];
        memo.insert(&row, &[1u8; 32]);
        let mut dst = [0u8; 64];
        assert!(!memo.lookup(&row, &mut dst), "stale stride must miss");
    }
}
