//! `LutEngine`: the batched, multithreaded deploy-path kernel for LUT-GEMM
//! (paper Fig. 2 steps ➌/➍, rebuilt for throughput).
//!
//! The scalar reference ([`crate::approx_matmul_from_codes`]) walks one row
//! at a time and strides `c·n` through the table per subspace. This engine
//! restructures the same computation around three ideas:
//!
//! 1. **Fused encode+lookup over flat slices.** Rows are read as contiguous
//!    `&[f32]` slices (no per-element `at()`), codes land in a reusable
//!    scratch buffer, and the lookup phase starts immediately — no
//!    intermediate `Vec<u16>` allocation per call.
//!
//! 2. **Tile-transposed table layout.** The dequantized table is stored
//!    subspace-blocked and `N`-tiled:
//!
//!    ```text
//!    scalar layout:  table[s][ci][0..N]          (row stride N, walk strides c·N)
//!    engine layout:  tiles[t][s][ci][0..tile_n]  (everything a tile needs is
//!                                                 one contiguous n_sub·c·tile_n block)
//!    ```
//!
//!    For each output tile the kernel streams *all* rows of the batch
//!    against one resident block (`n_sub · c · tile_n` floats — ~1 MiB at
//!    `c=16, n_sub=256, tile_n=64`) instead of touching the full `n_sub·c·N`
//!    table per row. Per output element the subspaces are still accumulated
//!    in ascending order, so results are **bit-identical** to the scalar
//!    path (INT8 entries are pre-dequantized with exactly the arithmetic of
//!    [`LutTable::accumulate`]).
//!
//! 3. **Pooled row-parallelism.** Batches are split into contiguous row
//!    chunks executed on a persistent [`WorkerPool`] (threads spawned once,
//!    channel-fed) instead of per-call `std::thread::scope` spawns. An
//!    engine lazily creates its own pool on first multithreaded dispatch,
//!    or shares one injected via [`LutEngine::with_pool`] — the runtime
//!    layer hands every engine of a deployed model the same pool so a
//!    many-layer model does not oversubscribe the machine. Per-chunk
//!    scratch (code buffers) is retained across calls — steady-state
//!    `run_batch` allocates only the output tensor.
//!
//! # Encode-once execution
//!
//! Encoding is the expensive similarity walk; the codes it produces are
//! valid for *any* table built from the same codebook. Three entry points
//! exploit that separation:
//!
//! - [`LutEngine::encode_packed`] / [`LutEngine::run_from_packed`] split
//!   encode from lookup around a [`PackedCodes`] stream stored at the
//!   minimal width for the centroid count (nibbles for `c ≤ 16`, bytes for
//!   `c ≤ 256`) — the lookup loops stream the packed form directly, so the
//!   code-stream bandwidth drops 2–4× versus `u16` codes.
//! - [`LutEngine::run_many_from_packed`] applies one code stream to N
//!   [`TileTables`] sharing the codebook — precision/quant sweeps and
//!   Q/K/V-style shared-input projections pay one encode, N lookups.
//! - [`LutEngine::run_batch_memo`] fronts the encode with a cross-request
//!   [`EncodeMemo`]: duplicate rows skip the walk via a verified hash
//!   probe, bit-identically (encoding is deterministic per engine).
//!
//! All three produce results bit-identical to [`LutEngine::run_batch`]; the
//! `u16` [`LutEngine::run_from_codes`] path remains as a thin adapter over
//! the same generic lookup kernels.
//!
//! # Buffer-reuse contract
//!
//! `run_batch` takes `&mut self` purely so per-worker scratch can be reused;
//! it never mutates the quantizer or the table. Growing the batch size grows
//! the scratch once; shrinking it keeps capacity. An engine is cheap to keep
//! alive per layer and expensive to rebuild (it re-tiles the table), so hold
//! on to it for the lifetime of the deployed weights.
//!
//! # Example
//!
//! ```
//! use lutdla_vq::{Distance, LutEngine, LutQuant, LutTable, ProductQuantizer};
//! use lutdla_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let a = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
//! let b = Tensor::rand_uniform(&mut rng, &[8, 4], -1.0, 1.0);
//! let pq = ProductQuantizer::fit(&a, 4, 16, Distance::L2, &mut rng);
//! let table = LutTable::build(&pq, &b, LutQuant::F32);
//! let mut engine = LutEngine::new(pq, &table);
//! let y = engine.run_batch(&a);
//! assert_eq!(y.dims(), &[64, 4]);
//! ```

use std::fmt;
use std::sync::Arc;

use lutdla_tensor::Tensor;

use crate::codebook::ProductQuantizer;
use crate::codes::{pack_row, CodeWidth, EncodeMemo, PackedCodes};
use crate::distance::Distance;
use crate::lut::LutTable;
use crate::pool::WorkerPool;
use crate::precision::FloatPrecision;

/// Default output-tile width (floats). 64 entries = one 256-byte burst per
/// (subspace, centroid) access — wide enough to vectorize, narrow enough
/// that a full tile block stays cache-resident at realistic `c·n_sub`.
pub const DEFAULT_TILE_N: usize = 64;

/// Rows below which a worker is not worth spawning: chunks smaller than
/// this are folded into fewer threads.
const MIN_ROWS_PER_WORKER: usize = 16;

/// Construction-time options for [`LutEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Output-tile width in floats (clamped to `1..=N`).
    pub tile_n: usize,
    /// Worker-thread count for `run_batch`/`run_from_codes`. `1` runs
    /// inline on the caller thread.
    pub workers: usize,
    /// Float precision of the similarity (encode) datapath.
    pub precision: FloatPrecision,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            tile_n: DEFAULT_TILE_N,
            workers: default_workers(),
            precision: FloatPrecision::Fp32,
        }
    }
}

/// Upper bound on any worker/pool size: far above useful parallelism for
/// this kernel, low enough that a typo'd `LUTDLA_WORKERS=10000` cannot
/// spawn a thread storm.
pub const MAX_WORKERS: usize = 64;

/// Default worker count for engines and pools.
///
/// The `LUTDLA_WORKERS` environment variable, when set to a positive
/// integer, overrides the detected parallelism (clamped to
/// `1..=`[`MAX_WORKERS`]); otherwise the machine's parallelism is used,
/// capped at 8 so a deployed model with many engines doesn't oversubscribe.
/// On a 1-CPU machine both paths bottom out at a single worker.
///
/// An override that is `0` or unparseable is **rejected, loudly**: the
/// detected parallelism is used instead and a warning is printed to stderr
/// (once per process) — a typo'd deployment knob must not silently change
/// the serving thread budget.
pub fn default_workers() -> usize {
    let env = std::env::var("LUTDLA_WORKERS").ok();
    let (workers, rejected) = worker_count(
        env.as_deref(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    if let Some(bad) = rejected {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "lutdla: ignoring invalid LUTDLA_WORKERS={bad:?} \
                 (need an integer in 1..={MAX_WORKERS}); \
                 using {workers} detected worker(s) instead"
            );
        });
    }
    workers
}

/// Pure sizing rule behind [`default_workers`], split out so the override,
/// clamping, and rejection behaviour is unit-testable without mutating the
/// process environment. Returns the worker count plus the rejected override
/// string when the override was present but invalid (`0`, empty, or not an
/// integer) — the caller owns the warning side effect.
fn worker_count(env_override: Option<&str>, parallelism: usize) -> (usize, Option<String>) {
    let fallback = parallelism.clamp(1, 8);
    match env_override {
        None => (fallback, None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => (n.clamp(1, MAX_WORKERS), None),
            Ok(_) | Err(_) => (fallback, Some(s.to_string())),
        },
    }
}

/// Errors surfaced by the code-driven entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A code index references a centroid the table does not have.
    CodeOutOfRange {
        /// Row containing the bad code.
        row: usize,
        /// Subspace containing the bad code.
        subspace: usize,
        /// The offending index.
        code: u16,
        /// Number of centroids per codebook.
        num_centroids: usize,
    },
    /// The code buffer is not `m × n_sub` entries long.
    CodeBufferShape {
        /// Expected entry count (`m · n_sub`).
        expected: usize,
        /// Actual buffer length.
        got: usize,
    },
    /// A packed stream's byte length does not match `rows × row_stride`
    /// (truncated or corrupt block).
    PackedBufferShape {
        /// Expected byte length (`rows · row_stride`).
        expected: usize,
        /// Actual byte length.
        got: usize,
    },
    /// `m = 0`: zero-sized tensors cannot be represented in this
    /// workspace, so an empty batch has no well-formed output.
    EmptyBatch,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::CodeOutOfRange {
                row,
                subspace,
                code,
                num_centroids,
            } => write!(
                f,
                "code {code} at (row {row}, subspace {subspace}) out of range: \
                 table has {num_centroids} centroids"
            ),
            EngineError::CodeBufferShape { expected, got } => {
                write!(f, "code buffer holds {got} entries, expected {expected}")
            }
            EngineError::PackedBufferShape { expected, got } => {
                write!(
                    f,
                    "packed code stream holds {got} bytes, expected {expected}"
                )
            }
            EngineError::EmptyBatch => {
                write!(f, "empty batch: m must be at least 1")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One table's tile-transposed, dequantized lookup blocks — the
/// lookup-phase half of an engine, split out so one encoded stream can be
/// applied to many tables built from the same codebook
/// ([`LutEngine::run_many_from_packed`]).
///
/// Backing store layout: `tiles[(t · n_sub + s) · c + ci][0..tile_n]`, last
/// tile zero-padded. Over-allocated so the first tile row can start on a
/// 64-byte boundary (`tile_off`) — a 256-byte row then spans 4 cache
/// lines, not 5.
pub struct TileTables {
    tiles: Vec<f32>,
    tile_off: usize,
    tile_len: usize,
    tile_n: usize,
    n: usize,
    c: usize,
    n_sub: usize,
}

impl TileTables {
    /// Re-tiles a (dequantized) table: one contiguous `n_sub·c·tile_n`
    /// block per output tile, so the lookup phase streams rows against a
    /// cache-resident block instead of striding the full table. `tile_n`
    /// is clamped to `1..=N`; [`DEFAULT_TILE_N`] hits the register-blocked
    /// fast path.
    pub fn build(table: &LutTable, tile_n: usize) -> Self {
        let n = table.output_dim();
        let c = table.num_centroids();
        let n_sub = table.num_subspaces();
        let tile_n = tile_n.clamp(1, n.max(1));
        let n_tiles = n.div_ceil(tile_n).max(1);
        let tile_len = n_tiles * n_sub * c * tile_n;
        let mut tiles = vec![0.0f32; tile_len + 16];
        let tile_off = match tiles.as_ptr().align_offset(64) {
            off if off <= 16 => off,
            _ => 0,
        };
        let mut row = vec![0.0f32; n];
        for s in 0..n_sub {
            for ci in 0..c {
                table.write_row(s, ci, &mut row);
                for t in 0..n_tiles {
                    let n0 = t * tile_n;
                    let len = (n - n0).min(tile_n);
                    let dst = tile_off + ((t * n_sub + s) * c + ci) * tile_n;
                    tiles[dst..dst + len].copy_from_slice(&row[n0..n0 + len]);
                }
            }
        }
        Self {
            tiles,
            tile_off,
            tile_len,
            tile_n,
            n,
            c,
            n_sub,
        }
    }

    /// Output width `N`.
    pub fn output_dim(&self) -> usize {
        self.n
    }

    /// Centroids per codebook the table was built for.
    pub fn num_centroids(&self) -> usize {
        self.c
    }

    /// Subspace count the table was built for.
    pub fn num_subspaces(&self) -> usize {
        self.n_sub
    }

    /// Tile width in floats.
    pub fn tile_n(&self) -> usize {
        self.tile_n
    }

    /// Heap footprint of the tiled blocks in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tiles.len() * std::mem::size_of::<f32>()
    }

    /// The tiled lookup/accumulate phase over any code stream. Per output
    /// element, subspaces are accumulated in ascending order — the same f32
    /// summation order as the scalar reference, hence bit-identical
    /// results. Full tiles at the default width go through a
    /// register-blocked fast path (an AVX2 `target_feature` clone when the
    /// CPU has it); ragged tails and custom widths use the portable generic
    /// loop.
    fn accumulate_chunk<S: CodeStream>(&self, codes: S, out: &mut [f32], m: usize, avx2: bool) {
        // Non-x86 builds take the portable loops unconditionally.
        #[cfg(not(target_arch = "x86_64"))]
        let _ = avx2;
        let n_tiles = self.n.div_ceil(self.tile_n);
        let tile_block = self.n_sub * self.c * self.tile_n;
        let tiles = &self.tiles[self.tile_off..self.tile_off + self.tile_len];
        for t in 0..n_tiles {
            let n0 = t * self.tile_n;
            let len = (self.n - n0).min(self.tile_n);
            let block = &tiles[t * tile_block..(t + 1) * tile_block];
            if self.tile_n == FAST_TILE && len == FAST_TILE {
                #[cfg(target_arch = "x86_64")]
                if avx2 {
                    // SAFETY: `avx2` is only set when
                    // `is_x86_feature_detected!("avx2")` reported support.
                    unsafe {
                        accumulate_tile_fast_avx2(
                            block, codes, out, m, self.n, n0, self.n_sub, self.c,
                        );
                    }
                    continue;
                }
                accumulate_tile_fast(block, codes, out, m, self.n, n0, self.n_sub, self.c);
            } else {
                accumulate_tile_generic(
                    block,
                    codes,
                    out,
                    m,
                    self.n,
                    n0,
                    len,
                    self.tile_n,
                    self.n_sub,
                    self.c,
                );
            }
        }
    }
}

impl fmt::Debug for TileTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TileTables")
            .field("n", &self.n)
            .field("c", &self.c)
            .field("n_sub", &self.n_sub)
            .field("tile_n", &self.tile_n)
            .finish()
    }
}

/// Immutable kernel state, shared read-only across worker threads.
struct EngineCore {
    pq: ProductQuantizer,
    /// Centroids pre-rounded to `precision` and transposed per subspace
    /// (`[n_sub][v][c]`), so the encode kernel can accumulate distances
    /// lane-parallel across centroids. Per centroid the dimension order is
    /// unchanged, so the distances — and hence the argmin — are
    /// bit-identical to [`crate::Distance::argmin_masked`] over the
    /// row-major codebooks.
    centroids_t: Vec<f32>,
    /// The engine's own table, re-tiled for the lookup phase.
    tables: TileTables,
    c: usize,
    v: usize,
    k: usize,
    n_sub: usize,
    precision: FloatPrecision,
    /// Detected once at build: run the accumulate kernel as an AVX2
    /// `target_feature` clone. Element-wise `vaddps` is IEEE-exact, so the
    /// wide path stays bit-identical to the portable one.
    use_avx2: bool,
}

/// Per-worker scratch, retained across calls (buffer-reuse contract).
#[derive(Default)]
struct Scratch {
    codes: Vec<u16>,
    sub: Vec<f32>,
    dists: Vec<f32>,
}

/// Batched, multithreaded LUT-GEMM inference engine. See the module docs
/// for the layout and threading model.
pub struct LutEngine {
    core: EngineCore,
    scratch: Vec<Scratch>,
    workers: usize,
    /// The persistent pool multithreaded dispatch runs on: injected via
    /// [`LutEngine::with_pool`] (shared across engines), or created lazily
    /// on first use and kept for the engine's lifetime.
    pool: Option<Arc<WorkerPool>>,
}

impl LutEngine {
    /// Builds an engine from a fitted quantizer and the table precomputed
    /// for one weight matrix, with default [`EngineOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `table` was not built under `pq` (subspace/centroid-count
    /// mismatch).
    pub fn new(pq: ProductQuantizer, table: &LutTable) -> Self {
        Self::with_opts(pq, table, EngineOptions::default())
    }

    /// Builds an engine with explicit options.
    ///
    /// # Panics
    ///
    /// See [`LutEngine::new`].
    pub fn with_opts(pq: ProductQuantizer, table: &LutTable, opts: EngineOptions) -> Self {
        let n_sub = pq.num_subspaces();
        let c = pq.num_centroids();
        assert_eq!(table.num_subspaces(), n_sub, "table subspace mismatch");
        assert_eq!(table.num_centroids(), c, "table centroid-count mismatch");

        let tables = TileTables::build(table, opts.tile_n);

        let use_avx2 = {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        };

        let mut core = EngineCore {
            centroids_t: Vec::new(),
            tables,
            use_avx2,
            c,
            v: pq.subvector_len(),
            k: pq.input_dim(),
            n_sub,
            precision: opts.precision,
            pq,
        };
        core.rebuild_centroid_cache();

        let workers = opts.workers.max(1);
        let mut scratch = Vec::new();
        scratch.resize_with(workers, Scratch::default);
        Self {
            core,
            scratch,
            workers,
            pool: None,
        }
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self.scratch.resize_with(self.workers, Scratch::default);
        self
    }

    /// Runs multithreaded dispatch on a shared [`WorkerPool`] instead of a
    /// lazily created private one (builder style). All engines of a
    /// deployed model should share one pool.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Sets the similarity-datapath precision (builder style); the
    /// pre-rounded centroid cache is rebuilt to match.
    pub fn with_precision(mut self, precision: FloatPrecision) -> Self {
        self.core.precision = precision;
        self.core.rebuild_centroid_cache();
        self
    }

    /// The quantizer the engine encodes with.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.core.pq
    }

    /// Output width `N`.
    pub fn output_dim(&self) -> usize {
        self.core.tables.n
    }

    /// Input width `K`.
    pub fn input_dim(&self) -> usize {
        self.core.k
    }

    /// Configured worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Output-tile width in floats.
    pub fn tile_n(&self) -> usize {
        self.core.tables.tile_n
    }

    /// The minimal [`CodeWidth`] for this engine's centroid count — the
    /// width [`LutEngine::encode_packed`] emits.
    pub fn code_width(&self) -> CodeWidth {
        CodeWidth::for_centroids(self.core.c)
    }

    /// This engine's own tiled tables — hand them to **another** engine's
    /// [`LutEngine::run_many_from_packed`] to evaluate this engine's table
    /// from that engine's code stream (both must share a codebook).
    pub fn tables(&self) -> &TileTables {
        &self.core.tables
    }

    /// Similarity-datapath precision.
    pub fn precision(&self) -> FloatPrecision {
        self.core.precision
    }

    /// Encodes and multiplies a batch: `x: [M, K] → [M, N]`.
    ///
    /// Bit-identical to `approx_matmul_with_precision(x, pq, table,
    /// precision)` for the quantizer/table/precision the engine was built
    /// with, at any tile width or worker count.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[M, K]` with the fitted `K`.
    pub fn run_batch(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "run_batch expects [M, K]");
        let (m, k) = (x.dims()[0], x.dims()[1]);
        assert_eq!(k, self.core.k, "K mismatch: engine {} got {k}", self.core.k);
        let n = self.core.tables.n;
        let mut out = vec![0.0f32; m * n];
        self.dispatch(m, Input::Rows(x.data()), &mut out, None);
        Tensor::from_vec(out, &[m, n])
    }

    /// Encodes a batch into a minimal-width [`PackedCodes`] stream without
    /// running the lookup phase: the packed stream can then drive
    /// [`LutEngine::run_from_packed`] or
    /// [`LutEngine::run_many_from_packed`] any number of times. Encoding is
    /// split over the worker pool exactly like `run_batch`; the codes are
    /// the ones `run_batch` would have produced.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[M, K]` with the fitted `K`.
    pub fn encode_packed(&mut self, x: &Tensor) -> PackedCodes {
        assert_eq!(x.shape().rank(), 2, "encode_packed expects [M, K]");
        let (m, k) = (x.dims()[0], x.dims()[1]);
        assert_eq!(k, self.core.k, "K mismatch: engine {} got {k}", self.core.k);
        let width = CodeWidth::for_centroids(self.core.c);
        let mut packed = PackedCodes::zeroed(m, self.core.n_sub, width);
        self.encode_dispatch(x.data(), m, &mut packed);
        packed
    }

    /// Lookup/accumulate only, streaming a packed code stream directly —
    /// the nibble/byte codes index the tile blocks without widening to an
    /// intermediate `u16` buffer. Bit-identical to `run_from_codes` on the
    /// unpacked stream. Malformed streams (truncated block, wrong subspace
    /// count, decoded `code ≥ c`) are rejected up front instead of
    /// panicking inside the kernel.
    pub fn run_from_packed(&mut self, packed: &PackedCodes) -> Result<Tensor, EngineError> {
        self.validate_packed(packed)?;
        let m = packed.rows();
        let n = self.core.tables.n;
        let mut out = vec![0.0f32; m * n];
        self.dispatch(m, Input::packed(packed), &mut out, None);
        Ok(Tensor::from_vec(out, &[m, n]))
    }

    /// Applies one code stream to `tables.len()` tables sharing this
    /// engine's codebook: one encode, N lookups (the `pbs_many_lut`
    /// pattern). Output `i` is bit-identical to running a solo engine
    /// built on table `i` over the same rows.
    ///
    /// # Panics
    ///
    /// Panics if a table was not built under this engine's quantizer
    /// (subspace/centroid-count mismatch) — same contract as
    /// [`LutEngine::new`].
    pub fn run_many_from_packed(
        &mut self,
        packed: &PackedCodes,
        tables: &[&TileTables],
    ) -> Result<Vec<Tensor>, EngineError> {
        self.validate_packed(packed)?;
        for t in tables {
            assert_eq!(t.n_sub, self.core.n_sub, "table subspace mismatch");
            assert_eq!(t.c, self.core.c, "table centroid-count mismatch");
        }
        let m = packed.rows();
        let mut outs = Vec::with_capacity(tables.len());
        for t in tables {
            let mut out = vec![0.0f32; m * t.n];
            self.dispatch(m, Input::packed(packed), &mut out, Some(t));
            outs.push(Tensor::from_vec(out, &[m, t.n]));
        }
        Ok(outs)
    }

    /// `run_batch` with a cross-request [`EncodeMemo`] in front of the
    /// encode phase: rows whose exact bit pattern is memoized skip the
    /// similarity walk and reuse the cached packed block; misses are
    /// encoded and inserted. Bit-identical to [`LutEngine::run_batch`]
    /// (encoding is deterministic for a fixed engine, and every memo hit is
    /// verified against the full row bits).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[M, K]` with the fitted `K`.
    pub fn run_batch_memo(&mut self, x: &Tensor, memo: &EncodeMemo) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "run_batch_memo expects [M, K]");
        let (m, k) = (x.dims()[0], x.dims()[1]);
        assert_eq!(k, self.core.k, "K mismatch: engine {} got {k}", self.core.k);
        let packed = self.encode_packed_memo(x.data(), m, memo);
        let n = self.core.tables.n;
        let mut out = vec![0.0f32; m * n];
        self.dispatch(m, Input::packed(&packed), &mut out, None);
        Tensor::from_vec(out, &[m, n])
    }

    /// Memo-fronted encode: probe per row, walk only the misses. Runs on
    /// the caller thread — the point of the memo is that the walk (the
    /// parallel part) mostly doesn't happen.
    fn encode_packed_memo(&mut self, rows: &[f32], m: usize, memo: &EncodeMemo) -> PackedCodes {
        let width = CodeWidth::for_centroids(self.core.c);
        let mut packed = PackedCodes::zeroed(m, self.core.n_sub, width);
        let stride = packed.row_stride();
        let core = &self.core;
        let scratch = &mut self.scratch[0];
        for r in 0..m {
            let row = &rows[r * core.k..(r + 1) * core.k];
            let dst = packed.row_bytes_mut(r);
            if memo.lookup(row, dst) {
                continue;
            }
            core.encode_pack_chunk(row, dst, scratch, width, stride);
            memo.insert(row, dst);
        }
        packed
    }

    /// Structural validation shared by the packed entry points, mirroring
    /// the `run_from_codes` checks. The out-of-range scan is skipped when
    /// the width cannot represent a code `≥ c` (e.g. nibbles at `c = 16`).
    fn validate_packed(&self, packed: &PackedCodes) -> Result<(), EngineError> {
        let m = packed.rows();
        if m == 0 {
            return Err(EngineError::EmptyBatch);
        }
        if packed.n_sub() != self.core.n_sub {
            return Err(EngineError::CodeBufferShape {
                expected: m * self.core.n_sub,
                got: m * packed.n_sub(),
            });
        }
        let expected = packed.expected_bytes();
        if packed.bytes().len() != expected {
            return Err(EngineError::PackedBufferShape {
                expected,
                got: packed.bytes().len(),
            });
        }
        if self.core.c < packed.width().capacity() {
            for r in 0..m {
                for s in 0..self.core.n_sub {
                    let code = packed.code(r, s);
                    if (code as usize) >= self.core.c {
                        return Err(EngineError::CodeOutOfRange {
                            row: r,
                            subspace: s,
                            code,
                            num_centroids: self.core.c,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Splits `m` rows over the workers and encodes each chunk straight
    /// into its disjoint byte range of the packed stream (fixed row stride
    /// ⇒ chunk boundaries are byte boundaries).
    fn encode_dispatch(&mut self, rows: &[f32], m: usize, packed: &mut PackedCodes) {
        let chunks = self
            .workers
            .min(m.div_ceil(MIN_ROWS_PER_WORKER))
            .clamp(1, m.max(1));
        let rows_per = m.div_ceil(chunks.max(1)).max(1);
        let target_pool = self.workers;
        let core = &self.core;
        let width = packed.width();
        let stride = packed.row_stride();
        let bytes = packed.bytes_mut();
        if chunks <= 1 {
            core.encode_pack_chunk(rows, bytes, &mut self.scratch[0], width, stride);
            return;
        }
        let pool = Arc::clone(
            self.pool
                .get_or_insert_with(|| Arc::new(WorkerPool::new(target_pool))),
        );
        pool.scope(|scope| {
            let mut row0 = 0usize;
            let mut bytes_rest = bytes;
            for scratch in self.scratch.iter_mut().take(chunks) {
                let rows_here = rows_per.min(m - row0);
                let (bytes_chunk, rest) = bytes_rest.split_at_mut(rows_here * stride);
                bytes_rest = rest;
                let row_chunk = &rows[row0 * core.k..(row0 + rows_here) * core.k];
                scope.spawn(move || {
                    core.encode_pack_chunk(row_chunk, bytes_chunk, scratch, width, stride)
                });
                row0 += rows_here;
                if row0 == m {
                    break;
                }
            }
        });
    }

    /// Lookup/accumulate only, from precomputed codes (`m` rows of
    /// `n_sub` entries). Malformed indices (`code ≥ c`) are rejected up
    /// front instead of panicking inside the kernel.
    pub fn run_from_codes(&mut self, codes: &[u16], m: usize) -> Result<Tensor, EngineError> {
        if m == 0 {
            return Err(EngineError::EmptyBatch);
        }
        let expected = m * self.core.n_sub;
        if codes.len() != expected {
            return Err(EngineError::CodeBufferShape {
                expected,
                got: codes.len(),
            });
        }
        let c = self.core.c as u16;
        if let Some(pos) = codes.iter().position(|&code| code >= c) {
            return Err(EngineError::CodeOutOfRange {
                row: pos / self.core.n_sub,
                subspace: pos % self.core.n_sub,
                code: codes[pos],
                num_centroids: self.core.c,
            });
        }
        let n = self.core.tables.n;
        let mut out = vec![0.0f32; m * n];
        self.dispatch(m, Input::Codes(codes), &mut out, None);
        Ok(Tensor::from_vec(out, &[m, n]))
    }

    /// Splits `m` rows over the workers and runs the kernel, inline when a
    /// single chunk suffices. `m ≥ 1`: zero-sized tensors cannot exist in
    /// this workspace, so the entry points always hand over real rows.
    /// `ext` substitutes a foreign [`TileTables`] (sharing this engine's
    /// codebook geometry) for the engine's own lookup blocks.
    fn dispatch(&mut self, m: usize, input: Input<'_>, out: &mut [f32], ext: Option<&TileTables>) {
        let chunks = self
            .workers
            .min(m.div_ceil(MIN_ROWS_PER_WORKER))
            .clamp(1, m);
        let rows_per = m.div_ceil(chunks);
        let target_pool = self.workers;
        let core = &self.core;
        let tables = ext.unwrap_or(&core.tables);
        if chunks == 1 {
            core.run_chunk(input.slice(core, 0, m), out, &mut self.scratch[0], tables);
            return;
        }
        // Chunks are queued on the persistent pool; if the pool has fewer
        // threads than chunks (a shared pool on a busy machine) the excess
        // simply waits its turn — results are independent of thread count.
        let pool = Arc::clone(
            self.pool
                .get_or_insert_with(|| Arc::new(WorkerPool::new(target_pool))),
        );
        pool.scope(|scope| {
            let mut row0 = 0usize;
            let mut out_rest = out;
            for scratch in self.scratch.iter_mut().take(chunks) {
                let rows = rows_per.min(m - row0);
                let (out_chunk, rest) = out_rest.split_at_mut(rows * tables.n);
                out_rest = rest;
                let chunk = input.slice(core, row0, rows);
                scope.spawn(move || core.run_chunk(chunk, out_chunk, scratch, tables));
                row0 += rows;
                if row0 == m {
                    break;
                }
            }
        });
    }
}

impl fmt::Debug for LutEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LutEngine")
            .field("k", &self.core.k)
            .field("n", &self.core.tables.n)
            .field("c", &self.core.c)
            .field("n_sub", &self.core.n_sub)
            .field("tile_n", &self.core.tables.tile_n)
            .field("workers", &self.workers)
            .field("precision", &self.core.precision)
            .finish()
    }
}

/// What a worker chunk consumes: raw activation rows (fused encode+lookup),
/// precomputed `u16` codes, or a minimal-width packed stream (lookup only).
#[derive(Clone, Copy)]
enum Input<'a> {
    Rows(&'a [f32]),
    Codes(&'a [u16]),
    Packed {
        bytes: &'a [u8],
        stride: usize,
        width: CodeWidth,
    },
}

impl<'a> Input<'a> {
    fn packed(packed: &'a PackedCodes) -> Input<'a> {
        Input::Packed {
            bytes: packed.bytes(),
            stride: packed.row_stride(),
            width: packed.width(),
        }
    }

    fn slice(&self, core: &EngineCore, row0: usize, rows: usize) -> Input<'a> {
        match *self {
            Input::Rows(data) => Input::Rows(&data[row0 * core.k..(row0 + rows) * core.k]),
            Input::Codes(codes) => {
                Input::Codes(&codes[row0 * core.n_sub..(row0 + rows) * core.n_sub])
            }
            Input::Packed {
                bytes,
                stride,
                width,
            } => Input::Packed {
                bytes: &bytes[row0 * stride..(row0 + rows) * stride],
                stride,
                width,
            },
        }
    }
}

/// A read-only stream of centroid codes addressed by (row, subspace) — the
/// abstraction that lets one set of lookup kernels consume `u16` buffers
/// and every packed width. Implementations are `Copy` views; `code` is
/// `#[inline(always)]` so each width monomorphizes to a direct load (plus a
/// shift/mask for nibbles) inside the tile loops, including their AVX2
/// `target_feature` clones.
trait CodeStream: Copy {
    /// The code at (`r`, `s`), already widened to an index.
    fn code(&self, r: usize, s: usize) -> usize;

    /// The codes at (`r`, `s`) and (`r`, `s + 1`) in one step. `s` must be
    /// even — the fast tile walks subspaces pairwise so the nibble stream
    /// can decode both halves of a byte from a single load instead of
    /// re-addressing (and re-shifting) per subspace.
    #[inline(always)]
    fn code_pair(&self, r: usize, s: usize) -> (usize, usize) {
        (self.code(r, s), self.code(r, s + 1))
    }
}

/// The classic row-major `u16` buffer (`codes[r·n_sub + s]`).
#[derive(Clone, Copy)]
struct WordCodes<'a> {
    codes: &'a [u16],
    n_sub: usize,
}

impl CodeStream for WordCodes<'_> {
    #[inline(always)]
    fn code(&self, r: usize, s: usize) -> usize {
        self.codes[r * self.n_sub + s] as usize
    }
}

/// 4-bit packed stream: two codes per byte, low nibble first.
#[derive(Clone, Copy)]
struct NibbleCodes<'a> {
    bytes: &'a [u8],
    stride: usize,
}

impl CodeStream for NibbleCodes<'_> {
    #[inline(always)]
    fn code(&self, r: usize, s: usize) -> usize {
        ((self.bytes[r * self.stride + s / 2] >> ((s & 1) * 4)) & 0xf) as usize
    }

    #[inline(always)]
    fn code_pair(&self, r: usize, s: usize) -> (usize, usize) {
        // `s` even ⇒ both codes live in one byte: low nibble first.
        let b = self.bytes[r * self.stride + s / 2];
        ((b & 0xf) as usize, (b >> 4) as usize)
    }
}

/// 8-bit packed stream: one byte per code.
#[derive(Clone, Copy)]
struct ByteCodes<'a> {
    bytes: &'a [u8],
    stride: usize,
}

impl CodeStream for ByteCodes<'_> {
    #[inline(always)]
    fn code(&self, r: usize, s: usize) -> usize {
        self.bytes[r * self.stride + s] as usize
    }
}

/// 16-bit packed stream: little-endian `u16` per code (`c > 256`).
#[derive(Clone, Copy)]
struct WideCodes<'a> {
    bytes: &'a [u8],
    stride: usize,
}

impl CodeStream for WideCodes<'_> {
    #[inline(always)]
    fn code(&self, r: usize, s: usize) -> usize {
        let off = r * self.stride + 2 * s;
        u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]]) as usize
    }
}

impl EngineCore {
    /// Rebuilds the transposed centroid cache at the current precision.
    fn rebuild_centroid_cache(&mut self) {
        // Stage a rounded row-major copy, then transpose it per subspace.
        let mut rounded = Vec::with_capacity(self.n_sub * self.c * self.v);
        for cb in self.pq.codebooks() {
            rounded.extend_from_slice(cb.as_slice());
        }
        self.precision.round_slice(&mut rounded);
        self.centroids_t.clear();
        self.centroids_t.resize(self.n_sub * self.c * self.v, 0.0);
        for s in 0..self.n_sub {
            let base = s * self.c * self.v;
            for ci in 0..self.c {
                for j in 0..self.v {
                    self.centroids_t[base + j * self.c + ci] = rounded[base + ci * self.v + j];
                }
            }
        }
    }

    /// Executes one contiguous row chunk: encode (if needed) then the tiled
    /// lookup/accumulate against `tables` (the engine's own blocks or a
    /// foreign table sharing the codebook). `out` must arrive zeroed.
    fn run_chunk(
        &self,
        input: Input<'_>,
        out: &mut [f32],
        scratch: &mut Scratch,
        tables: &TileTables,
    ) {
        let m = out.len() / tables.n;
        match input {
            Input::Codes(codes) => {
                let stream = WordCodes {
                    codes,
                    n_sub: self.n_sub,
                };
                tables.accumulate_chunk(stream, out, m, self.use_avx2);
            }
            Input::Packed {
                bytes,
                stride,
                width,
            } => match width {
                CodeWidth::W4 => {
                    tables.accumulate_chunk(NibbleCodes { bytes, stride }, out, m, self.use_avx2)
                }
                CodeWidth::W8 => {
                    tables.accumulate_chunk(ByteCodes { bytes, stride }, out, m, self.use_avx2)
                }
                CodeWidth::W16 => {
                    tables.accumulate_chunk(WideCodes { bytes, stride }, out, m, self.use_avx2)
                }
            },
            Input::Rows(rows) => {
                scratch.codes.resize(m * self.n_sub, 0);
                scratch.sub.resize(self.v, 0.0);
                scratch.dists.resize(self.c, 0.0);
                #[cfg(target_arch = "x86_64")]
                if self.use_avx2 {
                    // SAFETY: `use_avx2` is only set when
                    // `is_x86_feature_detected!("avx2")` reported support.
                    unsafe { self.encode_chunk_avx2(rows, scratch) };
                    let stream = WordCodes {
                        codes: &scratch.codes,
                        n_sub: self.n_sub,
                    };
                    tables.accumulate_chunk(stream, out, m, self.use_avx2);
                    return;
                }
                self.encode_chunk(rows, scratch);
                let stream = WordCodes {
                    codes: &scratch.codes,
                    n_sub: self.n_sub,
                };
                tables.accumulate_chunk(stream, out, m, self.use_avx2);
            }
        }
    }

    /// Encodes a chunk of rows and immediately packs each row's codes into
    /// its fixed-stride block of `bytes` — the worker body behind
    /// `encode_packed`.
    fn encode_pack_chunk(
        &self,
        rows: &[f32],
        bytes: &mut [u8],
        scratch: &mut Scratch,
        width: CodeWidth,
        stride: usize,
    ) {
        let m = rows.len() / self.k.max(1);
        scratch.codes.resize(m * self.n_sub, 0);
        scratch.sub.resize(self.v, 0.0);
        scratch.dists.resize(self.c, 0.0);
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2 {
            // SAFETY: `use_avx2` is only set when
            // `is_x86_feature_detected!("avx2")` reported support.
            unsafe { self.encode_chunk_avx2(rows, scratch) };
            pack_chunk(&scratch.codes, self.n_sub, width, stride, bytes);
            return;
        }
        self.encode_chunk(rows, scratch);
        pack_chunk(&scratch.codes, self.n_sub, width, stride, bytes);
    }

    /// Encodes a chunk of rows into `scratch.codes`, masking the padded
    /// tail of a ragged final subspace out of the distance.
    ///
    /// Distances are accumulated lane-parallel across centroids over the
    /// transposed codebook copy: for every centroid the dimensions are
    /// still visited in ascending order with the same f32 operations as
    /// [`crate::Distance::eval`], so the selected indices are identical to
    /// the scalar `argmin_masked` walk — the lanes only buy SIMD width.
    #[inline(always)]
    fn encode_chunk(&self, rows: &[f32], scratch: &mut Scratch) {
        let Scratch { codes, sub, dists } = scratch;
        for (row, codes_row) in rows
            .chunks_exact(self.k)
            .zip(codes.chunks_exact_mut(self.n_sub))
        {
            for (s, code) in codes_row.iter_mut().enumerate() {
                let lo = s * self.v;
                let hi = ((s + 1) * self.v).min(self.k);
                let len = hi - lo;
                let x = if self.precision == FloatPrecision::Fp32 {
                    &row[lo..hi]
                } else {
                    sub[..len].copy_from_slice(&row[lo..hi]);
                    self.precision.round_slice(&mut sub[..len]);
                    &sub[..len]
                };
                let cents_t = &self.centroids_t[s * self.c * self.v..];
                *code = self.nearest_centroid(x, cents_t, dists) as u16;
            }
        }
    }

    /// AVX2 `target_feature` clone of [`EngineCore::encode_chunk`]; see
    /// [`accumulate_tile_fast_avx2`] for why this stays bit-identical.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: unsafe-to-call purely because of `target_feature`; the body
    // is safe code. The only call site is gated on `use_avx2`, set from
    // `is_x86_feature_detected!("avx2")`.
    unsafe fn encode_chunk_avx2(&self, rows: &[f32], scratch: &mut Scratch) {
        self.encode_chunk(rows, scratch);
    }

    /// Index of the closest centroid to `x` over a `[v][c]` transposed
    /// centroid block, ties resolving to the lowest index (dPE semantics).
    #[inline(always)]
    fn nearest_centroid(&self, x: &[f32], cents_t: &[f32], dists: &mut [f32]) -> usize {
        let c = self.c;
        dists.fill(0.0);
        match self.pq.distance() {
            Distance::L2 => {
                for (j, &xj) in x.iter().enumerate() {
                    let lane = &cents_t[j * c..(j + 1) * c];
                    for (d, &cv) in dists.iter_mut().zip(lane) {
                        let t = xj - cv;
                        *d += t * t;
                    }
                }
            }
            Distance::L1 => {
                for (j, &xj) in x.iter().enumerate() {
                    let lane = &cents_t[j * c..(j + 1) * c];
                    for (d, &cv) in dists.iter_mut().zip(lane) {
                        *d += (xj - cv).abs();
                    }
                }
            }
            Distance::Chebyshev => {
                for (j, &xj) in x.iter().enumerate() {
                    let lane = &cents_t[j * c..(j + 1) * c];
                    for (d, &cv) in dists.iter_mut().zip(lane) {
                        *d = d.max((xj - cv).abs());
                    }
                }
            }
        }
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, &d) in dists.iter().enumerate() {
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

/// Packs a chunk's worth of freshly encoded `u16` codes into fixed-stride
/// row blocks.
fn pack_chunk(codes: &[u16], n_sub: usize, width: CodeWidth, stride: usize, bytes: &mut [u8]) {
    for (row_codes, block) in codes
        .chunks_exact(n_sub)
        .zip(bytes.chunks_exact_mut(stride))
    {
        pack_row(row_codes, width, block);
    }
}

/// Tile width of the register-blocked fast path (= [`DEFAULT_TILE_N`]):
/// the accumulator is a fixed `[f32; 64]`, which LLVM keeps in vector
/// registers across the whole subspace walk.
const FAST_TILE: usize = DEFAULT_TILE_N;

/// How many subspaces ahead the fast path prefetches its table row. The
/// codes make the access pattern fully known in advance; prefetching hides
/// the L2 latency of the 4-cache-line row the adds are about to consume.
/// Must stay even: the fast tile walks subspaces pairwise and prefetches
/// with `code_pair`, which requires pair-aligned subspace indices.
const PREFETCH_AHEAD: usize = 4;

#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline(always)]
fn prefetch_row(block: &[f32], off: usize) {
    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    // SAFETY: prefetch is a hint — it never faults, and `off` stays inside
    // the block (callers pass a row start within bounds).
    unsafe {
        let p = block.as_ptr().add(off) as *const i8;
        _mm_prefetch(p, _MM_HINT_T0);
        _mm_prefetch(p.add(64), _MM_HINT_T0);
        _mm_prefetch(p.add(128), _MM_HINT_T0);
        _mm_prefetch(p.add(192), _MM_HINT_T0);
    }
}

// Miri interprets rather than executes vendor intrinsics, so the CI Miri
// job (engine unsafe-adjacent tests) takes the no-op: the prefetch is
// semantically invisible, results are identical.
#[cfg(any(not(target_arch = "x86_64"), miri))]
#[inline(always)]
fn prefetch_row(_block: &[f32], _off: usize) {}

/// One full-width output tile for a chunk of rows: fixed-size accumulator,
/// prefetched table rows. `out` rows must arrive zeroed for this tile.
/// Generic over the code stream — `u16` and every packed width
/// monomorphize to the same loop with only the code load differing.
#[allow(clippy::too_many_arguments)] // mirrors the flat dPE tile-walk signature shared with the generic path
#[inline(always)]
fn accumulate_tile_fast<S: CodeStream>(
    block: &[f32],
    codes: S,
    out: &mut [f32],
    m: usize,
    n: usize,
    n0: usize,
    n_sub: usize,
    c: usize,
) {
    // The tile block is exactly n_sub·c rows of FAST_TILE floats, so the
    // as_chunks remainder is empty and `table[s*c + code]` is the row —
    // fixed-width arrays without a fallible try_into on the hot path.
    let (table, _) = block.as_chunks::<FAST_TILE>();
    // Subspaces are walked two at a time so `code_pair` decodes a nibble
    // pair from one byte load; PREFETCH_AHEAD is even, keeping the
    // prefetch addresses pair-aligned too. The accumulation stays in
    // ascending `s` order, so results are bit-identical to the scalar walk.
    let paired = n_sub & !1;
    for r in 0..m {
        let mut acc = [0.0f32; FAST_TILE];
        let mut s = 0;
        while s < paired {
            let ahead = s + PREFETCH_AHEAD;
            if ahead + 1 < paired {
                let (p0, p1) = codes.code_pair(r, ahead);
                prefetch_row(block, (ahead * c + p0) * FAST_TILE);
                prefetch_row(block, ((ahead + 1) * c + p1) * FAST_TILE);
            }
            let (c0, c1) = codes.code_pair(r, s);
            let src = &table[s * c + c0];
            for (a, &p) in acc.iter_mut().zip(src) {
                *a += p;
            }
            let src = &table[(s + 1) * c + c1];
            for (a, &p) in acc.iter_mut().zip(src) {
                *a += p;
            }
            s += 2;
        }
        if s < n_sub {
            let src = &table[s * c + codes.code(r, s)];
            for (a, &p) in acc.iter_mut().zip(src) {
                *a += p;
            }
        }
        out[r * n + n0..r * n + n0 + FAST_TILE].copy_from_slice(&acc);
    }
}

/// AVX2 clone of [`accumulate_tile_fast`]: identical Rust source compiled
/// with 256-bit vectors available. Element-wise f32 addition is IEEE-exact
/// at any width, so results are bit-identical to the portable path.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)] // same flat dPE tile-walk signature as the portable clone
                                     // SAFETY: unsafe-to-call purely because of `target_feature`; the body is
                                     // safe code. The only call site is gated on `use_avx2`, set from
                                     // `is_x86_feature_detected!("avx2")`.
unsafe fn accumulate_tile_fast_avx2<S: CodeStream>(
    block: &[f32],
    codes: S,
    out: &mut [f32],
    m: usize,
    n: usize,
    n0: usize,
    n_sub: usize,
    c: usize,
) {
    accumulate_tile_fast(block, codes, out, m, n, n0, n_sub, c);
}

/// Any-width tile accumulation (custom `tile_n`, ragged final tile).
#[allow(clippy::too_many_arguments)] // same flat dPE tile-walk signature, plus the ragged len/tile_n pair
#[inline(always)]
fn accumulate_tile_generic<S: CodeStream>(
    block: &[f32],
    codes: S,
    out: &mut [f32],
    m: usize,
    n: usize,
    n0: usize,
    len: usize,
    tile_n: usize,
    n_sub: usize,
    c: usize,
) {
    for r in 0..m {
        let acc = &mut out[r * n + n0..r * n + n0 + len];
        for s in 0..n_sub {
            let src_off = (s * c + codes.code(r, s)) * tile_n;
            let src = &block[src_off..src_off + len];
            for (a, &p) in acc.iter_mut().zip(src) {
                *a += p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amm::{approx_matmul_from_codes, approx_matmul_with_precision};
    use crate::distance::Distance;
    use crate::lut::LutQuant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        m: usize,
        k: usize,
        n: usize,
        v: usize,
        c: usize,
        seed: u64,
    ) -> (Tensor, ProductQuantizer, LutTable) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
        let table = LutTable::build(&pq, &b, LutQuant::F32);
        (a, pq, table)
    }

    #[test]
    fn fast_path_with_ragged_tail_tile_is_bit_identical() {
        // N = 70 at the default tile width: one full 64-wide tile through
        // the register-blocked fast path (AVX2 clone where detected) plus a
        // 6-wide ragged tail through the generic path — the hand-off an
        // off-by-one would corrupt. K = 18, v = 4 adds a ragged subspace.
        let (a, pq, table) = setup(40, 18, 70, 4, 16, 39);
        let reference = approx_matmul_with_precision(&a, &pq, &table, FloatPrecision::Fp32);
        let mut engine = LutEngine::new(pq.clone(), &table).with_workers(1);
        assert_eq!(engine.tile_n(), DEFAULT_TILE_N);
        let got = engine.run_batch(&a);
        assert!(got.allclose(&reference, 0.0), "fast path not bit-identical");

        // Same through the codes entry point and with threads.
        let codes = pq.encode(&a);
        let mut threaded = LutEngine::new(pq, &table).with_workers(3);
        let got = threaded.run_from_codes(&codes, 40).expect("valid codes");
        assert!(got.allclose(&reference, 0.0), "threaded fast path diverged");
    }

    #[test]
    fn bit_identical_to_scalar_path() {
        let (a, pq, table) = setup(33, 17, 29, 4, 8, 40);
        let reference = approx_matmul_with_precision(&a, &pq, &table, FloatPrecision::Fp32);
        let mut engine = LutEngine::with_opts(
            pq,
            &table,
            EngineOptions {
                tile_n: 7, // ragged tiles on purpose
                workers: 3,
                precision: FloatPrecision::Fp32,
            },
        );
        let got = engine.run_batch(&a);
        assert!(got.allclose(&reference, 0.0), "not bit-identical");
    }

    #[test]
    fn bit_identical_for_int8_tables_and_bf16_encode() {
        let mut rng = StdRng::seed_from_u64(41);
        let a = Tensor::rand_uniform(&mut rng, &[21, 10], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[10, 13], -1.0, 1.0);
        // v = 4 ∤ K = 10: ragged final subspace.
        let pq = ProductQuantizer::fit(&a, 4, 8, Distance::L1, &mut rng);
        let table = LutTable::build(&pq, &b, LutQuant::Int8);
        let reference = approx_matmul_with_precision(&a, &pq, &table, FloatPrecision::Bf16);
        let mut engine = LutEngine::new(pq, &table).with_precision(FloatPrecision::Bf16);
        let got = engine.run_batch(&a);
        assert!(got.allclose(&reference, 0.0), "not bit-identical");
    }

    #[test]
    fn run_from_codes_matches_reference() {
        let (a, pq, table) = setup(16, 12, 10, 3, 8, 42);
        let codes = pq.encode(&a);
        let reference = approx_matmul_from_codes(&codes, 16, &pq, &table);
        let mut engine = LutEngine::new(pq, &table).with_workers(2);
        let got = engine.run_from_codes(&codes, 16).expect("valid codes");
        assert!(got.allclose(&reference, 0.0));
    }

    #[test]
    fn malformed_codes_are_rejected_not_panicking() {
        let (a, pq, table) = setup(4, 8, 6, 4, 8, 43);
        let mut codes = pq.encode(&a);
        codes[3] = 8; // == c, one past the last valid centroid
        let mut engine = LutEngine::new(pq, &table);
        let err = engine.run_from_codes(&codes, 4).expect_err("bad code");
        assert_eq!(
            err,
            EngineError::CodeOutOfRange {
                row: 1,
                subspace: 1,
                code: 8,
                num_centroids: 8
            }
        );

        let err = engine.run_from_codes(&codes[..5], 4).expect_err("short");
        assert!(matches!(err, EngineError::CodeBufferShape { .. }));

        let err = engine.run_from_codes(&[], 0).expect_err("empty");
        assert_eq!(err, EngineError::EmptyBatch);
    }

    #[test]
    fn packed_path_is_bit_identical_w4() {
        // c = 16 → nibble stream, with a ragged tail tile (N = 70) and a
        // ragged final subspace (v = 4 ∤ K = 18) — the same shape as the
        // fast-path test, through encode_packed + run_from_packed.
        let (a, pq, table) = setup(40, 18, 70, 4, 16, 39);
        let mut engine = LutEngine::new(pq.clone(), &table).with_workers(3);
        let expect = engine.run_batch(&a);
        let packed = engine.encode_packed(&a);
        assert_eq!(packed.width(), CodeWidth::W4);
        assert_eq!(engine.code_width(), CodeWidth::W4);
        // The packed stream holds exactly the codes the quantizer emits.
        assert_eq!(packed.unpack(), pq.encode(&a));
        let got = engine.run_from_packed(&packed).expect("well-formed stream");
        assert!(got.allclose(&expect, 0.0), "W4 packed path diverged");
        // And the u16 adapter agrees with the packed stream it unpacks to.
        let via_codes = engine.run_from_codes(&packed.unpack(), 40).expect("valid");
        assert!(via_codes.allclose(&expect, 0.0));
    }

    #[test]
    fn packed_path_is_bit_identical_w8_and_w16() {
        // c = 32 → byte stream.
        let (a, pq, table) = setup(64, 16, 40, 4, 32, 48);
        let mut engine = LutEngine::new(pq, &table).with_workers(2);
        let expect = engine.run_batch(&a);
        let packed = engine.encode_packed(&a);
        assert_eq!(packed.width(), CodeWidth::W8);
        let got = engine.run_from_packed(&packed).expect("well-formed stream");
        assert!(got.allclose(&expect, 0.0), "W8 packed path diverged");

        // c = 300 → u16 fallback stream.
        let (a, pq, table) = setup(300, 4, 8, 2, 300, 49);
        let mut engine = LutEngine::new(pq, &table).with_workers(2);
        let expect = engine.run_batch(&a);
        let packed = engine.encode_packed(&a);
        assert_eq!(packed.width(), CodeWidth::W16);
        let got = engine.run_from_packed(&packed).expect("well-formed stream");
        assert!(got.allclose(&expect, 0.0), "W16 packed path diverged");
    }

    #[test]
    fn malformed_packed_streams_are_rejected_not_panicking() {
        // Mirrors `malformed_codes_are_rejected_not_panicking` for the
        // packed entry point. c = 8 packs as nibbles whose capacity (16)
        // exceeds c, so the out-of-range scan is live.
        let (a, pq, table) = setup(4, 8, 6, 4, 8, 43);
        let mut engine = LutEngine::new(pq, &table);
        let good = engine.encode_packed(&a);

        // Truncated stream → PackedBufferShape with byte counts.
        let short_bytes = good.bytes()[..good.size_bytes() - 1].to_vec();
        let short = PackedCodes::from_bytes(short_bytes, 4, good.n_sub(), good.width());
        let err = engine.run_from_packed(&short).expect_err("short block");
        assert_eq!(
            err,
            EngineError::PackedBufferShape {
                expected: good.expected_bytes(),
                got: good.size_bytes() - 1
            }
        );
        assert_eq!(
            err.to_string(),
            format!(
                "packed code stream holds {} bytes, expected {}",
                good.size_bytes() - 1,
                good.expected_bytes()
            )
        );

        // Code == c after unpack → the exact CodeOutOfRange the u16 path
        // reports, message format included.
        let mut codes = good.unpack();
        codes[3] = 8; // == c, one past the last valid centroid
        let bad = PackedCodes::pack(&codes, 4, good.n_sub(), good.width());
        let err = engine.run_from_packed(&bad).expect_err("bad code");
        assert_eq!(
            err,
            EngineError::CodeOutOfRange {
                row: 1,
                subspace: 1,
                code: 8,
                num_centroids: 8
            }
        );
        assert_eq!(
            err.to_string(),
            "code 8 at (row 1, subspace 1) out of range: table has 8 centroids"
        );

        // Zero rows → EmptyBatch.
        let empty = PackedCodes::zeroed(0, good.n_sub(), good.width());
        let err = engine.run_from_packed(&empty).expect_err("empty");
        assert_eq!(err, EngineError::EmptyBatch);

        // Wrong subspace count → CodeBufferShape in entry counts.
        let wrong = PackedCodes::zeroed(4, good.n_sub() + 1, good.width());
        let err = engine.run_from_packed(&wrong).expect_err("n_sub mismatch");
        assert_eq!(
            err,
            EngineError::CodeBufferShape {
                expected: 4 * good.n_sub(),
                got: 4 * (good.n_sub() + 1)
            }
        );
    }

    #[test]
    fn run_many_from_packed_matches_solo_engines() {
        // One code stream over three tables (one per LutQuant, mixed
        // ragged/full tile widths) must match a solo engine per table.
        let mut rng = StdRng::seed_from_u64(50);
        let a = Tensor::rand_uniform(&mut rng, &[40, 16], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, 4, 16, Distance::L2, &mut rng);
        let quants = [LutQuant::F32, LutQuant::F16, LutQuant::Int8];
        let luts: Vec<LutTable> = quants
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let b = Tensor::rand_uniform(&mut rng, &[16, 30 + i * 17], -1.0, 1.0);
                LutTable::build(&pq, &b, q)
            })
            .collect();
        let tables: Vec<TileTables> = luts
            .iter()
            .map(|t| TileTables::build(t, DEFAULT_TILE_N))
            .collect();
        let refs: Vec<&TileTables> = tables.iter().collect();

        let mut engine = LutEngine::new(pq.clone(), &luts[0]).with_workers(2);
        let packed = engine.encode_packed(&a);
        let many = engine
            .run_many_from_packed(&packed, &refs)
            .expect("well-formed stream");
        assert_eq!(many.len(), 3);
        for (y, lut) in many.iter().zip(&luts) {
            let mut solo = LutEngine::new(pq.clone(), lut).with_workers(1);
            let expect = solo.run_batch(&a);
            assert_eq!(y.dims(), expect.dims());
            assert!(y.allclose(&expect, 0.0), "many-table output diverged");
        }
    }

    #[test]
    fn memo_path_is_bit_identical_and_counts_hits() {
        let (a, pq, table) = setup(24, 8, 6, 4, 8, 51);
        let mut engine = LutEngine::new(pq, &table).with_workers(2);
        let expect = engine.run_batch(&a);
        // Capacity ≥ batch × shards: even a degenerate shard distribution
        // cannot evict, so the warm pass is deterministically all-hits.
        let memo = EncodeMemo::new(256);
        let cold = engine.run_batch_memo(&a, &memo);
        assert!(cold.allclose(&expect, 0.0), "cold memo path diverged");
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 24, 0));
        let warm = engine.run_batch_memo(&a, &memo);
        assert!(warm.allclose(&expect, 0.0), "warm memo path diverged");
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (24, 24, 0));
        assert_eq!(memo.len(), 24);
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let (a, pq, table) = setup(24, 8, 6, 4, 8, 44);
        let mut engine = LutEngine::new(pq, &table).with_workers(1);
        let first = engine.run_batch(&a);
        let cap = engine.scratch[0].codes.capacity();
        let second = engine.run_batch(&a);
        assert_eq!(cap, engine.scratch[0].codes.capacity(), "scratch realloc");
        assert!(first.allclose(&second, 0.0));
    }

    #[test]
    fn single_row_batch_is_fine() {
        let (a, pq, table) = setup(4, 8, 6, 4, 8, 45);
        let one_row = a.rows(0, 1);
        let reference = approx_matmul_with_precision(&one_row, &pq, &table, FloatPrecision::Fp32);
        let mut engine = LutEngine::new(pq, &table).with_workers(4);
        let y = engine.run_batch(&one_row);
        assert!(y.allclose(&reference, 0.0));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (a, pq, table) = setup(64, 16, 24, 4, 16, 46);
        let mut one = LutEngine::new(pq.clone(), &table).with_workers(1);
        let mut four = LutEngine::new(pq, &table).with_workers(4);
        let y1 = one.run_batch(&a);
        let y4 = four.run_batch(&a);
        assert!(y1.allclose(&y4, 0.0));
    }

    #[test]
    fn engines_sharing_one_pool_stay_bit_identical() {
        let (a, pq, table) = setup(64, 16, 24, 4, 16, 47);
        let mut reference = LutEngine::new(pq.clone(), &table).with_workers(1);
        let expect = reference.run_batch(&a);

        let pool = Arc::new(WorkerPool::new(2));
        let mut e1 = LutEngine::new(pq.clone(), &table)
            .with_workers(2)
            .with_pool(Arc::clone(&pool));
        let mut e2 = LutEngine::new(pq, &table)
            .with_workers(3)
            .with_pool(Arc::clone(&pool));
        // Repeated calls reuse the same persistent threads.
        for _ in 0..3 {
            assert!(e1.run_batch(&a).allclose(&expect, 0.0));
            assert!(e2.run_batch(&a).allclose(&expect, 0.0));
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn worker_count_env_override_and_clamps() {
        // No override: detected parallelism, capped at 8, floored at 1 —
        // and nothing to warn about.
        assert_eq!(worker_count(None, 1), (1, None));
        assert_eq!(worker_count(None, 4), (4, None));
        assert_eq!(worker_count(None, 32), (8, None));
        // Override wins and is clamped to 1..=MAX_WORKERS.
        assert_eq!(worker_count(Some("3"), 1), (3, None));
        assert_eq!(worker_count(Some(" 12 "), 1), (12, None));
        assert_eq!(worker_count(Some("100000"), 4), (MAX_WORKERS, None));
    }

    #[test]
    fn worker_count_rejects_invalid_overrides_with_a_warning() {
        // Zero or garbage is *rejected*, not silently defaulted: the caller
        // gets the offending string back so it can warn, plus the detected
        // parallelism as the fallback.
        assert_eq!(worker_count(Some("0"), 1), (1, Some("0".to_string())));
        assert_eq!(
            worker_count(Some("not-a-number"), 2),
            (2, Some("not-a-number".to_string()))
        );
        assert_eq!(worker_count(Some(""), 1), (1, Some(String::new())));
        assert_eq!(worker_count(Some("-3"), 4), (4, Some("-3".to_string())));
        // The fallback still honours the no-override clamps.
        assert_eq!(worker_count(Some("0"), 32), (8, Some("0".to_string())));
    }

    #[test]
    fn default_workers_respects_env_var() {
        // Process-global env mutation: this is the only test that touches
        // LUTDLA_WORKERS, and it restores the variable before returning.
        let saved = std::env::var("LUTDLA_WORKERS").ok();
        std::env::set_var("LUTDLA_WORKERS", "5");
        assert_eq!(default_workers(), 5);
        match saved {
            Some(v) => std::env::set_var("LUTDLA_WORKERS", v),
            None => std::env::remove_var("LUTDLA_WORKERS"),
        }
    }
}
