//! Product quantization: per-subspace codebooks over the GEMM `K` dimension.

use lutdla_tensor::Tensor;
use rand::Rng;

use crate::distance::Distance;
use crate::kmeans::{kmeans, KmeansConfig};
use crate::precision::FloatPrecision;

/// A single subspace's centroid set: row-major `[c, v]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    centroids: Vec<f32>,
    c: usize,
    v: usize,
}

impl Codebook {
    /// Creates a codebook from a row-major `[c, v]` centroid matrix.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not `c·v`.
    pub fn new(centroids: Vec<f32>, c: usize, v: usize) -> Self {
        assert_eq!(centroids.len(), c * v, "centroid buffer shape mismatch");
        Self { centroids, c, v }
    }

    /// Number of centroids.
    pub fn len(&self) -> usize {
        self.c
    }

    /// Whether the codebook has no centroids (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.c == 0
    }

    /// Subvector length.
    pub fn dim(&self) -> usize {
        self.v
    }

    /// Centroid `i` as a slice.
    pub fn centroid(&self, i: usize) -> &[f32] {
        &self.centroids[i * self.v..(i + 1) * self.v]
    }

    /// The raw `[c, v]` centroid buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.centroids
    }

    /// Mutable access to the raw centroid buffer (used by LUTBoost training).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.centroids
    }

    /// Index of the closest centroid to `x` under `metric`.
    pub fn quantize(&self, x: &[f32], metric: Distance) -> usize {
        metric.argmin(x, &self.centroids)
    }
}

/// A product quantizer: the `K` dimension is split into `⌈K/v⌉` subspaces of
/// length `v`, each with its own `c`-entry [`Codebook`].
///
/// # Example
///
/// ```
/// use lutdla_vq::{Distance, ProductQuantizer};
/// use lutdla_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let data = Tensor::rand_uniform(&mut rng, &[64, 8], -1.0, 1.0);
/// let pq = ProductQuantizer::fit(&data, 4, 16, Distance::L2, &mut rng);
/// assert_eq!(pq.num_subspaces(), 2);
/// let codes = pq.encode(&data);
/// assert_eq!(codes.len(), 64 * 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProductQuantizer {
    codebooks: Vec<Codebook>,
    /// Subvector length `v`.
    v: usize,
    /// Centroids per codebook `c`.
    c: usize,
    /// Original (unpadded) `K`.
    k: usize,
    /// Assignment metric.
    distance: Distance,
}

impl ProductQuantizer {
    /// Fits one k-means per subspace on calibration rows `data: [n, K]`.
    ///
    /// `K` is zero-padded up to a multiple of `v` (the padding influences
    /// neither distances nor lookups because weights are padded identically).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not rank-2 or `v`/`c` are zero.
    pub fn fit<R: Rng>(data: &Tensor, v: usize, c: usize, distance: Distance, rng: &mut R) -> Self {
        assert_eq!(data.shape().rank(), 2, "calibration data must be [n, K]");
        assert!(v > 0 && c > 0, "v and c must be positive");
        let (n, k) = (data.dims()[0], data.dims()[1]);
        let n_sub = k.div_ceil(v);

        let mut codebooks = Vec::with_capacity(n_sub);
        let mut sub = vec![0.0f32; n * v];
        for s in 0..n_sub {
            // Gather the (zero-padded) subvectors of subspace s.
            sub.fill(0.0);
            for i in 0..n {
                for j in 0..v {
                    let col = s * v + j;
                    if col < k {
                        sub[i * v + j] = data.at(&[i, col]);
                    }
                }
            }
            let cfg = KmeansConfig {
                k: c,
                max_iters: 25,
                tol: 1e-4,
                distance,
            };
            let res = kmeans(&sub, v, &cfg, rng);
            codebooks.push(Codebook::new(res.centroids, c, v));
        }
        Self {
            codebooks,
            v,
            c,
            k,
            distance,
        }
    }

    /// Builds a quantizer from externally trained codebooks (LUTBoost export).
    ///
    /// # Panics
    ///
    /// Panics if the codebooks disagree in shape or don't cover `k`.
    pub fn from_codebooks(codebooks: Vec<Codebook>, k: usize, distance: Distance) -> Self {
        assert!(!codebooks.is_empty(), "need at least one codebook");
        let v = codebooks[0].dim();
        let c = codebooks[0].len();
        assert!(
            codebooks.iter().all(|cb| cb.dim() == v && cb.len() == c),
            "inconsistent codebook shapes"
        );
        assert_eq!(codebooks.len(), k.div_ceil(v), "codebook count mismatch");
        Self {
            codebooks,
            v,
            c,
            k,
            distance,
        }
    }

    /// Subvector length `v`.
    pub fn subvector_len(&self) -> usize {
        self.v
    }

    /// Centroids per codebook `c`.
    pub fn num_centroids(&self) -> usize {
        self.c
    }

    /// Original `K` dimension.
    pub fn input_dim(&self) -> usize {
        self.k
    }

    /// Number of subspaces `Nc = ⌈K/v⌉`.
    pub fn num_subspaces(&self) -> usize {
        self.codebooks.len()
    }

    /// Assignment metric.
    pub fn distance(&self) -> Distance {
        self.distance
    }

    /// The codebooks, one per subspace.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// Mutable codebooks (LUTBoost joint training writes back here).
    pub fn codebooks_mut(&mut self) -> &mut [Codebook] {
        &mut self.codebooks
    }

    /// Equivalent bits per scalar weight: `⌈log2 c⌉ / v` (paper Table V).
    pub fn equivalent_bits(&self) -> f64 {
        (self.c as f64).log2().ceil() / self.v as f64
    }

    /// Encodes rows of `data: [m, K]` into centroid indices `[m, Nc]`
    /// (row-major `Vec<u16>`).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not `[m, K]` with the fitted `K`.
    pub fn encode(&self, data: &Tensor) -> Vec<u16> {
        self.encode_with_precision(data, FloatPrecision::Fp32)
    }

    /// Encodes with the similarity datapath emulated at `precision`
    /// (Table IV's BF16 column rounds both operands before comparing).
    ///
    /// Subvectors are read as flat row slices; for a ragged final subspace
    /// (`v ∤ K`) only the leading `K mod v` dimensions enter the distance —
    /// the padded centroid tail slots are masked out, so assignments match a
    /// quantizer fitted on zero-padded data regardless of what those slots
    /// contain (see [`crate::Distance::argmin_masked`]).
    pub fn encode_with_precision(&self, data: &Tensor, precision: FloatPrecision) -> Vec<u16> {
        assert_eq!(data.shape().rank(), 2, "encode expects [m, K]");
        let (m, k) = (data.dims()[0], data.dims()[1]);
        assert_eq!(k, self.k, "K mismatch: fitted {} got {k}", self.k);
        let n_sub = self.num_subspaces();
        let mut codes = vec![0u16; m * n_sub];
        let mut sub = vec![0.0f32; self.v];

        // Pre-round centroid copies once when a reduced precision is in play.
        let rounded: Option<Vec<Vec<f32>>> = if precision != FloatPrecision::Fp32 {
            Some(
                self.codebooks
                    .iter()
                    .map(|cb| {
                        let mut c = cb.as_slice().to_vec();
                        precision.round_slice(&mut c);
                        c
                    })
                    .collect(),
            )
        } else {
            None
        };

        for i in 0..m {
            let row = data.row(i);
            for s in 0..n_sub {
                let lo = s * self.v;
                let hi = ((s + 1) * self.v).min(k);
                let len = hi - lo;
                let cents = match &rounded {
                    Some(r) => r[s].as_slice(),
                    None => self.codebooks[s].as_slice(),
                };
                let idx = if precision == FloatPrecision::Fp32 {
                    self.distance.argmin_masked(&row[lo..hi], cents, self.v)
                } else {
                    sub[..len].copy_from_slice(&row[lo..hi]);
                    precision.round_slice(&mut sub[..len]);
                    self.distance.argmin_masked(&sub[..len], cents, self.v)
                };
                codes[i * n_sub + s] = idx as u16;
            }
        }
        codes
    }

    /// Reconstructs `[m, K]` activations from codes (centroid gather).
    pub fn decode(&self, codes: &[u16], m: usize) -> Tensor {
        let n_sub = self.num_subspaces();
        assert_eq!(codes.len(), m * n_sub, "code buffer shape mismatch");
        let mut out = Tensor::zeros(&[m, self.k]);
        for i in 0..m {
            for s in 0..n_sub {
                let cent = self.codebooks[s].centroid(codes[i * n_sub + s] as usize);
                for (j, &cj) in cent.iter().enumerate() {
                    let col = s * self.v + j;
                    if col < self.k {
                        out.set(&[i, col], cj);
                    }
                }
            }
        }
        out
    }

    /// Total number of centroid scalars (the "LUT-model parameters" the
    /// paper contrasts with weights, §V-1).
    pub fn num_centroid_scalars(&self) -> usize {
        self.num_subspaces() * self.c * self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fit_small(rng: &mut StdRng) -> (Tensor, ProductQuantizer) {
        let data = Tensor::rand_uniform(rng, &[128, 12], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&data, 4, 8, Distance::L2, rng);
        (data, pq)
    }

    #[test]
    fn subspace_count() {
        let mut rng = StdRng::seed_from_u64(60);
        let (_, pq) = fit_small(&mut rng);
        assert_eq!(pq.num_subspaces(), 3);
        assert_eq!(pq.subvector_len(), 4);
        assert_eq!(pq.num_centroids(), 8);
    }

    #[test]
    fn padding_when_v_does_not_divide_k() {
        let mut rng = StdRng::seed_from_u64(61);
        let data = Tensor::rand_uniform(&mut rng, &[32, 10], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&data, 4, 4, Distance::L2, &mut rng);
        assert_eq!(pq.num_subspaces(), 3); // ceil(10/4)
        let codes = pq.encode(&data);
        let rec = pq.decode(&codes, 32);
        assert_eq!(rec.dims(), &[32, 10]);
    }

    #[test]
    fn encode_decode_reduces_error_with_more_centroids() {
        let mut rng = StdRng::seed_from_u64(62);
        let data = Tensor::rand_uniform(&mut rng, &[256, 8], -1.0, 1.0);
        let err = |c: usize, rng: &mut StdRng| {
            let pq = ProductQuantizer::fit(&data, 4, c, Distance::L2, rng);
            let codes = pq.encode(&data);
            pq.decode(&codes, 256).rel_error(&data)
        };
        let e4 = err(4, &mut rng);
        let e64 = err(64, &mut rng);
        assert!(e64 < e4, "e64={e64} e4={e4}");
    }

    #[test]
    fn decode_is_exact_when_inputs_are_centroids() {
        let mut rng = StdRng::seed_from_u64(63);
        let (_, pq) = fit_small(&mut rng);
        // Build inputs directly from centroids of each subspace.
        let m = 8;
        let mut x = Tensor::zeros(&[m, 12]);
        for i in 0..m {
            for s in 0..3 {
                let cent = pq.codebooks()[s].centroid(i % 8);
                for (j, &cj) in cent.iter().enumerate() {
                    x.set(&[i, s * 4 + j], cj);
                }
            }
        }
        let codes = pq.encode(&x);
        let rec = pq.decode(&codes, m);
        assert!(rec.allclose(&x, 1e-6));
    }

    #[test]
    fn equivalent_bits_matches_paper_examples() {
        // Table V: v=9,c=8 → 3/9 ≈ 0.33 bit; v=3,c=16 → 4/3 ≈ 1.33 bit.
        let mut rng = StdRng::seed_from_u64(64);
        let data = Tensor::rand_uniform(&mut rng, &[64, 18], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&data, 9, 8, Distance::L2, &mut rng);
        assert!((pq.equivalent_bits() - 3.0 / 9.0).abs() < 1e-9);
        let pq2 = ProductQuantizer::fit(&data, 3, 16, Distance::L2, &mut rng);
        assert!((pq2.equivalent_bits() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn bf16_encode_mostly_agrees_with_fp32() {
        let mut rng = StdRng::seed_from_u64(65);
        let (data, pq) = fit_small(&mut rng);
        let full = pq.encode(&data);
        let reduced = pq.encode_with_precision(&data, FloatPrecision::Bf16);
        let agree =
            full.iter().zip(&reduced).filter(|(a, b)| a == b).count() as f32 / full.len() as f32;
        assert!(agree > 0.9, "agreement only {agree}");
    }
}
