//! Property-based tests of the quantization stack.

use lutdla_tensor::Tensor;
use lutdla_vq::{
    amm_error, approx_matmul, approx_matmul_from_codes, approx_matmul_with_precision, bf16_round,
    fp16_round, kmeans, share, AdaptiveOptions, BatchPolicy, CodeWidth, Distance, EngineError,
    EngineOptions, FloatPrecision, Int8Block, KmeansConfig, LutEngine, LutQuant, LutTable,
    MicroBatcher, PackedCodes, ProductQuantizer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Distances satisfy the metric axioms we rely on (identity, symmetry,
    /// non-negativity).
    #[test]
    fn distance_axioms(
        v in prop::collection::vec(-10.0f32..10.0, 1..16),
        w in prop::collection::vec(-10.0f32..10.0, 1..16),
    ) {
        prop_assume!(v.len() == w.len());
        for d in Distance::ALL {
            prop_assert!(d.eval(&v, &w) >= 0.0);
            prop_assert_eq!(d.eval(&v, &v), 0.0);
            prop_assert!((d.eval(&v, &w) - d.eval(&w, &v)).abs() < 1e-5);
        }
    }

    /// argmin returns the index whose distance is truly minimal.
    #[test]
    fn argmin_is_minimal(
        seed in 0u64..2000,
        dim in 1usize..8,
        c in 1usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[dim], -1.0, 1.0);
        let cents = Tensor::rand_uniform(&mut rng, &[c * dim], -1.0, 1.0);
        for d in Distance::ALL {
            let best = d.argmin(x.data(), cents.data());
            let best_d = d.eval(x.data(), &cents.data()[best * dim..(best + 1) * dim]);
            for i in 0..c {
                let di = d.eval(x.data(), &cents.data()[i * dim..(i + 1) * dim]);
                prop_assert!(best_d <= di + 1e-6, "{d}: {best_d} > {di}");
            }
        }
    }

    /// K-means inertia never exceeds the one-cluster (mean) baseline.
    #[test]
    fn kmeans_beats_single_mean(seed in 0u64..500, n in 8usize..64, k in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 3;
        let data = Tensor::rand_uniform(&mut rng, &[n * dim], -1.0, 1.0);
        let multi = kmeans(data.data(), dim, &KmeansConfig { k, ..Default::default() }, &mut rng);
        let single = kmeans(data.data(), dim, &KmeansConfig { k: 1, ..Default::default() }, &mut rng);
        prop_assert!(multi.inertia <= single.inertia + 1e-6);
    }

    /// PQ reconstruction error is bounded by the worst per-subspace
    /// assignment distance (definitional sanity).
    #[test]
    fn pq_reconstruction_error_bounded(seed in 0u64..500, v in 2usize..5, c_pow in 1u32..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = v * 3;
        let data = Tensor::rand_uniform(&mut rng, &[32, k], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&data, v, 2usize.pow(c_pow), Distance::L2, &mut rng);
        let codes = pq.encode(&data);
        let rec = pq.decode(&codes, 32);
        // The decoded rows must be the *closest* centroids: re-encoding the
        // reconstruction must reproduce the codes.
        let codes2 = pq.encode(&rec);
        prop_assert_eq!(codes, codes2);
    }

    /// AMM with the exact (FP32) table equals decode-then-matmul.
    #[test]
    fn amm_equals_decode_matmul(seed in 0u64..500, v in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = v * 2;
        let a = Tensor::rand_uniform(&mut rng, &[16, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, 6], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, 8, Distance::L2, &mut rng);
        let lut = LutTable::build(&pq, &b, LutQuant::F32);
        let via_lut = approx_matmul(&a, &pq, &lut);
        let codes = pq.encode(&a);
        let via_decode = pq.decode(&codes, 16).matmul(&b);
        prop_assert!(via_lut.allclose(&via_decode, 1e-3));
    }

    /// AMM error report is self-consistent: rel_frobenius ≥ 0, and zero only
    /// if outputs match.
    #[test]
    fn amm_error_consistent(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[24, 8], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[8, 4], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, 4, 16, Distance::L1, &mut rng);
        let lut = LutTable::build(&pq, &b, LutQuant::F32);
        let e = amm_error(&a, &b, &pq, &lut);
        prop_assert!(e.rel_frobenius >= 0.0);
        prop_assert!(e.max_abs >= 0.0);
    }

    /// Precision rounders are idempotent and monotone-preserving.
    #[test]
    fn rounders_idempotent(x in -1e6f32..1e6) {
        prop_assert_eq!(bf16_round(bf16_round(x)), bf16_round(x));
        prop_assert_eq!(fp16_round(fp16_round(x)), fp16_round(x));
    }

    /// INT8 quantize/dequantize error stays within half a step.
    #[test]
    fn int8_error_within_half_step(
        xs in prop::collection::vec(-100.0f32..100.0, 1..64),
    ) {
        let q = Int8Block::quantize(&xs);
        let back = q.dequantize();
        let max_abs = xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let step = max_abs / 127.0;
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    /// The batched engine is bit-identical to the scalar encode→lookup→
    /// accumulate path for random shapes — including ragged `K` (`v ∤ K`),
    /// every table precision, every similarity precision, ragged output
    /// tiles, and multiple workers.
    #[test]
    fn engine_bit_identical_to_scalar_path(
        seed in 0u64..400,
        m in 1usize..33,
        v in 2usize..6,
        n_sub in 1usize..5,
        ragged in 0usize..4,
        n in 1usize..96,
        c_pow in 1u32..5,
        tile_sel in 0usize..5,
        workers in 1usize..5,
        quant_sel in 0usize..3,
        prec_sel in 0usize..3,
        metric_sel in 0usize..3,
    ) {
        // K = n_sub·v minus a ragged remainder keeps K ≥ 1 and exercises
        // both the divisible and the padded-tail cases.
        prop_assume!(ragged < v);
        let k = n_sub * v - ragged.min(n_sub * v - 1);
        // Include the default width (64) so the register-blocked fast path
        // and its hand-off to the generic ragged tail are sampled.
        let tile_n = [3, 7, 16, 33, lutdla_vq::DEFAULT_TILE_N][tile_sel];
        let quant = [LutQuant::F32, LutQuant::F16, LutQuant::Int8][quant_sel];
        let precision =
            [FloatPrecision::Fp32, FloatPrecision::Bf16, FloatPrecision::Fp16][prec_sel];
        let metric = Distance::ALL[metric_sel];

        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, 2usize.pow(c_pow), metric, &mut rng);
        let lut = LutTable::build(&pq, &b, quant);

        let reference = approx_matmul_with_precision(&a, &pq, &lut, precision);
        let mut engine = LutEngine::with_opts(
            pq,
            &lut,
            EngineOptions { tile_n, workers, precision },
        );
        let got = engine.run_batch(&a);
        prop_assert!(
            got.allclose(&reference, 0.0),
            "engine diverged: m={m} k={k} n={n} v={v} tile_n={tile_n} \
             workers={workers} quant={quant:?} precision={precision:?} {metric}"
        );
    }

    /// The code-driven engine entry point matches the scalar
    /// lookup/accumulate for valid codes, and rejects out-of-range codes
    /// with a structured error instead of panicking.
    #[test]
    fn engine_codes_path_matches_and_rejects_malformed(
        seed in 0u64..300,
        m in 1usize..17,
        v in 2usize..5,
        n in 1usize..16,
        bad_row in 0usize..17,
        bad_sub in 0usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = v * 2 + 1; // always ragged
        let c = 8usize;
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
        let lut = LutTable::build(&pq, &b, LutQuant::F32);
        let n_sub = pq.num_subspaces();
        let codes = pq.encode(&a);

        let reference = approx_matmul_from_codes(&codes, m, &pq, &lut);
        let mut engine = LutEngine::new(pq, &lut).with_workers(2);
        let got = engine.run_from_codes(&codes, m).expect("valid codes");
        prop_assert!(got.allclose(&reference, 0.0));

        // Corrupt one entry: the engine must refuse the whole batch.
        let mut bad = codes.clone();
        let pos = (bad_row % m) * n_sub + (bad_sub % n_sub);
        bad[pos] = c as u16;
        let err = engine.run_from_codes(&bad, m);
        prop_assert!(
            matches!(err, Err(EngineError::CodeOutOfRange { .. })),
            "expected CodeOutOfRange, got {err:?}"
        );

        // A truncated buffer is a shape error, not a panic.
        let err = engine.run_from_codes(&codes[..codes.len() - 1], m);
        prop_assert!(matches!(err, Err(EngineError::CodeBufferShape { .. })));
    }

    /// An adaptive-policy micro-batcher is bit-identical to a direct
    /// `run_batch` for every `LutQuant × FloatPrecision` combo, whatever
    /// the window range or the single-row/block mix of the request stream:
    /// the window an adaptive controller happens to be at is purely a
    /// throughput decision.
    #[test]
    fn adaptive_serving_bit_identical_to_run_batch(
        seed in 0u64..200,
        m in 1usize..25,
        min_pow in 0u32..3,
        max_pow in 3u32..7,
        block in 1usize..6,
        quant_sel in 0usize..3,
        prec_sel in 0usize..3,
    ) {
        let quant = [LutQuant::F32, LutQuant::F16, LutQuant::Int8][quant_sel];
        let precision =
            [FloatPrecision::Fp32, FloatPrecision::Bf16, FloatPrecision::Fp16][prec_sel];
        let (k, n, v, c) = (10usize, 9usize, 4usize, 8usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
        let table = LutTable::build(&pq, &b, quant);
        let mut engine = LutEngine::new(pq, &table).with_precision(precision);
        let reference = engine.run_batch(&a);

        let batcher = MicroBatcher::with_policy(
            share(engine),
            BatchPolicy::Adaptive(AdaptiveOptions::drain_only(
                2usize.pow(min_pow),
                2usize.pow(max_pow),
            )),
        );
        // Mixed stream: blocks of `block` rows with a ragged tail.
        let mut handles = Vec::new();
        let mut row0 = 0;
        while row0 < m {
            let rows = block.min(m - row0);
            handles.push((
                row0,
                rows,
                batcher
                    .submit_rows(&a.data()[row0 * k..(row0 + rows) * k])
                    .expect("valid block"),
            ));
            row0 += rows;
        }
        for (row0, rows, handle) in handles {
            let out = handle.wait().expect("batcher alive");
            prop_assert_eq!(
                out.as_slice(),
                &reference.data()[row0 * n..(row0 + rows) * n],
                "rows {}..{} diverged under adaptive serving ({:?}+{:?})",
                row0, row0 + rows, quant, precision
            );
        }
    }

    /// Packing codes at the minimal width and unpacking them is the
    /// identity, for every centroid count `c ∈ 2..=256` (4- and 8-bit
    /// packs), the 16-bit fallback, ragged subspace counts that leave a
    /// partial final byte, and both per-element (`code`) and bulk
    /// (`unpack`) readback.
    #[test]
    fn packed_codes_roundtrip(
        m in 1usize..24,
        n_sub in 1usize..10,
        c in 2usize..257,
        seed in 0u64..1000,
        w16_sel in 0usize..2,
    ) {
        let width = if w16_sel == 1 {
            CodeWidth::W16
        } else {
            CodeWidth::for_centroids(c)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let codes: Vec<u16> = (0..m * n_sub)
            .map(|_| rng.gen_range(0..c.min(width.capacity())) as u16)
            .collect();
        let packed = PackedCodes::pack(&codes, m, n_sub, width);
        prop_assert_eq!(packed.rows(), m);
        prop_assert_eq!(packed.n_sub(), n_sub);
        prop_assert_eq!(packed.size_bytes(), packed.expected_bytes());
        prop_assert_eq!(packed.row_stride() % lutdla_vq::ROW_BLOCK_ALIGN, 0);
        prop_assert_eq!(&packed.unpack(), &codes);
        for r in 0..m {
            for s in 0..n_sub {
                prop_assert_eq!(packed.code(r, s), codes[r * n_sub + s]);
            }
        }
    }

    /// `run_from_packed` is bit-identical to `run_from_codes` on the same
    /// code stream for random shapes, every packable centroid count, and
    /// ragged `K`/output tiles — the packed representation is a pure
    /// storage change, never a numeric one.
    #[test]
    fn packed_execution_matches_u16_codes(
        seed in 0u64..300,
        m in 1usize..17,
        v in 2usize..5,
        n in 1usize..24,
        c_pow in 1u32..7,
        quant_sel in 0usize..3,
        prec_sel in 0usize..3,
    ) {
        let quant = [LutQuant::F32, LutQuant::F16, LutQuant::Int8][quant_sel];
        let precision =
            [FloatPrecision::Fp32, FloatPrecision::Bf16, FloatPrecision::Fp16][prec_sel];
        let mut rng = StdRng::seed_from_u64(seed);
        let k = v * 2 + 1; // always ragged
        let c = 2usize.pow(c_pow);
        let a = Tensor::rand_uniform(&mut rng, &[m.max(2 * c), k], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
        let lut = LutTable::build(&pq, &b, quant);
        let x = Tensor::from_vec(a.data()[..m * k].to_vec(), &[m, k]);
        let codes = pq.encode(&x);

        let mut engine = LutEngine::new(pq, &lut).with_precision(precision);
        let reference = engine.run_from_codes(&codes, m).expect("valid codes");
        let packed = engine.encode_packed(&x);
        prop_assert_eq!(packed.unpack(), codes);
        prop_assert_eq!(packed.width(), CodeWidth::for_centroids(c));
        let got = engine.run_from_packed(&packed).expect("valid packed codes");
        prop_assert!(
            got.allclose(&reference, 0.0),
            "packed path diverged: m={m} k={k} n={n} c={c} {quant:?}+{precision:?}"
        );
    }

    /// Equivalent bits match the definitional formula for all (v, c).
    #[test]
    fn equivalent_bits_formula(v in 1usize..10, c_pow in 1u32..8, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = 2usize.pow(c_pow);
        let data = Tensor::rand_uniform(&mut rng, &[c.max(8), v * 2], -1.0, 1.0);
        let pq = ProductQuantizer::fit(&data, v, c, Distance::L2, &mut rng);
        prop_assert!((pq.equivalent_bits() - c_pow as f64 / v as f64).abs() < 1e-12);
    }
}
