//! Matrix multiplication and transposition.

use crate::Tensor;

/// Cache-blocked ikj GEMM over raw slices: `out[m,n] += a[m,k] × b[k,n]`.
/// `out` must arrive zeroed (or hold a partial sum to accumulate onto).
fn matmul_slices(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    // ikj ordering keeps the b row and out row streaming through cache.
    const BLOCK: usize = 64;
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let out_row = &mut out[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Implemented as a cache-blocked ikj loop; adequate for the small-model
    /// training workloads in this workspace.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(rhs.shape().rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");

        let mut out = vec![0.0f32; m * n];
        matmul_slices(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix product of two rank-3 tensors:
    /// `[b, m, k] × [b, k, n] → [b, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if ranks are not 3, batch sizes differ, or inner dims differ.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().rank(), 3, "bmm lhs must be rank-3");
        assert_eq!(rhs.shape().rank(), 3, "bmm rhs must be rank-3");
        let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let (b2, k2, n) = (rhs.dims()[0], rhs.dims()[1], rhs.dims()[2]);
        assert_eq!(b, b2, "bmm batch sizes differ");
        assert_eq!(k, k2, "bmm inner dimensions differ");

        // Multiply directly over the batch sub-slices: no per-batch Tensor
        // copies, no intermediate products.
        let mut out = vec![0.0f32; b * m * n];
        for ((a_mat, b_mat), out_mat) in self
            .data()
            .chunks_exact(m * k)
            .zip(rhs.data().chunks_exact(k * n))
            .zip(out.chunks_exact_mut(m * n))
        {
            matmul_slices(a_mat, b_mat, out_mat, m, k, n);
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let src = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = src[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Swaps the last two axes of a rank-3 tensor: `[b, m, n] → [b, n, m]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-3.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 3, "transpose_last2 requires rank-3");
        let (b, m, n) = (self.dims()[0], self.dims()[1], self.dims()[2]);
        let src = self.data();
        let mut out = vec![0.0f32; b * m * n];
        for bi in 0..b {
            let base = bi * m * n;
            for i in 0..m {
                for j in 0..n {
                    out[base + j * m + i] = src[base + i * n + j];
                }
            }
        }
        Tensor::from_vec(out, &[b, n, m])
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert!(
            self.shape().same_as(rhs.shape()),
            "dot shape mismatch: {} vs {}",
            self.shape(),
            rhs.shape()
        );
        self.data()
            .iter()
            .zip(rhs.data().iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&mut rng, &[5, 5], 1.0);
        let i = Tensor::eye(5);
        assert!(a.matmul(&i).allclose(&a, 1e-5));
        assert!(i.matmul(&a).allclose(&a, 1e-5));
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&mut rng, &[17, 33], 1.0);
        let b = Tensor::randn(&mut rng, &[33, 9], 1.0);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 4]);
        assert!(c.allclose(&Tensor::full(&[2, 4], 3.0), 1e-6));
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(&mut rng, &[4, 7], 1.0);
        assert!(a.transpose().transpose().allclose(&a, 0.0));
    }

    #[test]
    fn bmm_equals_per_batch_matmul() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn(&mut rng, &[3, 4, 5], 1.0);
        let b = Tensor::randn(&mut rng, &[3, 5, 2], 1.0);
        let c = a.bmm(&b);
        for bi in 0..3 {
            let am = Tensor::from_vec(a.data()[bi * 20..(bi + 1) * 20].to_vec(), &[4, 5]);
            let bm = Tensor::from_vec(b.data()[bi * 10..(bi + 1) * 10].to_vec(), &[5, 2]);
            let cm = am.matmul(&bm);
            let got = Tensor::from_vec(c.data()[bi * 8..(bi + 1) * 8].to_vec(), &[4, 2]);
            assert!(got.allclose(&cm, 1e-5));
        }
    }

    #[test]
    fn transpose_last2_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&mut rng, &[2, 3, 4], 1.0);
        assert!(a.transpose_last2().transpose_last2().allclose(&a, 0.0));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
