//! The core dense tensor type.

use std::fmt;

use rand::distributions::Distribution;
use rand::Rng;

use crate::shape::Shape;

/// A dense, contiguous, row-major `f32` tensor.
///
/// All operations allocate their result; in-place variants carry the `_mut`
/// suffix. The type is deliberately simple — no views, no reference counting —
/// because the workloads in this workspace (small-model training, LUT
/// construction) are dominated by matmul time, not allocation.
///
/// # Example
///
/// ```
/// use lutdla_tensor::Tensor;
///
/// let x = Tensor::ones(&[2, 3]);
/// let y = x.scale(2.0).add(&x);
/// assert!(y.data().iter().all(|&v| (v - 3.0).abs() < 1e-6));
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Self { data, shape }
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-1 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(vec![value], &[1])
    }

    /// Standard-normal initialisation scaled by `std`.
    pub fn randn<R: Rng>(rng: &mut R, dims: &[usize], std: f32) -> Self {
        let shape = Shape::new(dims);
        let normal = StandardNormal;
        let data = (0..shape.numel())
            .map(|_| normal.sample(rng) * std)
            .collect();
        Self { data, shape }
    }

    /// Uniform initialisation on `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Self { data, shape }
    }

    /// Kaiming-style fan-in initialisation used by the conv/linear layers.
    pub fn kaiming<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::randn(rng, dims, std)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} into {shape}",
            self.shape
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// Row `i` of a rank-2 tensor, as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let n = self.shape.dim(1);
        &self.data[i * n..(i + 1) * n]
    }

    /// Extracts rows `[start, end)` of a rank-2 tensor into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the range is out of bounds.
    pub fn rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "rows() requires a rank-2 tensor");
        assert!(start < end && end <= self.shape.dim(0), "row range invalid");
        let n = self.shape.dim(1);
        Tensor::from_vec(self.data[start * n..end * n].to_vec(), &[end - start, n])
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum. Shapes must match.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference. Shapes must match.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. Shapes must match.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Elementwise quotient. Shapes must match.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a / b)
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Adds `k` to every element.
    pub fn add_scalar(&self, k: f32) -> Tensor {
        self.map(|v| v + k)
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            self.shape.same_as(&rhs.shape),
            "shape mismatch: {} vs {}",
            self.shape,
            rhs.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_mut(&mut self, rhs: &Tensor) {
        assert!(
            self.shape.same_as(&rhs.shape),
            "shape mismatch: {} vs {}",
            self.shape,
            rhs.shape
        );
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += k * rhs` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy_mut(&mut self, k: f32, rhs: &Tensor) {
        assert!(
            self.shape.same_as(&rhs.shape),
            "shape mismatch: {} vs {}",
            self.shape,
            rhs.shape
        );
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += k * b;
        }
    }

    /// In-place scaling.
    pub fn scale_mut(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill_mut(&mut self, value: f32) {
        self.data.fill(value);
    }

    // ------------------------------------------------------------------
    // Reductions & statistics (whole-tensor)
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` only for the impossible
    /// empty case (shapes are non-empty by construction).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Whether all elements are within `atol` of `other`'s.
    pub fn allclose(&self, other: &Tensor, atol: f32) -> bool {
        self.shape.same_as(&other.shape)
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= atol)
    }

    /// Relative Frobenius error `‖self − other‖ / ‖other‖`.
    ///
    /// Used throughout the workspace to quantify the approximation error of
    /// LUT-based matrix multiplication against the exact product.
    pub fn rel_error(&self, other: &Tensor) -> f32 {
        let denom = other.norm().max(1e-12);
        self.sub(other).norm() / denom
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor(shape={}, data=[", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

/// Box–Muller standard normal sampler (avoids a rand_distr dependency).
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller transform on two uniforms; u1 is kept away from zero so
        // ln(u1) stays finite.
        let u1: f32 = rng.gen_range(1e-7f32..1.0);
        let u2: f32 = rng.gen::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.numel(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 0.0);
    }

    #[test]
    fn elementwise_ops_match_reference() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[2]);
        let b = Tensor::ones(&[2]);
        a.axpy_mut(0.5, &b);
        a.axpy_mut(0.5, &b);
        assert!(a.allclose(&Tensor::ones(&[2]), 1e-6));
    }

    #[test]
    fn randn_mean_roughly_zero() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05, "mean = {}", t.mean());
        let var = t.norm_sq() / t.numel() as f32;
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn argmax_first_occurrence() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 2.0], &[4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let t = Tensor::ones(&[4]);
        assert!(t.rel_error(&t) < 1e-7);
    }

    #[test]
    fn rows_slice() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]);
        let r = t.rows(1, 3);
        assert_eq!(r.dims(), &[2, 2]);
        assert_eq!(r.data(), &[2.0, 3.0, 4.0, 5.0]);
    }
}
