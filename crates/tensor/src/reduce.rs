//! Axis reductions.

use crate::Tensor;

impl Tensor {
    /// Sums over the last axis: `[.., d] → [..]` (rank reduced by one, or
    /// `[1]` for rank-1 input).
    pub fn sum_last_axis(&self) -> Tensor {
        let dims = self.dims();
        let d = *dims.last().expect("non-empty shape");
        let outer: usize = dims[..dims.len() - 1].iter().product::<usize>().max(1);
        let mut out = vec![0.0f32; outer];
        for (i, chunk) in self.data().chunks_exact(d).enumerate() {
            out[i] = chunk.iter().sum();
        }
        let out_dims: Vec<usize> = if dims.len() == 1 {
            vec![1]
        } else {
            dims[..dims.len() - 1].to_vec()
        };
        Tensor::from_vec(out, &out_dims)
    }

    /// Means over the last axis.
    pub fn mean_last_axis(&self) -> Tensor {
        let d = *self.dims().last().expect("non-empty shape") as f32;
        self.sum_last_axis().scale(1.0 / d)
    }

    /// Maximum over the last axis.
    pub fn max_last_axis(&self) -> Tensor {
        let dims = self.dims();
        let d = *dims.last().expect("non-empty shape");
        let outer: usize = dims[..dims.len() - 1].iter().product::<usize>().max(1);
        let mut out = vec![f32::NEG_INFINITY; outer];
        for (i, chunk) in self.data().chunks_exact(d).enumerate() {
            out[i] = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        }
        let out_dims: Vec<usize> = if dims.len() == 1 {
            vec![1]
        } else {
            dims[..dims.len() - 1].to_vec()
        };
        Tensor::from_vec(out, &out_dims)
    }

    /// Argmax over the last axis, returned as indices.
    pub fn argmax_last_axis(&self) -> Vec<usize> {
        let d = *self.dims().last().expect("non-empty shape");
        self.data()
            .chunks_exact(d)
            .map(|chunk| {
                let mut best = 0;
                for (j, &v) in chunk.iter().enumerate() {
                    if v > chunk[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Column sums of a rank-2 tensor: `[m, n] → [n]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape().rank(), 2, "sum_rows requires rank-2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_last_axis_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let s = t.sum_last_axis();
        assert_eq!(s.dims(), &[2]);
        assert_eq!(s.data(), &[6.0, 15.0]);
    }

    #[test]
    fn sum_last_axis_vector_gives_scalar() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.sum_last_axis().data(), &[3.0]);
    }

    #[test]
    fn mean_last_axis() {
        let t = Tensor::from_vec(vec![2.0, 4.0], &[1, 2]);
        assert_eq!(t.mean_last_axis().data(), &[3.0]);
    }

    #[test]
    fn max_and_argmax_last_axis() {
        let t = Tensor::from_vec(vec![1.0, 9.0, 3.0, 7.0, 2.0, 5.0], &[2, 3]);
        assert_eq!(t.max_last_axis().data(), &[9.0, 7.0]);
        assert_eq!(t.argmax_last_axis(), vec![1, 0]);
    }

    #[test]
    fn sum_rows_columns() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum_rows().data(), &[4.0, 6.0]);
    }
}
