//! Shape bookkeeping for row-major tensors.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that provides the index
/// arithmetic (strides, linear offsets) every tensor operation needs.
///
/// # Example
///
/// ```
/// use lutdla_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are never
    /// meaningful in this workspace and rejecting them early catches shape
    /// bugs at their source.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// A scalar shape (`[1]`).
    pub fn scalar() -> Self {
        Self { dims: vec![1] }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let strides = self.strides();
        index
            .iter()
            .zip(self.dims.iter())
            .zip(strides.iter())
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for dimension of size {d}");
                i * s
            })
            .sum()
    }

    /// Whether two shapes are elementwise-compatible (identical dims).
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_walks_last_axis_fastest() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn rejects_zero_dim() {
        let _ = Shape::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_index() {
        let s = Shape::new(&[2, 2]);
        let _ = s.offset(&[2, 0]);
    }

    #[test]
    fn scalar_is_single_element() {
        assert_eq!(Shape::scalar().numel(), 1);
    }
}
