//! Dense `f32` tensor primitives for the LUT-DLA framework.
//!
//! This crate provides the minimal numerical substrate the rest of the
//! workspace builds on: a contiguous row-major [`Tensor`], shape bookkeeping,
//! BLAS-free (but blocked) matrix multiplication, the `im2col`/`col2im`
//! transforms used to lower convolutions onto GEMM, and axis reductions.
//!
//! The design goal is *predictability over peak speed*: every operation is
//! plain safe Rust over a `Vec<f32>`, so the numerical behaviour that the
//! LUTBoost training experiments depend on is easy to audit.
//!
//! # Example
//!
//! ```
//! use lutdla_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

mod conv;
mod linalg;
mod reduce;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry};
pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by [`Tensor::allclose`] and the test-suites of the
/// downstream crates.
pub const DEFAULT_ATOL: f32 = 1e-5;
