//! `im2col`/`col2im` lowering of 2-D convolution onto GEMM.
//!
//! LUT-DLA accelerates GEMM; convolutions reach the accelerator through the
//! same `im2col` transform implemented here (the paper assumes im2col when it
//! says "as input matrix shape increases (commonly after im2col)"). The
//! training stack reuses the same functions so a `Conv2d` layer is exactly an
//! `im2col` followed by a matrix multiplication.

use crate::Tensor;

/// Static geometry of a 2-D convolution: shapes in, shapes out, and the
/// GEMM dimensions it lowers to.
///
/// # Example
///
/// ```
/// use lutdla_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 16, (32, 32), (3, 3), 1, 1);
/// assert_eq!(g.out_hw(), (32, 32));
/// assert_eq!(g.gemm_k(), 27);          // 3 × 3 × 3
/// assert_eq!(g.gemm_m(1), 32 * 32);    // one output row per output pixel
/// assert_eq!(g.gemm_n(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Input spatial size (height, width).
    pub in_hw: (usize, usize),
    /// Kernel size (height, width).
    pub kernel: (usize, usize),
    /// Stride (same for both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the stride is zero or the kernel does not fit in the padded
    /// input.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_hw: (usize, usize),
        kernel: (usize, usize),
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        let g = Self {
            in_channels,
            out_channels,
            in_hw,
            kernel,
            stride,
            padding,
        };
        let (oh, ow) = g.out_hw();
        assert!(oh > 0 && ow > 0, "kernel does not fit in padded input");
        g
    }

    /// Output spatial size (height, width).
    pub fn out_hw(&self) -> (usize, usize) {
        let oh = (self.in_hw.0 + 2 * self.padding).saturating_sub(self.kernel.0) / self.stride + 1;
        let ow = (self.in_hw.1 + 2 * self.padding).saturating_sub(self.kernel.1) / self.stride + 1;
        (oh, ow)
    }

    /// GEMM `M` dimension for a given batch size: one row per output pixel.
    pub fn gemm_m(&self, batch: usize) -> usize {
        let (oh, ow) = self.out_hw();
        batch * oh * ow
    }

    /// GEMM `K` dimension: `cin × kh × kw`.
    pub fn gemm_k(&self) -> usize {
        self.in_channels * self.kernel.0 * self.kernel.1
    }

    /// GEMM `N` dimension: output channels.
    pub fn gemm_n(&self) -> usize {
        self.out_channels
    }

    /// Multiply–accumulate count for one batch element.
    pub fn macs(&self) -> u64 {
        self.gemm_m(1) as u64 * self.gemm_k() as u64 * self.gemm_n() as u64
    }
}

/// Unfolds an NCHW input into the `[batch·oh·ow, cin·kh·kw]` patch matrix.
///
/// The column ordering is `(c, kh, kw)` fastest-last, which matches the
/// row ordering of a reshaped `[cout, cin·kh·kw]` weight matrix.
///
/// # Panics
///
/// Panics if `input` is not rank-4 or its channel/spatial dims disagree with
/// `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "im2col expects NCHW input");
    let dims = input.dims();
    let (batch, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, geom.in_channels, "channel mismatch");
    assert_eq!((h, w), geom.in_hw, "spatial size mismatch");

    let (kh, kw) = geom.kernel;
    let (oh, ow) = geom.out_hw();
    let k = geom.gemm_k();
    let m = batch * oh * ow;
    let pad = geom.padding as isize;
    let stride = geom.stride;

    let src = input.data();
    let mut out = vec![0.0f32; m * k];
    let mut row = 0usize;
    for b in 0..batch {
        for oy in 0..oh {
            for ox in 0..ow {
                let out_row = &mut out[row * k..(row + 1) * k];
                let mut col = 0usize;
                for ci in 0..c {
                    let plane = &src[(b * c + ci) * h * w..(b * c + ci + 1) * h * w];
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad;
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad;
                            out_row[col] =
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    plane[iy as usize * w + ix as usize]
                                } else {
                                    0.0
                                };
                            col += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(out, &[m, k])
}

/// Adjoint of [`im2col`]: folds a `[batch·oh·ow, cin·kh·kw]` gradient back
/// into an NCHW gradient, summing overlapping patches.
///
/// # Panics
///
/// Panics if `cols` has the wrong shape for `geom` and `batch`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry, batch: usize) -> Tensor {
    let (kh, kw) = geom.kernel;
    let (oh, ow) = geom.out_hw();
    let (h, w) = geom.in_hw;
    let c = geom.in_channels;
    let k = geom.gemm_k();
    let m = batch * oh * ow;
    assert_eq!(cols.dims(), &[m, k], "col matrix shape mismatch");

    let pad = geom.padding as isize;
    let stride = geom.stride;
    let src = cols.data();
    let mut out = vec![0.0f32; batch * c * h * w];
    let mut row = 0usize;
    for b in 0..batch {
        for oy in 0..oh {
            for ox in 0..ow {
                let in_row = &src[row * k..(row + 1) * k];
                let mut col = 0usize;
                for ci in 0..c {
                    let base = (b * c + ci) * h * w;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad;
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                out[base + iy as usize * w + ix as usize] += in_row[col];
                            }
                            col += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(out, &[batch, c, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(16, 32, (8, 8), (3, 3), 1, 1);
        assert_eq!(g.out_hw(), (8, 8));
        assert_eq!(g.gemm_k(), 16 * 9);
        assert_eq!(g.gemm_n(), 32);
    }

    #[test]
    fn geometry_stride_two() {
        let g = Conv2dGeometry::new(3, 8, (32, 32), (3, 3), 2, 1);
        assert_eq!(g.out_hw(), (16, 16));
    }

    #[test]
    fn im2col_1x1_kernel_is_reshape() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(&mut rng, &[1, 2, 3, 3], 1.0);
        let g = Conv2dGeometry::new(2, 4, (3, 3), (1, 1), 1, 0);
        let cols = im2col(&x, &g);
        assert_eq!(cols.dims(), &[9, 2]);
        // Column c of row (y*w+x) must equal input[c, y, x].
        for y in 0..3 {
            for xx in 0..3 {
                for c in 0..2 {
                    assert_eq!(cols.at(&[y * 3 + xx, c]), x.at(&[0, c, y, xx]));
                }
            }
        }
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Direct convolution reference vs im2col+GEMM on a small case.
        let mut rng = StdRng::seed_from_u64(8);
        let g = Conv2dGeometry::new(2, 3, (5, 5), (3, 3), 1, 1);
        let x = Tensor::randn(&mut rng, &[2, 2, 5, 5], 1.0);
        let wt = Tensor::randn(&mut rng, &[3, 2 * 3 * 3], 1.0);

        let cols = im2col(&x, &g);
        let gemm = cols.matmul(&wt.transpose()); // [2*25, 3]

        // direct conv
        let (oh, ow) = g.out_hw();
        for b in 0..2 {
            for co in 0..3 {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..2 {
                            for ky in 0..3 {
                                for kx in 0..3 {
                                    let iy = oy as isize + ky as isize - 1;
                                    let ix = ox as isize + kx as isize - 1;
                                    if (0..5).contains(&iy) && (0..5).contains(&ix) {
                                        acc += x.at(&[b, ci, iy as usize, ix as usize])
                                            * wt.at(&[co, ci * 9 + ky * 3 + kx]);
                                    }
                                }
                            }
                        }
                        let row = b * oh * ow + oy * ow + ox;
                        assert!(
                            (gemm.at(&[row, co]) - acc).abs() < 1e-4,
                            "mismatch at b={b} co={co} oy={oy} ox={ox}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // which is exactly what correct conv backprop requires.
        let mut rng = StdRng::seed_from_u64(9);
        let g = Conv2dGeometry::new(2, 3, (4, 4), (3, 3), 1, 1);
        let x = Tensor::randn(&mut rng, &[1, 2, 4, 4], 1.0);
        let cols = im2col(&x, &g);
        let y = Tensor::randn(&mut rng, cols.dims(), 1.0);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, &g, 1);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }
}
