//! Property-based tests of the tensor primitives.

use lutdla_tensor::{col2im, im2col, Conv2dGeometry, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensor(seed: u64, dims: &[usize]) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&mut rng, dims, -2.0, 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C) within f32 tolerance.
    #[test]
    fn matmul_associative(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, p in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = tensor(seed, &[m, k]);
        let b = tensor(seed + 1, &[k, n]);
        let c = tensor(seed + 2, &[n, p]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.allclose(&right, 1e-2 * (k * n) as f32));
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributive(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = tensor(seed, &[m, k]);
        let b = tensor(seed + 1, &[k, n]);
        let c = tensor(seed + 2, &[k, n]);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.allclose(&right, 1e-3 * k as f32));
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = tensor(seed, &[m, k]);
        let b = tensor(seed + 1, &[k, n]);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.allclose(&right, 1e-3 * k as f32));
    }

    /// Reshape round-trips preserve data.
    #[test]
    fn reshape_round_trip(
        a in 1usize..8, b in 1usize..8, c in 1usize..8,
        seed in 0u64..1000,
    ) {
        let t = tensor(seed, &[a, b, c]);
        let r = t.reshape(&[a * b * c]).reshape(&[c, b, a]).reshape(&[a, b, c]);
        prop_assert!(r.allclose(&t, 0.0));
    }

    /// The im2col/col2im pair is adjoint: ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩.
    #[test]
    fn im2col_col2im_adjoint(
        cin in 1usize..4,
        hw in 3usize..8,
        k in 1usize..4,
        pad in 0usize..2,
        batch in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let geom = Conv2dGeometry::new(cin, 3, (hw, hw), (k, k), 1, pad);
        let x = tensor(seed, &[batch, cin, hw, hw]);
        let cols = im2col(&x, &geom);
        let y = tensor(seed + 9, cols.dims());
        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let folded = col2im(&y, &geom, batch);
        let rhs: f64 = x.data().iter().zip(folded.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Reductions agree with naive recomputation.
    #[test]
    fn reductions_consistent(rows in 1usize..10, cols in 1usize..10, seed in 0u64..1000) {
        let t = tensor(seed, &[rows, cols]);
        let sums = t.sum_last_axis();
        let maxes = t.max_last_axis();
        for r in 0..rows {
            let row = t.row(r);
            let s: f32 = row.iter().sum();
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!((sums.data()[r] - s).abs() < 1e-4);
            prop_assert_eq!(maxes.data()[r], m);
        }
        prop_assert!((t.sum() - t.data().iter().sum::<f32>()).abs() < 1e-3);
    }

    /// Norm is absolutely homogeneous: ‖kx‖ == |k|·‖x‖.
    #[test]
    fn norm_homogeneous(n in 1usize..64, k in -4.0f32..4.0, seed in 0u64..1000) {
        let t = tensor(seed, &[n]);
        let scaled = t.scale(k);
        prop_assert!((scaled.norm() - k.abs() * t.norm()).abs() < 1e-2 * (1.0 + t.norm()));
    }
}
