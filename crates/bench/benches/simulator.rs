//! Criterion microbenchmarks of the cycle engine and the analytical models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lutdla_dse::{search, Constraints, SearchSpace, SurrogateAccuracy};
use lutdla_hwmodel::{design_cost, LutDlaHwConfig};
use lutdla_sim::{analytic_cycles, simulate_gemm, Gemm, SimConfig};

fn bench_cycle_engine(c: &mut Criterion) {
    let cfg = SimConfig::baseline();
    let mut g = c.benchmark_group("cycle_engine");
    for (name, gemm) in [
        ("gemm_128", Gemm::new(128, 128, 128)),
        ("gemm_bert_proj", Gemm::new(512, 768, 768)),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(simulate_gemm(&cfg, &gemm))));
    }
    g.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let cfg = SimConfig::baseline();
    let gemm = Gemm::new(512, 768, 768);
    c.bench_function("analytic_eq5", |b| {
        b.iter(|| black_box(analytic_cycles(&cfg, &gemm)))
    });
}

fn bench_design_cost(c: &mut Criterion) {
    let cfg = LutDlaHwConfig::baseline();
    c.bench_function("design_cost_eq3_eq4", |b| {
        b.iter(|| black_box(design_cost(&cfg)))
    });
}

fn bench_dse_search(c: &mut Criterion) {
    let space = SearchSpace::figure11();
    let target = Gemm::new(512, 768, 768);
    let oracle = SurrogateAccuracy::resnet20_cifar10();
    c.bench_function("dse_full_search", |b| {
        b.iter(|| black_box(search(&space, &target, &Constraints::relaxed(), &oracle)))
    });
}

criterion_group!(
    benches,
    bench_cycle_engine,
    bench_analytic,
    bench_design_cost,
    bench_dse_search
);
criterion_main!(benches);
