//! Criterion microbenchmarks of the algorithmic kernels: distance
//! evaluation, k-means, LUT construction, and AMM vs exact GEMM.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lutdla_tensor::Tensor;
use lutdla_vq::{
    approx_matmul, kmeans, Distance, KmeansConfig, LutQuant, LutTable, ProductQuantizer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_distance(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::rand_uniform(&mut rng, &[64], -1.0, 1.0);
    let cents = Tensor::rand_uniform(&mut rng, &[32 * 64], -1.0, 1.0);
    let mut g = c.benchmark_group("distance_argmin_v64_c32");
    for d in Distance::ALL {
        g.bench_function(d.to_string(), |b| {
            b.iter(|| black_box(d.argmin(a.data(), cents.data())))
        });
    }
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let data = Tensor::rand_uniform(&mut rng, &[1024 * 4], -1.0, 1.0);
    c.bench_function("kmeans_1024x4_c16", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            black_box(kmeans(
                data.data(),
                4,
                &KmeansConfig {
                    k: 16,
                    max_iters: 10,
                    ..Default::default()
                },
                &mut r,
            ))
        })
    });
}

fn bench_amm_vs_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a = Tensor::rand_uniform(&mut rng, &[256, 256], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[256, 256], -1.0, 1.0);
    let pq = ProductQuantizer::fit(&a, 4, 16, Distance::L2, &mut rng);
    let lut = LutTable::build(&pq, &b, LutQuant::F32);
    let mut g = c.benchmark_group("matmul_256");
    g.bench_function("exact_gemm", |bch| bch.iter(|| black_box(a.matmul(&b))));
    g.bench_function("lut_amm", |bch| {
        bch.iter(|| black_box(approx_matmul(&a, &pq, &lut)))
    });
    g.finish();
}

fn bench_lut_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::rand_uniform(&mut rng, &[256, 128], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[128, 128], -1.0, 1.0);
    let pq = ProductQuantizer::fit(&a, 4, 32, Distance::L2, &mut rng);
    c.bench_function("lut_build_128x128_c32", |bch| {
        bch.iter(|| black_box(LutTable::build(&pq, &b, LutQuant::Int8)))
    });
}

criterion_group!(
    benches,
    bench_distance,
    bench_kmeans,
    bench_amm_vs_gemm,
    bench_lut_build
);
criterion_main!(benches);
