//! Criterion benchmark of the LUT-GEMM deploy path: the scalar
//! encode→lookup→accumulate reference versus the batched [`LutEngine`], at
//! the ISSUE 2 acceptance point `M=256, K=1024, N=1024, v=4, c=16`
//! (single-thread and multi-worker) plus a smaller sanity point. The
//! `bench_lutgemm` binary produces the machine-readable counterpart
//! (`BENCH_lutgemm.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lutdla_tensor::Tensor;
use lutdla_vq::{
    approx_matmul_with_precision, Distance, EngineOptions, FloatPrecision, LutEngine, LutQuant,
    LutTable, ProductQuantizer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_point(cr: &mut Criterion, m: usize, k: usize, n: usize, v: usize, c: usize) {
    let mut rng = StdRng::seed_from_u64(0x11a + (m + k + n) as u64);
    let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
    let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
    let lut = LutTable::build(&pq, &b, LutQuant::F32);

    let mut g = cr.benchmark_group(format!("lutgemm_m{m}_k{k}_n{n}_v{v}_c{c}"));
    g.bench_function("scalar", |bch| {
        bch.iter(|| {
            black_box(approx_matmul_with_precision(
                &a,
                &pq,
                &lut,
                FloatPrecision::Fp32,
            ))
        })
    });
    let mut engine1 = LutEngine::with_opts(
        pq.clone(),
        &lut,
        EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        },
    );
    g.bench_function("engine_1t", |bch| {
        bch.iter(|| black_box(engine1.run_batch(&a)))
    });
    let mut engine4 = LutEngine::with_opts(
        pq.clone(),
        &lut,
        EngineOptions {
            workers: 4,
            ..EngineOptions::default()
        },
    );
    g.bench_function("engine_4t", |bch| {
        bch.iter(|| black_box(engine4.run_batch(&a)))
    });
    g.finish();
}

fn bench_acceptance_point(cr: &mut Criterion) {
    bench_point(cr, 256, 1024, 1024, 4, 16);
}

fn bench_small_point(cr: &mut Criterion) {
    bench_point(cr, 128, 256, 256, 4, 16);
}

criterion_group!(benches, bench_acceptance_point, bench_small_point);
criterion_main!(benches);
