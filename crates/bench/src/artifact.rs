//! Schema validation for the benchmark artifacts — the `--check` gates CI
//! runs right after each smoke bench, so a refactor that silently drops a
//! field, zeroes a throughput number, or breaks an emitter's hand-rolled
//! JSON fails the PR instead of quietly rotting the artifact record.
//!
//! [`check_artifact_text`] validates `BENCH_lutgemm.json`;
//! [`check_serve_artifact_text`] validates `BENCH_serve.json`, including
//! the sanity ordering the serving harness must reproduce (percentiles
//! monotone, overload p99 strictly above p50, adaptive low-load SLO
//! conformance ≥ 0.5). Every problem names the offending field by path
//! (e.g. `scenarios[3].p99_ms`) so a red CI job is actionable without
//! rerunning anything. Tests at the bottom also validate the artifacts
//! committed at the repo root, so a schema change can't land while the
//! checked-in files are stale.

use crate::json::Json;

/// Fields every entry of `"points"` must carry.
const POINT_FIELDS: &[&str] = &[
    "m",
    "k",
    "n",
    "v",
    "c",
    "scalar_rows_per_s",
    "engine_1t_rows_per_s",
    "engine_mt_rows_per_s",
    "serve_rows_per_s",
    "speedup_1t",
    "speedup_mt",
    "serve_vs_batch",
];

/// Fields the whole-model `"model_serve"` block must carry.
const MODEL_SERVE_FIELDS: &[&str] = &[
    "model",
    "images",
    "lut_stages",
    "dense_stages",
    "serve_rows_per_s",
];

/// Fields the whole-model `"adaptive_serve"` block must carry.
const ADAPTIVE_SERVE_FIELDS: &[&str] = &[
    "model",
    "images",
    "submitters",
    "lut_stages",
    "dense_stages",
    "serve_rows_per_s",
    "max_stage_window",
];

/// Fields the `"encode_once"` block must carry.
const ENCODE_ONCE_FIELDS: &[&str] = &[
    "m",
    "k",
    "n",
    "v",
    "c",
    "code_width_bits",
    "u16_rows_per_s",
    "packed_rows_per_s",
    "packed_speedup",
    "tables",
    "repeated_rows_per_s",
    "many_table_rows_per_s",
    "many_table_speedup",
    "memo_rows",
    "memo_cold_rows_per_s",
    "memo_warm_rows_per_s",
    "memo_warm_speedup",
];

/// Top-level fields of the artifact.
const TOP_FIELDS: &[&str] = &[
    "bench",
    "mode",
    "mt_workers",
    "serve_submitters",
    "host_cpus",
    "points",
    "encode_once",
    "model_serve",
    "adaptive_serve",
];

/// Validates the text of a `BENCH_lutgemm.json` artifact. Returns every
/// problem found (one per line) so a broken emitter is diagnosed in one
/// run, not one field at a time.
pub fn check_artifact_text(text: &str) -> Result<(), String> {
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(e.to_string()),
    };
    let mut problems = Vec::new();
    if doc.as_obj().is_none() {
        return Err("top level is not a JSON object".to_string());
    }
    for &field in TOP_FIELDS {
        if doc.get(field).is_none() {
            problems.push(format!("missing top-level field \"{field}\""));
        }
    }
    if let Some(bench) = doc.get("bench") {
        if bench.as_str() != Some("lutgemm") {
            problems.push(format!("\"bench\" is {bench:?}, expected \"lutgemm\""));
        }
    }
    match doc.get("points").and_then(Json::as_arr) {
        Some([]) => problems.push("\"points\" is empty".to_string()),
        Some(points) => {
            for (i, point) in points.iter().enumerate() {
                require_fields(point, POINT_FIELDS, &format!("points[{i}]"), &mut problems);
            }
        }
        None => {
            if doc.get("points").is_some() {
                problems.push("\"points\" is not an array".to_string());
            }
        }
    }
    for (block, fields) in [
        ("model_serve", MODEL_SERVE_FIELDS),
        ("adaptive_serve", ADAPTIVE_SERVE_FIELDS),
    ] {
        if let Some(value) = doc.get(block) {
            require_fields(value, fields, block, &mut problems);
        }
    }
    if let Some(block) = doc.get("encode_once") {
        let full = doc.get("mode").and_then(Json::as_str) == Some("full");
        check_encode_once(block, full, &mut problems);
    }
    // Throughput gate: a *_rows_per_s of zero (or worse) anywhere means a
    // measurement loop broke, whatever the schema says.
    check_rows_per_s(&doc, "$", &mut problems);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// Top-level fields of `BENCH_serve.json`.
const SERVE_TOP_FIELDS: &[&str] = &[
    "bench",
    "mode",
    "arrival",
    "seed",
    "requests_per_scenario",
    "host_cpus",
    "scenarios",
    "gateway_scenarios",
    "decode_scenarios",
];

/// Fields every entry of `"scenarios"` must carry.
const SCENARIO_FIELDS: &[&str] = &[
    "name",
    "model",
    "policy",
    "load",
    "arrival",
    "requests",
    "offered_rps",
    "achieved_rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "mean_ms",
    "slo_ms",
    "slo_conformance",
    "stages",
];

/// Fields every entry of a scenario's `"stages"` must carry.
const STAGE_FIELDS: &[&str] = &[
    "stage",
    "batches_run",
    "rows_served",
    "queued_high_water",
    "final_window",
    "mean_service_us",
];

/// Fields every entry of `"gateway_scenarios"` must carry.
const GATEWAY_SCENARIO_FIELDS: &[&str] = &[
    "name",
    "load",
    "arrival",
    "models",
    "tenants",
    "requests",
    "admitted",
    "shed",
    "shed_ratio",
    "batches_run",
    "rows_served",
    "engine_cache_hits",
    "engine_cache_misses",
    "engine_cache_evictions",
    "memo_hits",
    "memo_misses",
    "memo_evictions",
    "slo_ms",
    "classes",
    "stages",
];

/// Fields every entry of a gateway scenario's `"classes"` must carry.
const GATEWAY_CLASS_FIELDS: &[&str] =
    &["class", "requests", "admitted", "shed", "p50_ms", "p99_ms"];

/// Fields every entry of `"decode_scenarios"` must carry.
const DECODE_SCENARIO_FIELDS: &[&str] = &[
    "name",
    "model",
    "load",
    "arrival",
    "streams",
    "seq_len",
    "steps",
    "offered_sps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "mean_ms",
    "steps_per_s",
    "full_reeval_steps_per_s",
    "prefix_speedup",
    "reused_rows",
    "walked_rows",
];

/// Decode-scenario fields that must be finite and strictly positive.
const DECODE_POSITIVE_FIELDS: &[&str] = &[
    "streams",
    "seq_len",
    "steps",
    "offered_sps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "mean_ms",
    "steps_per_s",
    "full_reeval_steps_per_s",
    "prefix_speedup",
];

/// Scenario fields that must be finite and strictly positive.
const SCENARIO_POSITIVE_FIELDS: &[&str] = &[
    "requests",
    "offered_rps",
    "achieved_rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "max_ms",
    "mean_ms",
    "slo_ms",
];

/// Validates the text of a `BENCH_serve.json` artifact: schema plus the
/// sanity constraints the open-loop harness must reproduce. Returns every
/// problem found, one per line, each naming the failing field by path;
/// any scenario that produced problems is also echoed back as a compact
/// JSON snippet, so a red CI log shows the offending numbers inline.
pub fn check_serve_artifact_text(text: &str) -> Result<(), String> {
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(e.to_string()),
    };
    let mut problems = Vec::new();
    if doc.as_obj().is_none() {
        return Err("top level is not a JSON object".to_string());
    }
    for &field in SERVE_TOP_FIELDS {
        if doc.get(field).is_none() {
            problems.push(format!("missing top-level field \"{field}\""));
        }
    }
    if let Some(bench) = doc.get("bench") {
        if bench.as_str() != Some("serve") {
            problems.push(format!("\"bench\" is {bench:?}, expected \"serve\""));
        }
    }
    match doc.get("scenarios").and_then(Json::as_arr) {
        Some([]) => problems.push("\"scenarios\" is empty".to_string()),
        Some(scenarios) => {
            for (i, sc) in scenarios.iter().enumerate() {
                let at = format!("scenarios[{i}]");
                let before = problems.len();
                check_scenario(sc, &at, &mut problems);
                push_snippet_if_failed(sc, &at, before, &mut problems);
            }
        }
        None => {
            if doc.get("scenarios").is_some() {
                problems.push("\"scenarios\" is not an array".to_string());
            }
        }
    }
    match doc.get("gateway_scenarios").and_then(Json::as_arr) {
        Some([]) => problems.push("\"gateway_scenarios\" is empty".to_string()),
        Some(scenarios) => {
            for (i, sc) in scenarios.iter().enumerate() {
                let at = format!("gateway_scenarios[{i}]");
                let before = problems.len();
                check_gateway_scenario(sc, &at, &mut problems);
                push_snippet_if_failed(sc, &at, before, &mut problems);
            }
        }
        None => {
            if doc.get("gateway_scenarios").is_some() {
                problems.push("\"gateway_scenarios\" is not an array".to_string());
            }
        }
    }
    let full = doc.get("mode").and_then(Json::as_str) == Some("full");
    match doc.get("decode_scenarios").and_then(Json::as_arr) {
        Some([]) => problems.push("\"decode_scenarios\" is empty".to_string()),
        Some(scenarios) => {
            for (i, sc) in scenarios.iter().enumerate() {
                let at = format!("decode_scenarios[{i}]");
                let before = problems.len();
                check_decode_scenario(sc, full, &at, &mut problems);
                push_snippet_if_failed(sc, &at, before, &mut problems);
            }
        }
        None => {
            if doc.get("decode_scenarios").is_some() {
                problems.push("\"decode_scenarios\" is not an array".to_string());
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// One scenario: fields, positivity, percentile ordering, conformance
/// range, the overload/adaptive sanity constraints, and stage counters.
fn check_scenario(sc: &Json, at: &str, problems: &mut Vec<String>) {
    require_fields(sc, SCENARIO_FIELDS, at, problems);
    if sc.as_obj().is_none() {
        return;
    }
    let num = |field: &str| sc.get(field).and_then(Json::as_num);
    let s = |field: &str| sc.get(field).and_then(Json::as_str);
    for &field in SCENARIO_POSITIVE_FIELDS {
        if let Some(x) = num(field) {
            if !(x.is_finite() && x > 0.0) {
                problems.push(format!("{at}.{field} = {x} (must be > 0)"));
            }
        }
    }
    // The name is derived, so a mislabeled row is caught here.
    if let (Some(name), Some(model), Some(policy), Some(load)) =
        (s("name"), s("model"), s("policy"), s("load"))
    {
        let expect = format!("{model}_{policy}_{load}");
        if name != expect {
            problems.push(format!("{at}.name = \"{name}\", expected \"{expect}\""));
        }
    }
    if let (Some(p50), Some(p95), Some(p99), Some(max)) =
        (num("p50_ms"), num("p95_ms"), num("p99_ms"), num("max_ms"))
    {
        if p95 < p50 {
            problems.push(format!("{at}.p95_ms = {p95} < p50_ms = {p50}"));
        }
        if p99 < p95 {
            problems.push(format!("{at}.p99_ms = {p99} < p95_ms = {p95}"));
        }
        if max < p99 {
            problems.push(format!("{at}.max_ms = {max} < p99_ms = {p99}"));
        }
        // Under overload the latency ramp must show up: p99 strictly
        // above p50, or the harness never actually queued anything.
        if s("load") == Some("overload") && p99 <= p50 {
            problems.push(format!(
                "{at}.p99_ms = {p99} (must be > p50_ms = {p50} under overload)"
            ));
        }
    }
    if let Some(x) = num("slo_conformance") {
        if !(0.0..=1.0).contains(&x) {
            problems.push(format!("{at}.slo_conformance = {x} (must be in [0, 1])"));
        }
        // The adaptive policy's reason to exist: at a quarter of the
        // service rate it must meet the SLO most of the time.
        if s("policy") == Some("adaptive") && s("load") == Some("low") && x < 0.5 {
            problems.push(format!(
                "{at}.slo_conformance = {x} (adaptive low-load must be >= 0.5)"
            ));
        }
    }
    match sc.get("stages").and_then(Json::as_arr) {
        Some([]) => problems.push(format!("{at}.stages is empty")),
        Some(stages) => {
            for (j, st) in stages.iter().enumerate() {
                let here = format!("{at}.stages[{j}]");
                require_fields(st, STAGE_FIELDS, &here, problems);
                if let Some(b) = st.get("batches_run").and_then(Json::as_num) {
                    if b < 1.0 {
                        problems.push(format!("{here}.batches_run = {b} (must be >= 1)"));
                    }
                }
            }
        }
        None => {
            if sc.get("stages").is_some() {
                problems.push(format!("{at}.stages is not an array"));
            }
        }
    }
}

/// One `gateway_*` scenario: fields, admission accounting (admitted +
/// shed = requests, globally and per class; every admitted request
/// served), `shed_ratio` range and consistency, the SLO-class fairness
/// constraint under overload (admitted latency-class requests must not
/// end up with a worse p99 than best-effort ones), and stage counters.
fn check_gateway_scenario(sc: &Json, at: &str, problems: &mut Vec<String>) {
    require_fields(sc, GATEWAY_SCENARIO_FIELDS, at, problems);
    if sc.as_obj().is_none() {
        return;
    }
    let num = |field: &str| sc.get(field).and_then(Json::as_num);
    let s = |field: &str| sc.get(field).and_then(Json::as_str);
    if let Some(name) = s("name") {
        if !name.starts_with("gateway_") {
            problems.push(format!(
                "{at}.name = \"{name}\" (must start with \"gateway_\")"
            ));
        }
    }
    for field in ["models", "tenants", "requests", "slo_ms"] {
        if let Some(x) = num(field) {
            if !(x.is_finite() && x > 0.0) {
                problems.push(format!("{at}.{field} = {x} (must be > 0)"));
            }
        }
    }
    if let (Some(requests), Some(admitted), Some(shed)) =
        (num("requests"), num("admitted"), num("shed"))
    {
        if admitted + shed != requests {
            problems.push(format!(
                "{at}: admitted ({admitted}) + shed ({shed}) != requests ({requests})"
            ));
        }
        if let Some(ratio) = num("shed_ratio") {
            if !(0.0..=1.0).contains(&ratio) {
                problems.push(format!("{at}.shed_ratio = {ratio} (must be in [0, 1])"));
            } else if requests > 0.0 && (ratio - shed / requests).abs() > 1e-3 {
                problems.push(format!(
                    "{at}.shed_ratio = {ratio} (inconsistent with shed/requests = {})",
                    shed / requests
                ));
            }
        }
        // The no-rows-lost gate: everything admitted past the bounded
        // queues must have been served by the end-of-scenario drain.
        if let Some(rows) = num("rows_served") {
            if rows != admitted {
                problems.push(format!(
                    "{at}.rows_served = {rows} (must equal admitted = {admitted}: \
                     admitted requests may not be lost)"
                ));
            }
        }
    }
    if let Some(b) = num("batches_run") {
        if b < 1.0 {
            problems.push(format!("{at}.batches_run = {b} (must be >= 1)"));
        }
    }
    // The runtime behind the gateway must have exercised its engine
    // cache: registration builds engines (misses) and re-requests of the
    // calibration engines hit. All-zero counters mean the stats plumbing
    // broke.
    if let (Some(hits), Some(misses)) = (num("engine_cache_hits"), num("engine_cache_misses")) {
        if hits + misses <= 0.0 {
            problems.push(format!(
                "{at}: engine_cache_hits + engine_cache_misses = 0 (the runtime \
                 never built nor reused an engine)"
            ));
        }
    }
    // The duplicate-heavy memo scenarios exist to exercise the encode
    // memo: a cold-start interval must record both misses (first
    // encounter of each row) and hits (every repeat).
    if s("name").is_some_and(|n| n.starts_with("gateway_memo")) {
        for field in ["memo_hits", "memo_misses"] {
            if let Some(x) = num(field) {
                if x <= 0.0 {
                    problems.push(format!(
                        "{at}.{field} = {x} (must be > 0 in a memo scenario)"
                    ));
                }
            }
        }
    }
    // Per-class accounting + p99 capture for the fairness constraint.
    let mut latency_p99 = None;
    let mut best_effort_p99 = None;
    match sc.get("classes").and_then(Json::as_arr) {
        Some([]) => problems.push(format!("{at}.classes is empty")),
        Some(classes) => {
            for (j, cl) in classes.iter().enumerate() {
                let here = format!("{at}.classes[{j}]");
                require_fields(cl, GATEWAY_CLASS_FIELDS, &here, problems);
                if cl.as_obj().is_none() {
                    continue;
                }
                let cnum = |field: &str| cl.get(field).and_then(Json::as_num);
                let (req, adm, shed) = (cnum("requests"), cnum("admitted"), cnum("shed"));
                if let (Some(req), Some(adm), Some(shed)) = (req, adm, shed) {
                    if adm + shed != req {
                        problems.push(format!(
                            "{here}: admitted ({adm}) + shed ({shed}) != requests ({req})"
                        ));
                    }
                }
                if adm.is_some_and(|a| a > 0.0) {
                    if let (Some(p50), Some(p99)) = (cnum("p50_ms"), cnum("p99_ms")) {
                        if !(p50.is_finite() && p50 > 0.0) {
                            problems.push(format!(
                                "{here}.p50_ms = {p50} (must be > 0 when requests were admitted)"
                            ));
                        }
                        if p99 < p50 {
                            problems.push(format!("{here}.p99_ms = {p99} < p50_ms = {p50}"));
                        }
                        match cl.get("class").and_then(Json::as_str) {
                            Some("latency") => latency_p99 = Some(p99),
                            Some("best_effort") => best_effort_p99 = Some(p99),
                            _ => {}
                        }
                    }
                }
            }
        }
        None => {
            if sc.get("classes").is_some() {
                problems.push(format!("{at}.classes is not an array"));
            }
        }
    }
    // The reason SLO classes exist: under overload, an admitted
    // latency-class request must not wait behind best-effort traffic.
    if s("load") == Some("overload") {
        if let (Some(lat), Some(be)) = (latency_p99, best_effort_p99) {
            if lat > be {
                problems.push(format!(
                    "{at}: latency p99 ({lat}) > best_effort p99 ({be}) under overload"
                ));
            }
        }
    }
    match sc.get("stages").and_then(Json::as_arr) {
        Some([]) => problems.push(format!("{at}.stages is empty")),
        Some(stages) => {
            for (j, st) in stages.iter().enumerate() {
                let here = format!("{at}.stages[{j}]");
                require_fields(st, STAGE_FIELDS, &here, problems);
                if let Some(b) = st.get("batches_run").and_then(Json::as_num) {
                    if b < 1.0 {
                        problems.push(format!("{here}.batches_run = {b} (must be >= 1)"));
                    }
                }
            }
        }
        None => {
            if sc.get("stages").is_some() {
                problems.push(format!("{at}.stages is not an array"));
            }
        }
    }
}

/// The `"encode_once"` block: schema plus the perf contract. Sharing one
/// encode across tables must beat re-encoding per table in every mode;
/// the stricter gates (packed codes beating the u16 stream, the 2x
/// many-table floor, warm memo beating cold) only hold at real problem
/// sizes, so they apply to full mode alone.
fn check_encode_once(block: &Json, full: bool, problems: &mut Vec<String>) {
    require_fields(block, ENCODE_ONCE_FIELDS, "encode_once", problems);
    if block.as_obj().is_none() {
        return;
    }
    let num = |field: &str| block.get(field).and_then(Json::as_num);
    for field in ["packed_speedup", "many_table_speedup", "memo_warm_speedup"] {
        if let Some(x) = num(field) {
            if !(x.is_finite() && x > 0.0) {
                problems.push(format!("encode_once.{field} = {x} (must be > 0)"));
            }
        }
    }
    if let Some(bits) = num("code_width_bits") {
        if ![4.0, 8.0, 16.0].contains(&bits) {
            problems.push(format!(
                "encode_once.code_width_bits = {bits} (must be 4, 8, or 16)"
            ));
        }
    }
    if let Some(x) = num("many_table_speedup") {
        if x <= 1.0 {
            problems.push(format!(
                "encode_once.many_table_speedup = {x} (must be > 1: encoding once \
                 must beat re-encoding per table)"
            ));
        }
    }
    if !full {
        return;
    }
    if let Some(x) = num("packed_speedup") {
        if x <= 1.0 {
            problems.push(format!(
                "encode_once.packed_speedup = {x} (must be > 1 in full mode)"
            ));
        }
    }
    if let Some(x) = num("many_table_speedup") {
        if x < 2.0 {
            problems.push(format!(
                "encode_once.many_table_speedup = {x} (must be >= 2 in full mode)"
            ));
        }
    }
    if let (Some(many), Some(rep)) = (num("many_table_rows_per_s"), num("repeated_rows_per_s")) {
        if many < rep {
            problems.push(format!(
                "encode_once.many_table_rows_per_s = {many} < repeated_rows_per_s = {rep}"
            ));
        }
    }
    if let (Some(warm), Some(cold)) = (num("memo_warm_rows_per_s"), num("memo_cold_rows_per_s")) {
        if warm <= cold {
            problems.push(format!(
                "encode_once.memo_warm_rows_per_s = {warm} (must beat \
                 memo_cold_rows_per_s = {cold} in full mode)"
            ));
        }
    }
}

/// One `decode_*` scenario: fields, positivity, the step-accounting
/// identity (`steps == streams * seq_len` — every scheduled token was
/// served, none dropped at a stream boundary), percentile ordering and
/// the overload ramp, prefix-reuse counters (reuse must actually happen:
/// `reused_rows` > 0, and something must still be walked), and the
/// headline prefix-reuse speedup — strictly above 1 in full mode, merely
/// positive at smoke sizes where fixed overheads can drown the win.
fn check_decode_scenario(sc: &Json, full: bool, at: &str, problems: &mut Vec<String>) {
    require_fields(sc, DECODE_SCENARIO_FIELDS, at, problems);
    if sc.as_obj().is_none() {
        return;
    }
    let num = |field: &str| sc.get(field).and_then(Json::as_num);
    let s = |field: &str| sc.get(field).and_then(Json::as_str);
    for &field in DECODE_POSITIVE_FIELDS {
        if let Some(x) = num(field) {
            if !(x.is_finite() && x > 0.0) {
                problems.push(format!("{at}.{field} = {x} (must be > 0)"));
            }
        }
    }
    if let (Some(name), Some(load)) = (s("name"), s("load")) {
        let expect = format!("decode_{load}");
        if name != expect {
            problems.push(format!("{at}.name = \"{name}\", expected \"{expect}\""));
        }
    }
    if let (Some(streams), Some(seq_len), Some(steps)) =
        (num("streams"), num("seq_len"), num("steps"))
    {
        if steps != streams * seq_len {
            problems.push(format!(
                "{at}.steps = {steps} (must equal streams * seq_len = {}: \
                 every scheduled token must be served)",
                streams * seq_len
            ));
        }
    }
    if let (Some(p50), Some(p95), Some(p99), Some(max)) =
        (num("p50_ms"), num("p95_ms"), num("p99_ms"), num("max_ms"))
    {
        if p95 < p50 {
            problems.push(format!("{at}.p95_ms = {p95} < p50_ms = {p50}"));
        }
        if p99 < p95 {
            problems.push(format!("{at}.p99_ms = {p99} < p95_ms = {p95}"));
        }
        if max < p99 {
            problems.push(format!("{at}.max_ms = {max} < p99_ms = {p99}"));
        }
        if s("load") == Some("overload") && p99 <= p50 {
            problems.push(format!(
                "{at}.p99_ms = {p99} (must be > p50_ms = {p50} under overload)"
            ));
        }
    }
    for field in ["reused_rows", "walked_rows"] {
        if let Some(x) = num(field) {
            if x <= 0.0 {
                problems.push(format!(
                    "{at}.{field} = {x} (must be > 0: decode must both reuse \
                     prefix codes and walk the new token's rows)"
                ));
            }
        }
    }
    if full {
        if let Some(x) = num("prefix_speedup") {
            if x <= 1.0 {
                problems.push(format!(
                    "{at}.prefix_speedup = {x} (must be > 1 in full mode: \
                     prefix code reuse must beat full re-encoding)"
                ));
            }
        }
    }
}

/// If checking `sc` added problems since `before`, append a compact JSON
/// rendering of the whole scenario so the log carries the numbers that
/// failed, not just their paths.
fn push_snippet_if_failed(sc: &Json, at: &str, before: usize, problems: &mut Vec<String>) {
    if problems.len() > before {
        problems.push(format!("{at} JSON: {}", render(sc)));
    }
}

/// Compact single-line JSON rendering (for failure snippets).
fn render(value: &Json) -> String {
    match value {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x}")
            }
        }
        Json::Str(s) => format!("{s:?}"),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k:?}: {}", render(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

fn require_fields(value: &Json, fields: &[&str], at: &str, problems: &mut Vec<String>) {
    if value.as_obj().is_none() {
        problems.push(format!("{at} is not an object"));
        return;
    }
    for &field in fields {
        if value.get(field).is_none() {
            problems.push(format!("{at} is missing \"{field}\""));
        }
    }
}

/// Walks the whole document: every field named `*_rows_per_s` must be a
/// finite number strictly greater than zero.
fn check_rows_per_s(value: &Json, at: &str, problems: &mut Vec<String>) {
    match value {
        Json::Obj(fields) => {
            for (key, v) in fields {
                let here = format!("{at}.{key}");
                if key.ends_with("_rows_per_s") {
                    match v.as_num() {
                        Some(x) if x.is_finite() && x > 0.0 => {}
                        Some(x) => problems.push(format!("{here} = {x} (must be > 0)")),
                        None => problems.push(format!("{here} is not a number")),
                    }
                }
                check_rows_per_s(v, &here, problems);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                check_rows_per_s(v, &format!("{at}[{i}]"), problems);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> String {
        r#"{
  "bench": "lutgemm",
  "mode": "smoke",
  "mt_workers": 2,
  "serve_submitters": 2,
  "host_cpus": 1,
  "points": [
    {"m": 48, "k": 64, "n": 64, "v": 4, "c": 16,
     "scalar_rows_per_s": 100.0, "engine_1t_rows_per_s": 300.0,
     "engine_mt_rows_per_s": 500.0, "serve_rows_per_s": 400.0,
     "speedup_1t": 3.0, "speedup_mt": 5.0, "serve_vs_batch": 0.8}
  ],
  "encode_once": {"m": 256, "k": 64, "n": 64, "v": 8, "c": 16,
                  "code_width_bits": 4, "u16_rows_per_s": 35000000.0,
                  "packed_rows_per_s": 34000000.0, "packed_speedup": 0.97,
                  "tables": 4, "repeated_rows_per_s": 500000.0,
                  "many_table_rows_per_s": 1400000.0, "many_table_speedup": 2.8,
                  "memo_rows": 128, "memo_cold_rows_per_s": 1200000.0,
                  "memo_warm_rows_per_s": 5400000.0, "memo_warm_speedup": 4.5},
  "model_serve": {"model": "resnet20_mini", "images": 16, "lut_stages": 5,
                  "dense_stages": 4, "serve_rows_per_s": 40.0},
  "adaptive_serve": {"model": "resnet20_mini", "images": 16, "submitters": 2,
                     "lut_stages": 5, "dense_stages": 4,
                     "serve_rows_per_s": 42.0, "max_stage_window": 64}
}"#
        .to_string()
    }

    #[test]
    fn valid_artifact_passes() {
        check_artifact_text(&valid_doc()).expect("valid artifact");
    }

    #[test]
    fn malformed_json_fails() {
        let err = check_artifact_text("{ not json").expect_err("malformed");
        assert!(err.contains("invalid JSON"), "{err}");
    }

    #[test]
    fn zero_throughput_fails() {
        let doc = valid_doc().replace("\"serve_rows_per_s\": 40.0", "\"serve_rows_per_s\": 0.0");
        let err = check_artifact_text(&doc).expect_err("zero throughput");
        assert!(err.contains("model_serve.serve_rows_per_s"), "{err}");
        assert!(err.contains("must be > 0"), "{err}");
    }

    #[test]
    fn missing_adaptive_block_fails() {
        let doc = valid_doc().replace("\"adaptive_serve\"", "\"renamed_serve\"");
        let err = check_artifact_text(&doc).expect_err("missing block");
        assert!(err.contains("adaptive_serve"), "{err}");
    }

    #[test]
    fn missing_point_field_fails() {
        let doc = valid_doc().replace("\"serve_vs_batch\": 0.8", "\"extra\": 0.8");
        let err = check_artifact_text(&doc).expect_err("missing field");
        assert!(
            err.contains("points[0] is missing \"serve_vs_batch\""),
            "{err}"
        );
    }

    #[test]
    fn non_numeric_throughput_fails() {
        let doc = valid_doc().replace(
            "\"serve_rows_per_s\": 42.0",
            "\"serve_rows_per_s\": \"fast\"",
        );
        let err = check_artifact_text(&doc).expect_err("non-numeric");
        assert!(err.contains("is not a number"), "{err}");
    }

    #[test]
    fn empty_points_fails() {
        let doc = valid_doc();
        let start = doc.find("\"points\": [").expect("points key");
        let end = doc[start..].find(']').expect("array close") + start + 1;
        let doc = format!("{}\"points\": []{}", &doc[..start], &doc[end..]);
        let err = check_artifact_text(&doc).expect_err("empty points");
        assert!(err.contains("\"points\" is empty"), "{err}");
    }

    /// Same doc, full mode, with the full-mode-only gates satisfied.
    fn valid_full_doc() -> String {
        valid_doc()
            .replace("\"mode\": \"smoke\"", "\"mode\": \"full\"")
            .replace("\"packed_speedup\": 0.97", "\"packed_speedup\": 1.2")
    }

    #[test]
    fn full_mode_encode_once_passes_when_gates_hold() {
        check_artifact_text(&valid_full_doc()).expect("valid full artifact");
    }

    #[test]
    fn missing_encode_once_block_fails() {
        let doc = valid_doc().replace("\"encode_once\"", "\"renamed_once\"");
        let err = check_artifact_text(&doc).expect_err("missing block");
        assert!(err.contains("encode_once"), "{err}");
    }

    #[test]
    fn missing_encode_once_field_fails() {
        let doc = valid_doc().replace("\"memo_warm_speedup\": 4.5", "\"extra\": 4.5");
        let err = check_artifact_text(&doc).expect_err("missing field");
        assert!(
            err.contains("encode_once is missing \"memo_warm_speedup\""),
            "{err}"
        );
    }

    #[test]
    fn packed_speedup_below_one_fails_only_in_full_mode() {
        // The smoke template carries packed_speedup 0.97 and passes
        // (valid_artifact_passes); the same value must fail in full mode.
        let doc = valid_full_doc().replace("\"packed_speedup\": 1.2", "\"packed_speedup\": 0.97");
        let err = check_artifact_text(&doc).expect_err("slow packed path");
        assert!(
            err.contains("encode_once.packed_speedup = 0.97 (must be > 1 in full mode)"),
            "{err}"
        );
    }

    #[test]
    fn many_table_speedup_below_two_fails_in_full_mode() {
        let doc =
            valid_full_doc().replace("\"many_table_speedup\": 2.8", "\"many_table_speedup\": 1.5");
        let err = check_artifact_text(&doc).expect_err("weak many-table win");
        assert!(err.contains("must be >= 2 in full mode"), "{err}");
        // The same value is fine at smoke sizes.
        let smoke =
            valid_doc().replace("\"many_table_speedup\": 2.8", "\"many_table_speedup\": 1.5");
        check_artifact_text(&smoke).expect("smoke tolerates a weak win");
    }

    #[test]
    fn many_table_speedup_at_or_below_one_fails_even_in_smoke() {
        let doc = valid_doc().replace("\"many_table_speedup\": 2.8", "\"many_table_speedup\": 0.9");
        let err = check_artifact_text(&doc).expect_err("encode-once lost");
        assert!(
            err.contains("must be > 1: encoding once must beat re-encoding per table"),
            "{err}"
        );
    }

    #[test]
    fn many_table_slower_than_repeated_fails_in_full_mode() {
        let doc = valid_full_doc().replace(
            "\"many_table_rows_per_s\": 1400000.0",
            "\"many_table_rows_per_s\": 400000.0",
        );
        let err = check_artifact_text(&doc).expect_err("slower than repeated");
        assert!(
            err.contains("encode_once.many_table_rows_per_s = 400000 < repeated_rows_per_s"),
            "{err}"
        );
    }

    #[test]
    fn cold_memo_beating_warm_fails_in_full_mode() {
        let doc = valid_full_doc().replace(
            "\"memo_warm_rows_per_s\": 5400000.0",
            "\"memo_warm_rows_per_s\": 1000000.0",
        );
        let err = check_artifact_text(&doc).expect_err("useless memo");
        assert!(err.contains("must beat memo_cold_rows_per_s"), "{err}");
    }

    #[test]
    fn bad_code_width_fails() {
        let doc = valid_doc().replace("\"code_width_bits\": 4", "\"code_width_bits\": 7");
        let err = check_artifact_text(&doc).expect_err("bad width");
        assert!(
            err.contains("encode_once.code_width_bits = 7 (must be 4, 8, or 16)"),
            "{err}"
        );
    }

    fn valid_serve_doc() -> String {
        r#"{
  "bench": "serve",
  "mode": "smoke",
  "arrival": "poisson",
  "seed": 24190,
  "requests_per_scenario": 40,
  "host_cpus": 4,
  "scenarios": [
    {"name": "convnet_adaptive_low", "model": "convnet", "policy": "adaptive",
     "load": "low", "arrival": "poisson", "requests": 40,
     "offered_rps": 100.0, "achieved_rps": 98.0,
     "p50_ms": 2.1, "p95_ms": 2.8, "p99_ms": 3.0, "max_ms": 3.2,
     "mean_ms": 2.2, "slo_ms": 6.0, "slo_conformance": 0.97, "stages": [
       {"stage": "conv1", "batches_run": 40, "rows_served": 40,
        "queued_high_water": 2, "final_window": 1, "mean_service_us": 410.0}
     ]},
    {"name": "convnet_adaptive_overload", "model": "convnet",
     "policy": "adaptive", "load": "overload", "arrival": "poisson",
     "requests": 40, "offered_rps": 3200.0, "achieved_rps": 400.0,
     "p50_ms": 40.0, "p95_ms": 85.0, "p99_ms": 92.0, "max_ms": 95.0,
     "mean_ms": 45.0, "slo_ms": 6.0, "slo_conformance": 0.05, "stages": [
       {"stage": "conv1", "batches_run": 5, "rows_served": 40,
        "queued_high_water": 8, "final_window": 16, "mean_service_us": 900.0}
     ]}
  ],
  "gateway_scenarios": [
    {"name": "gateway_mixed_low", "load": "low", "arrival": "poisson",
     "models": 2, "tenants": 6, "requests": 40, "admitted": 40, "shed": 0,
     "shed_ratio": 0.0, "batches_run": 12, "rows_served": 40,
     "engine_cache_hits": 14, "engine_cache_misses": 28,
     "engine_cache_evictions": 0, "memo_hits": 6200, "memo_misses": 1800,
     "memo_evictions": 0, "slo_ms": 6.0,
     "classes": [
       {"class": "latency", "requests": 14, "admitted": 14, "shed": 0,
        "p50_ms": 2.0, "p99_ms": 3.0},
       {"class": "throughput", "requests": 13, "admitted": 13, "shed": 0,
        "p50_ms": 2.2, "p99_ms": 3.4},
       {"class": "best_effort", "requests": 13, "admitted": 13, "shed": 0,
        "p50_ms": 2.4, "p99_ms": 3.8}
     ], "stages": [
       {"stage": "cnn_a/conv1", "batches_run": 12, "rows_served": 20,
        "queued_high_water": 2, "final_window": 1, "mean_service_us": 410.0}
     ]},
    {"name": "gateway_mixed_overload", "load": "overload", "arrival": "poisson",
     "models": 2, "tenants": 6, "requests": 40, "admitted": 31, "shed": 9,
     "shed_ratio": 0.225, "batches_run": 6, "rows_served": 31,
     "engine_cache_hits": 14, "engine_cache_misses": 28,
     "engine_cache_evictions": 0, "memo_hits": 7000, "memo_misses": 0,
     "memo_evictions": 0, "slo_ms": 6.0,
     "classes": [
       {"class": "latency", "requests": 14, "admitted": 14, "shed": 0,
        "p50_ms": 12.0, "p99_ms": 30.0},
       {"class": "throughput", "requests": 13, "admitted": 13, "shed": 0,
        "p50_ms": 14.0, "p99_ms": 42.0},
       {"class": "best_effort", "requests": 13, "admitted": 4, "shed": 9,
        "p50_ms": 20.0, "p99_ms": 55.0}
     ], "stages": [
       {"stage": "cnn_a/conv1", "batches_run": 6, "rows_served": 16,
        "queued_high_water": 8, "final_window": 16, "mean_service_us": 900.0}
     ]},
    {"name": "gateway_memo_dup_low", "load": "low", "arrival": "poisson",
     "models": 2, "tenants": 6, "requests": 40, "admitted": 40, "shed": 0,
     "shed_ratio": 0.0, "batches_run": 10, "rows_served": 40,
     "engine_cache_hits": 14, "engine_cache_misses": 28,
     "engine_cache_evictions": 0, "memo_hits": 9500, "memo_misses": 260,
     "memo_evictions": 0, "slo_ms": 6.0,
     "classes": [
       {"class": "latency", "requests": 14, "admitted": 14, "shed": 0,
        "p50_ms": 1.8, "p99_ms": 2.6},
       {"class": "throughput", "requests": 13, "admitted": 13, "shed": 0,
        "p50_ms": 2.0, "p99_ms": 3.0},
       {"class": "best_effort", "requests": 13, "admitted": 13, "shed": 0,
        "p50_ms": 2.2, "p99_ms": 3.4}
     ], "stages": [
       {"stage": "cnn_a/conv1", "batches_run": 10, "rows_served": 20,
        "queued_high_water": 2, "final_window": 1, "mean_service_us": 380.0}
     ]}
  ],
  "decode_scenarios": [
    {"name": "decode_low", "model": "gpt_mini", "load": "low",
     "arrival": "poisson", "streams": 3, "seq_len": 8, "steps": 24,
     "offered_sps": 110.0, "p50_ms": 1.4, "p95_ms": 1.9, "p99_ms": 2.2,
     "max_ms": 2.5, "mean_ms": 1.5, "steps_per_s": 620.0,
     "full_reeval_steps_per_s": 640.0, "prefix_speedup": 0.98,
     "reused_rows": 84, "walked_rows": 24},
    {"name": "decode_overload", "model": "gpt_mini", "load": "overload",
     "arrival": "poisson", "streams": 3, "seq_len": 8, "steps": 24,
     "offered_sps": 4800.0, "p50_ms": 9.0, "p95_ms": 22.0, "p99_ms": 26.0,
     "max_ms": 28.0, "mean_ms": 11.0, "steps_per_s": 560.0,
     "full_reeval_steps_per_s": 640.0, "prefix_speedup": 0.95,
     "reused_rows": 84, "walked_rows": 24}
  ]
}"#
        .to_string()
    }

    #[test]
    fn valid_serve_artifact_passes() {
        check_serve_artifact_text(&valid_serve_doc()).expect("valid artifact");
    }

    #[test]
    fn serve_missing_percentile_names_path() {
        let doc = valid_serve_doc().replace("\"p99_ms\": 92.0,", "");
        let err = check_serve_artifact_text(&doc).expect_err("missing field");
        assert!(err.contains("scenarios[1] is missing \"p99_ms\""), "{err}");
    }

    #[test]
    fn serve_overload_inversion_names_constraint() {
        // Overload p99 dragged down to p50: the ramp sanity check fires.
        let doc = valid_serve_doc()
            .replace("\"p95_ms\": 85.0", "\"p95_ms\": 40.0")
            .replace("\"p99_ms\": 92.0", "\"p99_ms\": 40.0");
        let err = check_serve_artifact_text(&doc).expect_err("flat overload");
        assert!(
            err.contains("scenarios[1].p99_ms = 40 (must be > p50_ms = 40 under overload)"),
            "{err}"
        );
    }

    #[test]
    fn serve_percentile_ordering_is_checked() {
        let doc = valid_serve_doc().replace("\"p95_ms\": 2.8", "\"p95_ms\": 1.0");
        let err = check_serve_artifact_text(&doc).expect_err("inverted p95");
        assert!(
            err.contains("scenarios[0].p95_ms = 1 < p50_ms = 2.1"),
            "{err}"
        );
    }

    #[test]
    fn serve_adaptive_low_conformance_floor() {
        let doc =
            valid_serve_doc().replace("\"slo_conformance\": 0.97", "\"slo_conformance\": 0.2");
        let err = check_serve_artifact_text(&doc).expect_err("missed SLO");
        assert!(
            err.contains("scenarios[0].slo_conformance = 0.2 (adaptive low-load must be >= 0.5)"),
            "{err}"
        );
    }

    #[test]
    fn serve_conformance_out_of_range_fails() {
        let doc =
            valid_serve_doc().replace("\"slo_conformance\": 0.97", "\"slo_conformance\": 1.4");
        let err = check_serve_artifact_text(&doc).expect_err("out of range");
        assert!(err.contains("must be in [0, 1]"), "{err}");
    }

    #[test]
    fn serve_mislabeled_name_fails() {
        let doc = valid_serve_doc().replace(
            "\"name\": \"convnet_adaptive_low\"",
            "\"name\": \"convnet_static_low\"",
        );
        let err = check_serve_artifact_text(&doc).expect_err("bad name");
        assert!(err.contains("expected \"convnet_adaptive_low\""), "{err}");
    }

    #[test]
    fn serve_empty_stages_fails() {
        let doc = valid_serve_doc().replacen(
            "\"stages\": [\n       {\"stage\": \"conv1\", \"batches_run\": 40, \"rows_served\": 40,\n        \"queued_high_water\": 2, \"final_window\": 1, \"mean_service_us\": 410.0}\n     ]",
            "\"stages\": []",
            1,
        );
        let err = check_serve_artifact_text(&doc).expect_err("empty stages");
        assert!(err.contains("scenarios[0].stages is empty"), "{err}");
    }

    #[test]
    fn serve_wrong_bench_tag_fails() {
        let doc = valid_serve_doc().replace("\"bench\": \"serve\"", "\"bench\": \"lutgemm\"");
        let err = check_serve_artifact_text(&doc).expect_err("wrong tag");
        assert!(err.contains("expected \"serve\""), "{err}");
    }

    #[test]
    fn serve_missing_gateway_block_fails() {
        let doc = valid_serve_doc().replace("\"gateway_scenarios\"", "\"renamed_scenarios\"");
        let err = check_serve_artifact_text(&doc).expect_err("missing block");
        assert!(
            err.contains("missing top-level field \"gateway_scenarios\""),
            "{err}"
        );
    }

    #[test]
    fn gateway_admission_accounting_is_checked() {
        // Drop an admitted request without shedding it: counts stop adding up.
        let doc = valid_serve_doc().replace(
            "\"requests\": 40, \"admitted\": 31, \"shed\": 9",
            "\"requests\": 40, \"admitted\": 30, \"shed\": 9",
        );
        let err = check_serve_artifact_text(&doc).expect_err("lost request");
        assert!(
            err.contains("gateway_scenarios[1]: admitted (30) + shed (9) != requests (40)"),
            "{err}"
        );
    }

    #[test]
    fn gateway_shed_ratio_out_of_range_fails() {
        let doc = valid_serve_doc().replace("\"shed_ratio\": 0.225", "\"shed_ratio\": 1.4");
        let err = check_serve_artifact_text(&doc).expect_err("out of range");
        assert!(
            err.contains("gateway_scenarios[1].shed_ratio = 1.4 (must be in [0, 1])"),
            "{err}"
        );
    }

    #[test]
    fn gateway_shed_ratio_must_match_counts() {
        let doc = valid_serve_doc().replace("\"shed_ratio\": 0.225", "\"shed_ratio\": 0.5");
        let err = check_serve_artifact_text(&doc).expect_err("inconsistent ratio");
        assert!(err.contains("inconsistent with shed/requests"), "{err}");
    }

    #[test]
    fn gateway_admitted_rows_must_all_be_served() {
        let doc = valid_serve_doc().replace("\"rows_served\": 31", "\"rows_served\": 29");
        let err = check_serve_artifact_text(&doc).expect_err("lost rows");
        assert!(
            err.contains("gateway_scenarios[1].rows_served = 29 (must equal admitted = 31"),
            "{err}"
        );
    }

    #[test]
    fn gateway_overload_fairness_inversion_fails() {
        // Latency-class p99 dragged above best-effort under overload: the
        // SLO classes stopped meaning anything.
        let doc = valid_serve_doc().replace(
            "\"p50_ms\": 12.0, \"p99_ms\": 30.0",
            "\"p50_ms\": 12.0, \"p99_ms\": 70.0",
        );
        let err = check_serve_artifact_text(&doc).expect_err("fairness inversion");
        assert!(
            err.contains(
                "gateway_scenarios[1]: latency p99 (70) > best_effort p99 (55) under overload"
            ),
            "{err}"
        );
    }

    #[test]
    fn gateway_class_percentiles_checked_only_when_admitted() {
        // A fully-shed class reports zero percentiles; that must pass.
        let doc = valid_serve_doc().replace(
            "{\"class\": \"best_effort\", \"requests\": 13, \"admitted\": 4, \"shed\": 9,\n        \"p50_ms\": 20.0, \"p99_ms\": 55.0}",
            "{\"class\": \"best_effort\", \"requests\": 13, \"admitted\": 0, \"shed\": 13,\n        \"p50_ms\": 0.0, \"p99_ms\": 0.0}",
        );
        let doc = doc.replace(
            "\"requests\": 40, \"admitted\": 31, \"shed\": 9,\n     \"shed_ratio\": 0.225, \"batches_run\": 6, \"rows_served\": 31",
            "\"requests\": 40, \"admitted\": 27, \"shed\": 13,\n     \"shed_ratio\": 0.325, \"batches_run\": 6, \"rows_served\": 27",
        );
        check_serve_artifact_text(&doc).expect("fully-shed class is valid");
    }

    #[test]
    fn gateway_missing_cache_counter_fails() {
        let doc = valid_serve_doc().replacen("\"engine_cache_hits\": 14, ", "", 1);
        let err = check_serve_artifact_text(&doc).expect_err("missing counter");
        assert!(
            err.contains("gateway_scenarios[0] is missing \"engine_cache_hits\""),
            "{err}"
        );
    }

    #[test]
    fn gateway_dead_engine_cache_fails() {
        let doc = valid_serve_doc().replacen(
            "\"engine_cache_hits\": 14, \"engine_cache_misses\": 28",
            "\"engine_cache_hits\": 0, \"engine_cache_misses\": 0",
            1,
        );
        let err = check_serve_artifact_text(&doc).expect_err("dead cache");
        assert!(
            err.contains("gateway_scenarios[0]: engine_cache_hits + engine_cache_misses = 0"),
            "{err}"
        );
    }

    #[test]
    fn gateway_memo_scenario_must_hit_and_miss() {
        // The `gateway_memo_*` name scopes the > 0 gate: the overload
        // scenario in the template carries memo_misses 0 and still passes
        // (valid_serve_artifact_passes); the memo scenario may not.
        let doc = valid_serve_doc().replace("\"memo_hits\": 9500", "\"memo_hits\": 0");
        let err = check_serve_artifact_text(&doc).expect_err("memo never hit");
        assert!(
            err.contains("gateway_scenarios[2].memo_hits = 0 (must be > 0 in a memo scenario)"),
            "{err}"
        );
        let doc = valid_serve_doc().replace("\"memo_misses\": 260", "\"memo_misses\": 0");
        let err = check_serve_artifact_text(&doc).expect_err("memo never missed");
        assert!(
            err.contains("gateway_scenarios[2].memo_misses = 0"),
            "{err}"
        );
    }

    /// Full-mode serve doc with the full-mode-only decode gates satisfied.
    fn valid_full_serve_doc() -> String {
        valid_serve_doc()
            .replace("\"mode\": \"smoke\"", "\"mode\": \"full\"")
            .replace("\"prefix_speedup\": 0.98", "\"prefix_speedup\": 1.6")
            .replace("\"prefix_speedup\": 0.95", "\"prefix_speedup\": 1.4")
    }

    #[test]
    fn full_mode_serve_doc_passes_when_decode_gates_hold() {
        check_serve_artifact_text(&valid_full_serve_doc()).expect("valid full artifact");
    }

    #[test]
    fn serve_missing_decode_block_fails() {
        let doc = valid_serve_doc().replace("\"decode_scenarios\"", "\"renamed_scenarios\"");
        let err = check_serve_artifact_text(&doc).expect_err("missing block");
        assert!(
            err.contains("missing top-level field \"decode_scenarios\""),
            "{err}"
        );
    }

    #[test]
    fn decode_step_accounting_is_checked() {
        // Lose one step at a stream boundary: steps != streams * seq_len.
        let doc = valid_serve_doc().replacen("\"steps\": 24", "\"steps\": 23", 1);
        let err = check_serve_artifact_text(&doc).expect_err("lost step");
        assert!(
            err.contains("decode_scenarios[0].steps = 23 (must equal streams * seq_len = 24"),
            "{err}"
        );
    }

    #[test]
    fn decode_percentile_ordering_is_checked() {
        let doc = valid_serve_doc().replace("\"p95_ms\": 1.9", "\"p95_ms\": 1.0");
        let err = check_serve_artifact_text(&doc).expect_err("inverted p95");
        assert!(
            err.contains("decode_scenarios[0].p95_ms = 1 < p50_ms = 1.4"),
            "{err}"
        );
    }

    #[test]
    fn decode_overload_inversion_names_constraint() {
        let doc = valid_serve_doc()
            .replace("\"p50_ms\": 9.0", "\"p50_ms\": 26.0")
            .replace("\"mean_ms\": 11.0", "\"mean_ms\": 26.0");
        let err = check_serve_artifact_text(&doc).expect_err("flat overload");
        assert!(
            err.contains("decode_scenarios[1].p99_ms = 26 (must be > p50_ms = 26 under overload)"),
            "{err}"
        );
    }

    #[test]
    fn decode_prefix_speedup_gate_fires_only_in_full_mode() {
        // The smoke template carries prefix_speedup 0.98 and passes
        // (valid_serve_artifact_passes); the same value must fail in full
        // mode, where fixed overheads no longer excuse losing to re-encode.
        let doc =
            valid_full_serve_doc().replace("\"prefix_speedup\": 1.6", "\"prefix_speedup\": 0.98");
        let err = check_serve_artifact_text(&doc).expect_err("reuse lost to re-encode");
        assert!(
            err.contains("decode_scenarios[0].prefix_speedup = 0.98"),
            "{err}"
        );
        assert!(err.contains("must be > 1 in full mode"), "{err}");
    }

    #[test]
    fn decode_prefix_speedup_must_be_positive_even_in_smoke() {
        let doc = valid_serve_doc().replace("\"prefix_speedup\": 0.98", "\"prefix_speedup\": 0.0");
        let err = check_serve_artifact_text(&doc).expect_err("non-positive speedup");
        assert!(
            err.contains("decode_scenarios[0].prefix_speedup = 0 (must be > 0)"),
            "{err}"
        );
    }

    #[test]
    fn decode_dead_reuse_counters_fail() {
        let doc = valid_serve_doc().replacen("\"reused_rows\": 84", "\"reused_rows\": 0", 1);
        let err = check_serve_artifact_text(&doc).expect_err("no reuse");
        assert!(err.contains("decode_scenarios[0].reused_rows = 0"), "{err}");
        let doc = valid_serve_doc().replacen("\"walked_rows\": 24", "\"walked_rows\": 0", 1);
        let err = check_serve_artifact_text(&doc).expect_err("no walking");
        assert!(err.contains("decode_scenarios[0].walked_rows = 0"), "{err}");
    }

    #[test]
    fn decode_mislabeled_name_fails() {
        let doc =
            valid_serve_doc().replace("\"name\": \"decode_low\"", "\"name\": \"decode_fast\"");
        let err = check_serve_artifact_text(&doc).expect_err("bad name");
        assert!(
            err.contains("decode_scenarios[0].name = \"decode_fast\", expected \"decode_low\""),
            "{err}"
        );
    }

    #[test]
    fn failing_scenario_is_echoed_as_json_snippet() {
        // Any failed scenario check appends the scenario's compact JSON so
        // the CI log shows the offending numbers, not just their paths.
        let doc = valid_serve_doc().replacen("\"steps\": 24", "\"steps\": 23", 1);
        let err = check_serve_artifact_text(&doc).expect_err("lost step");
        assert!(err.contains("decode_scenarios[0] JSON: {"), "{err}");
        assert!(err.contains("\"steps\": 23"), "{err}");
        assert!(err.contains("\"name\": \"decode_low\""), "{err}");
        // Healthy scenarios are not echoed.
        assert!(!err.contains("decode_scenarios[1] JSON"), "{err}");
        assert!(!err.contains("\nscenarios[0] JSON"), "{err}");
    }

    #[test]
    fn failing_gateway_scenario_is_echoed_as_json_snippet() {
        let doc = valid_serve_doc().replace("\"shed_ratio\": 0.225", "\"shed_ratio\": 1.4");
        let err = check_serve_artifact_text(&doc).expect_err("out of range");
        assert!(err.contains("gateway_scenarios[1] JSON: {"), "{err}");
        assert!(err.contains("\"shed_ratio\": 1.4"), "{err}");
    }

    // The artifacts committed at the repo root must track the schema:
    // these tests make `cargo test` the gate that keeps a checker (or
    // emitter) change from landing with stale checked-in files.
    #[test]
    fn committed_lutgemm_artifact_matches_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lutgemm.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_lutgemm.json");
        check_artifact_text(&text).expect("committed BENCH_lutgemm.json fails --check");
    }

    #[test]
    fn committed_serve_artifact_matches_schema() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_serve.json");
        check_serve_artifact_text(&text).expect("committed BENCH_serve.json fails --check");
    }
}
