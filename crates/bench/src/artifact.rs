//! Schema validation for `BENCH_lutgemm.json` — the `--check` gate CI runs
//! right after the smoke bench, so a refactor that silently drops a field,
//! zeroes a throughput number, or breaks the emitter's hand-rolled JSON
//! fails the PR instead of quietly rotting the artifact record.

use crate::json::Json;

/// Fields every entry of `"points"` must carry.
const POINT_FIELDS: &[&str] = &[
    "m",
    "k",
    "n",
    "v",
    "c",
    "scalar_rows_per_s",
    "engine_1t_rows_per_s",
    "engine_mt_rows_per_s",
    "serve_rows_per_s",
    "speedup_1t",
    "speedup_mt",
    "serve_vs_batch",
];

/// Fields the whole-model `"model_serve"` block must carry.
const MODEL_SERVE_FIELDS: &[&str] = &[
    "model",
    "images",
    "lut_stages",
    "dense_stages",
    "serve_rows_per_s",
];

/// Fields the whole-model `"adaptive_serve"` block must carry.
const ADAPTIVE_SERVE_FIELDS: &[&str] = &[
    "model",
    "images",
    "submitters",
    "lut_stages",
    "dense_stages",
    "serve_rows_per_s",
    "max_stage_window",
];

/// Top-level fields of the artifact.
const TOP_FIELDS: &[&str] = &[
    "bench",
    "mode",
    "mt_workers",
    "serve_submitters",
    "host_cpus",
    "points",
    "model_serve",
    "adaptive_serve",
];

/// Validates the text of a `BENCH_lutgemm.json` artifact. Returns every
/// problem found (one per line) so a broken emitter is diagnosed in one
/// run, not one field at a time.
pub fn check_artifact_text(text: &str) -> Result<(), String> {
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(e.to_string()),
    };
    let mut problems = Vec::new();
    if doc.as_obj().is_none() {
        return Err("top level is not a JSON object".to_string());
    }
    for &field in TOP_FIELDS {
        if doc.get(field).is_none() {
            problems.push(format!("missing top-level field \"{field}\""));
        }
    }
    if let Some(bench) = doc.get("bench") {
        if bench.as_str() != Some("lutgemm") {
            problems.push(format!("\"bench\" is {bench:?}, expected \"lutgemm\""));
        }
    }
    match doc.get("points").and_then(Json::as_arr) {
        Some([]) => problems.push("\"points\" is empty".to_string()),
        Some(points) => {
            for (i, point) in points.iter().enumerate() {
                require_fields(point, POINT_FIELDS, &format!("points[{i}]"), &mut problems);
            }
        }
        None => {
            if doc.get("points").is_some() {
                problems.push("\"points\" is not an array".to_string());
            }
        }
    }
    for (block, fields) in [
        ("model_serve", MODEL_SERVE_FIELDS),
        ("adaptive_serve", ADAPTIVE_SERVE_FIELDS),
    ] {
        if let Some(value) = doc.get(block) {
            require_fields(value, fields, block, &mut problems);
        }
    }
    // Throughput gate: a *_rows_per_s of zero (or worse) anywhere means a
    // measurement loop broke, whatever the schema says.
    check_rows_per_s(&doc, "$", &mut problems);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

fn require_fields(value: &Json, fields: &[&str], at: &str, problems: &mut Vec<String>) {
    if value.as_obj().is_none() {
        problems.push(format!("{at} is not an object"));
        return;
    }
    for &field in fields {
        if value.get(field).is_none() {
            problems.push(format!("{at} is missing \"{field}\""));
        }
    }
}

/// Walks the whole document: every field named `*_rows_per_s` must be a
/// finite number strictly greater than zero.
fn check_rows_per_s(value: &Json, at: &str, problems: &mut Vec<String>) {
    match value {
        Json::Obj(fields) => {
            for (key, v) in fields {
                let here = format!("{at}.{key}");
                if key.ends_with("_rows_per_s") {
                    match v.as_num() {
                        Some(x) if x.is_finite() && x > 0.0 => {}
                        Some(x) => problems.push(format!("{here} = {x} (must be > 0)")),
                        None => problems.push(format!("{here} is not a number")),
                    }
                }
                check_rows_per_s(v, &here, problems);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                check_rows_per_s(v, &format!("{at}[{i}]"), problems);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> String {
        r#"{
  "bench": "lutgemm",
  "mode": "smoke",
  "mt_workers": 2,
  "serve_submitters": 2,
  "host_cpus": 1,
  "points": [
    {"m": 48, "k": 64, "n": 64, "v": 4, "c": 16,
     "scalar_rows_per_s": 100.0, "engine_1t_rows_per_s": 300.0,
     "engine_mt_rows_per_s": 500.0, "serve_rows_per_s": 400.0,
     "speedup_1t": 3.0, "speedup_mt": 5.0, "serve_vs_batch": 0.8}
  ],
  "model_serve": {"model": "resnet20_mini", "images": 16, "lut_stages": 5,
                  "dense_stages": 4, "serve_rows_per_s": 40.0},
  "adaptive_serve": {"model": "resnet20_mini", "images": 16, "submitters": 2,
                     "lut_stages": 5, "dense_stages": 4,
                     "serve_rows_per_s": 42.0, "max_stage_window": 64}
}"#
        .to_string()
    }

    #[test]
    fn valid_artifact_passes() {
        check_artifact_text(&valid_doc()).expect("valid artifact");
    }

    #[test]
    fn malformed_json_fails() {
        let err = check_artifact_text("{ not json").expect_err("malformed");
        assert!(err.contains("invalid JSON"), "{err}");
    }

    #[test]
    fn zero_throughput_fails() {
        let doc = valid_doc().replace("\"serve_rows_per_s\": 40.0", "\"serve_rows_per_s\": 0.0");
        let err = check_artifact_text(&doc).expect_err("zero throughput");
        assert!(err.contains("model_serve.serve_rows_per_s"), "{err}");
        assert!(err.contains("must be > 0"), "{err}");
    }

    #[test]
    fn missing_adaptive_block_fails() {
        let doc = valid_doc().replace("\"adaptive_serve\"", "\"renamed_serve\"");
        let err = check_artifact_text(&doc).expect_err("missing block");
        assert!(err.contains("adaptive_serve"), "{err}");
    }

    #[test]
    fn missing_point_field_fails() {
        let doc = valid_doc().replace("\"serve_vs_batch\": 0.8", "\"extra\": 0.8");
        let err = check_artifact_text(&doc).expect_err("missing field");
        assert!(
            err.contains("points[0] is missing \"serve_vs_batch\""),
            "{err}"
        );
    }

    #[test]
    fn non_numeric_throughput_fails() {
        let doc = valid_doc().replace(
            "\"serve_rows_per_s\": 42.0",
            "\"serve_rows_per_s\": \"fast\"",
        );
        let err = check_artifact_text(&doc).expect_err("non-numeric");
        assert!(err.contains("is not a number"), "{err}");
    }

    #[test]
    fn empty_points_fails() {
        let doc = valid_doc();
        let start = doc.find("\"points\": [").expect("points key");
        let end = doc[start..].find(']').expect("array close") + start + 1;
        let doc = format!("{}\"points\": []{}", &doc[..start], &doc[end..]);
        let err = check_artifact_text(&doc).expect_err("empty points");
        assert!(err.contains("\"points\" is empty"), "{err}");
    }
}
