//! Deterministic open-loop arrival processes for the serving benchmark.
//!
//! An arrival process turns an offered rate into a schedule of request
//! offsets from the start of the run. The generator submits each request
//! at its scheduled instant regardless of how the server is doing —
//! open-loop load, so queueing delay shows up in the measured latency
//! instead of silently throttling the offered rate (coordinated
//! omission). Poisson arrivals come from seeded inverse-CDF exponential
//! inter-arrival sampling, so a `(rate, seed)` pair always replays the
//! same trace.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// How request arrival instants are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals: one request every `1/rate` seconds.
    Fixed,
    /// Memoryless arrivals: exponential inter-arrival times with mean
    /// `1/rate`, sampled from a seeded [`StdRng`].
    Poisson { seed: u64 },
}

impl ArrivalProcess {
    /// Name used in artifacts and scenario labels.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Fixed => "fixed",
            ArrivalProcess::Poisson { .. } => "poisson",
        }
    }

    /// Offsets (from run start) of `n` arrivals at `rate` requests/s.
    /// The first arrival is at offset 0 so a run never idles at startup.
    pub fn schedule(&self, n: usize, rate: f64) -> Vec<Duration> {
        assert!(rate > 0.0, "arrival rate must be positive");
        let mean = 1.0 / rate;
        let mut offsets = Vec::with_capacity(n);
        let mut t = 0.0f64;
        match self {
            ArrivalProcess::Fixed => {
                for _ in 0..n {
                    offsets.push(Duration::from_secs_f64(t));
                    t += mean;
                }
            }
            ArrivalProcess::Poisson { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                for _ in 0..n {
                    offsets.push(Duration::from_secs_f64(t));
                    // Inverse-CDF exponential: -ln(1-u)·mean, u ∈ [0, 1).
                    let u: f64 = rng.gen();
                    t += -(1.0 - u).ln() * mean;
                }
            }
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_evenly_spaced() {
        let s = ArrivalProcess::Fixed.schedule(5, 100.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], Duration::ZERO);
        for (i, off) in s.iter().enumerate() {
            let expect = Duration::from_secs_f64(i as f64 / 100.0);
            let err = off.abs_diff(expect);
            assert!(err < Duration::from_nanos(100), "arrival {i}: {off:?}");
        }
    }

    #[test]
    fn poisson_schedule_is_seeded_reproducible() {
        let p = ArrivalProcess::Poisson { seed: 42 };
        let a = p.schedule(64, 500.0);
        let b = p.schedule(64, 500.0);
        assert_eq!(a, b, "same seed must replay the same trace");
        let c = ArrivalProcess::Poisson { seed: 43 }.schedule(64, 500.0);
        assert_ne!(a, c, "different seeds must differ");
        // Monotone non-decreasing offsets starting at zero.
        assert_eq!(a[0], Duration::ZERO);
        for w in a.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn poisson_mean_interarrival_matches_rate() {
        let rate = 1000.0;
        let n = 4000;
        let s = ArrivalProcess::Poisson { seed: 7 }.schedule(n, rate);
        // Mean inter-arrival over n-1 gaps ≈ 1/rate; the relative error of
        // an exponential sample mean is ~1/sqrt(n) ≈ 1.6%, allow 10%.
        let span = (*s.last().unwrap() - s[0]).as_secs_f64();
        let mean = span / (n - 1) as f64;
        let expect = 1.0 / rate;
        assert!(
            (mean - expect).abs() / expect < 0.10,
            "mean inter-arrival {mean:.6}s vs expected {expect:.6}s"
        );
    }

    #[test]
    fn fixed_and_poisson_names_label_artifacts() {
        assert_eq!(ArrivalProcess::Fixed.name(), "fixed");
        assert_eq!(ArrivalProcess::Poisson { seed: 0 }.name(), "poisson");
    }
}
