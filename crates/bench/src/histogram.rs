//! Fixed-bucket latency histogram for the serving benchmarks.
//!
//! Hand-rolled (no `hdrhistogram` dependency): geometric buckets with a
//! 1 µs base and power-of-two widths cover sub-microsecond noise up to
//! multi-second stalls in [`NUM_BUCKETS`] slots, at ≲ 2× relative error
//! per bucket. Percentiles interpolate linearly inside a bucket and are
//! clamped to the exact observed min/max, so single-sample histograms
//! report the sample itself and `percentile` is monotone in `q`.

use std::time::Duration;

/// Bucket 0 covers `[0, 1µs)`; bucket `i` covers `[1µs·2^(i-1), 1µs·2^i)`.
pub const NUM_BUCKETS: usize = 42;

const BASE_NANOS: u64 = 1_000; // 1 µs

/// Latency histogram with geometric fixed buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    min_nanos: u64,
    max_nanos: u64,
    sum_nanos: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
            sum_nanos: 0,
        }
    }

    /// Index of the bucket holding `nanos`.
    fn bucket_index(nanos: u64) -> usize {
        if nanos < BASE_NANOS {
            return 0;
        }
        // floor(log2(nanos / BASE_NANOS)) + 1, clamped to the last bucket.
        let ratio = nanos / BASE_NANOS;
        let idx = 64 - u64::leading_zeros(ratio) as usize;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Lower edge of bucket `i`, in nanoseconds.
    fn bucket_low(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            BASE_NANOS << (i - 1)
        }
    }

    /// Upper edge (exclusive) of bucket `i`, in nanoseconds.
    fn bucket_high(i: usize) -> u64 {
        BASE_NANOS << i
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        self.sum_nanos += nanos as u128;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact observed minimum, if any samples were recorded.
    pub fn min(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.min_nanos))
    }

    /// Exact observed maximum, if any samples were recorded.
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.max_nanos))
    }

    /// Exact mean over all samples, if any were recorded.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos((self.sum_nanos / self.count as u128) as u64))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated inside the
    /// bucket containing the rank and clamped to the observed min/max.
    /// Returns `None` on an empty histogram.
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample answering the quantile.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let low = Self::bucket_low(i) as f64;
                let high = Self::bucket_high(i) as f64;
                // Position of the rank inside this bucket, in [0, 1): the
                // first rank of a bucket sits on its lower edge, so
                // percentile(0) on a min-edge sample is exact after clamping.
                let frac = (rank - seen - 1) as f64 / n as f64;
                let est = low + (high - low) * frac;
                let est = est.clamp(self.min_nanos as f64, self.max_nanos as f64);
                return Some(Duration::from_nanos(est as u64));
            }
            seen += n;
        }
        Some(Duration::from_nanos(self.max_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_geometric() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(999), 0);
        assert_eq!(LatencyHistogram::bucket_index(1_000), 1);
        assert_eq!(LatencyHistogram::bucket_index(1_999), 1);
        assert_eq!(LatencyHistogram::bucket_index(2_000), 2);
        assert_eq!(LatencyHistogram::bucket_index(3_999), 2);
        assert_eq!(LatencyHistogram::bucket_index(4_000), 3);
        // Saturates at the last bucket instead of overflowing.
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // Edges agree with the index function.
        for i in 1..NUM_BUCKETS - 1 {
            let low = LatencyHistogram::bucket_low(i);
            let high = LatencyHistogram::bucket_high(i);
            assert_eq!(LatencyHistogram::bucket_index(low), i);
            assert_eq!(LatencyHistogram::bucket_index(high - 1), i);
            assert_eq!(LatencyHistogram::bucket_index(high), i + 1);
            assert_eq!(high, low * 2);
        }
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.percentile(0.5).is_none());
        assert!(h.min().is_none() && h.max().is_none() && h.mean().is_none());
    }

    #[test]
    fn one_sample_reports_itself_at_every_quantile() {
        let mut h = LatencyHistogram::new();
        let d = Duration::from_micros(137);
        h.record(d);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(d), "q={q}");
        }
        assert_eq!(h.min(), Some(d));
        assert_eq!(h.max(), Some(d));
        assert_eq!(h.mean(), Some(d));
    }

    #[test]
    fn percentiles_are_monotone_and_edge_clamped() {
        let mut h = LatencyHistogram::new();
        // 100 samples spread over several buckets: 1µs·k for k=1..=100.
        for k in 1..=100u64 {
            h.record(Duration::from_micros(k));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.0), h.min());
        assert_eq!(h.percentile(1.0), h.max());
        let mut prev = Duration::ZERO;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let p = h.percentile(q).unwrap();
            assert!(p >= prev, "q={q}: {p:?} < {prev:?}");
            prev = p;
        }
        // p50 lands within the bucket containing the true median (the
        // 32..64µs bucket spans ranks 32..=63; interpolation stays inside).
        let p50 = h.percentile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(50) && p50 <= Duration::from_micros(100));
        // p99 is near the top: the bucket estimate clamps to max=100µs.
        let p99 = h.percentile(0.99).unwrap();
        assert!(p99 > p50 && p99 <= Duration::from_micros(100));
    }

    #[test]
    fn interpolation_within_a_single_bucket() {
        let mut h = LatencyHistogram::new();
        // 4 samples, all in bucket [4µs, 8µs).
        for _ in 0..4 {
            h.record(Duration::from_micros(5));
        }
        // rank=2 of 4 → frac 0.25 → 4µs + 0.25·4µs = 5µs, already exact.
        assert_eq!(h.percentile(0.5), Some(Duration::from_micros(5)));
    }
}
