//! Benchmark harness regenerating every table and figure of the LUT-DLA
//! paper.
//!
//! Each experiment is a function returning the rendered report (measured
//! values printed next to the paper's reference numbers). The binaries in
//! `src/bin/` are thin wrappers; `cargo run --release -p lutdla-bench --bin
//! all` regenerates everything and the criterion benches in `benches/`
//! micro-benchmark the underlying kernels.
//!
//! Pass `--quick` to any binary to shrink datasets/epochs for smoke runs.

pub mod arrival;
pub mod artifact;
pub mod common;
pub mod histogram;
pub mod json;
pub mod serve_bench;

/// One generator per paper table/figure.
pub mod experiments {
    /// Accuracy-side experiments (require LUTBoost training).
    pub mod accuracy;
    /// Hardware-side experiments (models + simulator only).
    pub mod hw;
}

/// Parses the conventional `--quick` flag from process args.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Every experiment in paper order, as `(id, generator)`.
pub fn all_experiments(quick: bool) -> Vec<(&'static str, String)> {
    use experiments::{accuracy, hw};
    vec![
        ("fig1", hw::fig1()),
        ("table1", hw::table1()),
        ("fig7", accuracy::fig7(quick)),
        ("table2", accuracy::table2(quick)),
        ("fig8", accuracy::fig8(quick)),
        ("fig9", hw::fig9()),
        ("fig10", hw::fig10()),
        ("fig11", hw::fig11()),
        ("table4", accuracy::table4(quick)),
        ("table4_quant_sweep", accuracy::table4_quant_sweep(quick)),
        ("table5", accuracy::table5(quick)),
        ("table6", accuracy::table6(quick)),
        ("fig12", accuracy::fig12(quick)),
        ("table7", hw::table7()),
        ("table8", hw::table8()),
        ("table9", hw::table9()),
        ("fig13", hw::fig13()),
        ("fig14", hw::fig14()),
        ("ablation_hw", hw::ablation_hw()),
        ("metric_sweep", accuracy::metric_sweep(quick)),
        ("ablation_train", accuracy::ablation_train(quick)),
        ("centroid_share", accuracy::centroid_share(quick)),
    ]
}

#[cfg(test)]
mod tests {
    use super::experiments::hw;

    // Hardware-side generators are cheap; smoke-test them all.
    #[test]
    fn fig1_renders() {
        let s = hw::fig1();
        assert!(s.contains("INT MULT") && s.contains("V=16"));
    }

    #[test]
    fn table1_renders() {
        let s = hw::table1();
        assert!(s.contains("LUT-Stationary"));
    }

    #[test]
    fn fig9_and_10_render() {
        assert!(hw::fig9().contains("Chebyshev"));
        assert!(hw::fig10().contains("speedup"));
    }

    #[test]
    fn fig11_finds_a_design() {
        let s = hw::fig11();
        assert!(s.contains("searched design"), "{s}");
    }

    #[test]
    fn tables_7_8_9_render() {
        assert!(hw::table7().contains("Design1"));
        assert!(hw::table8().contains("NVDLA-Large"));
        assert!(hw::table9().contains("PQA"));
    }

    #[test]
    fn ablation_hw_orders_variants() {
        let s = hw::ablation_hw();
        assert!(s.contains("ping-pong"));
        assert!(s.contains("whole-layer LUT"));
    }
}
