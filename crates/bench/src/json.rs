//! A minimal JSON reader for validating bench artifacts.
//!
//! The workspace vendors no `serde_json` (all dependencies are offline
//! path shims), and the artifacts under test are small machine-written
//! documents — so a self-contained recursive-descent parser keeps the
//! `--check` gate dependency-free. It accepts strict JSON (no comments,
//! no trailing commas) and rejects trailing garbage.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (bench artifacts carry no values
    /// outside its exact range).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys are preserved —
    /// validation treats them as distinct fields).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the document.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in bench
                            // artifacts; map them to the replacement
                            // character rather than failing the check on
                            // an exotic-but-legal document.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever advances in
                    // whole scalars, so the slice is boundary-aligned.
                    let ch = self.text[self.pos..]
                        .chars()
                        .next()
                        .expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, -2.5e1, "x\n"], "b": {"c": true, "d": null}}"#;
        let v = Json::parse(doc).expect("valid");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]",
            r#"{"a" 1}"#,
            r#"{"a": 1} trailing"#,
            r#"{"a": 01x}"#,
            "\"unterminated",
            r#""bad \q escape""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn parse_error_reports_offset() {
        let err = Json::parse("[1, }").expect_err("malformed");
        assert!(err.offset >= 4, "offset {} points at the brace", err.offset);
        assert!(err.to_string().contains("byte"));
    }
}
