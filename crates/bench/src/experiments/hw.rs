//! Hardware-side experiment generators (no training required):
//! Fig. 1, Table I, Fig. 9, Fig. 10, Fig. 11, Table VII, Table VIII,
//! Table IX, Fig. 13, Fig. 14.

use lutdla_core::prelude::*;
use lutdla_core::{end_to_end, fnum, TextTable};
use lutdla_hwmodel::alu_eff::{alu_series, lut_series, AluKind};
use lutdla_hwmodel::{dpe_cost, CostModel};
use lutdla_models::zoo::TransformerGemmOpts;
use lutdla_sim::memory_footprint;

/// Fig. 1: LUT vs ALU area/power efficiency across (equivalent) bitwidths.
pub fn fig1() -> String {
    let node = TechNode::N28;
    let bits = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let mut out = String::from(
        "Fig. 1 — Area & power efficiency: LUT-based approximate computing vs ALU\n\
         (28 nm, per-cycle basis; paper claims LUT gains of 1–5 orders in OPs/mm²\n\
         and 1–2 orders in OPs/pJ)\n\n",
    );

    let mut alu = TextTable::new(["ALU", "bits", "OPs/mm2", "OPs/pJ"]);
    for kind in [
        AluKind::IntAdd,
        AluKind::IntMult,
        AluKind::FpAdd,
        AluKind::FpMult,
    ] {
        for p in alu_series(node, kind, &bits) {
            alu.row([
                kind.to_string(),
                fnum(p.bits),
                fnum(p.ops_per_mm2),
                fnum(p.ops_per_pj),
            ]);
        }
    }
    out.push_str(&alu.render());
    out.push('\n');

    let mut lut = TextTable::new(["LUT config", "equiv. bits", "OPs/mm2", "OPs/pJ"]);
    for v in [2usize, 4, 8, 16] {
        for p in lut_series(node, v, &[8, 16, 32, 64, 128, 256, 512]) {
            let c = (2f64.powf(p.bits * v as f64)).round() as usize;
            lut.row([
                format!("V={v}, C={c}"),
                format!("{:.3}", p.bits),
                fnum(p.ops_per_mm2),
                fnum(p.ops_per_pj),
            ]);
        }
    }
    out.push_str(&lut.render());

    // Headline gains.
    let best_lut = lut_series(node, 16, &[8])[0];
    let int8_mult = alu_series(node, AluKind::IntMult, &[8.0])[0];
    let fp32_mult = alu_series(node, AluKind::FpMult, &[32.0])[0];
    out.push_str(&format!(
        "\nheadline: LUT(V=16,C=8) vs INT8 MULT: {:.0}x area-eff, {:.0}x power-eff\n\
         headline: LUT(V=16,C=8) vs FP32 MULT: {:.0}x area-eff, {:.0}x power-eff\n",
        best_lut.ops_per_mm2 / int8_mult.ops_per_mm2,
        best_lut.ops_per_pj / int8_mult.ops_per_pj,
        best_lut.ops_per_mm2 / fp32_mult.ops_per_mm2,
        best_lut.ops_per_pj / fp32_mult.ops_per_pj,
    ));
    out
}

/// Table I: dataflow impact on on-chip memory (M=512, K=N=768, v=4, c=32).
pub fn table1() -> String {
    let g = Gemm::new(512, 768, 768);
    let p = DataflowParams::table1();
    let paper: [(&str, f64); 6] = [
        ("MNK", 2064.1),
        ("NMK", 2090.9),
        ("MKN", 2064.8),
        ("KMN", 408.0),
        ("KNM", 385.3),
        ("LUT-Stationary", 17.3),
    ];
    let mut t = TextTable::new([
        "Dataflow",
        "Scratchpad KB",
        "Indices KB",
        "PSumLUT KB",
        "Total KB",
        "Paper total KB",
    ]);
    for (df, (pname, ptotal)) in Dataflow::ALL.iter().zip(paper) {
        let f = memory_footprint(*df, &g, &p);
        assert_eq!(df.to_string(), pname);
        t.row([
            df.to_string(),
            fnum(f.scratchpad / 1024.0),
            format!("{:.2}", f.indices / 1024.0),
            fnum(f.psum_lut / 1024.0),
            fnum(f.total_kb()),
            fnum(ptotal),
        ]);
    }
    format!(
        "Table I — Dataflow impact on on-chip memory (M=512, K=N=768, v=4, c=32)\n\
         (paper entry precision is unstated; ours is INT8 — the ordering and the\n\
         ~2-order gap between K-inner orders and LUT-Stationary are the results)\n\n{}",
        t.render()
    )
}

/// Fig. 9: dPE area/power vs similarity metric and vector length.
pub fn fig9() -> String {
    let m = CostModel::new(TechNode::N28);
    let freq_hz = 300e6;
    let mut left = TextTable::new(["Metric", "Precision", "Area mm2 (v=8)", "Power mW (v=8)"]);
    for metric in Metric::ALL {
        for (fmt, name) in [(NumFormat::Fp32, "FP32"), (NumFormat::Fp16, "FP16")] {
            let c = dpe_cost(&m, metric, 8, fmt);
            left.row([
                metric.to_string(),
                name.to_string(),
                format!("{:.5}", c.area_um2 / 1e6),
                format!("{:.4}", c.energy_pj * freq_hz * 1e-9),
            ]);
        }
    }
    let mut right = TextTable::new(["v", "Metric", "Area mm2", "Power mW"]);
    for v in [4usize, 8, 16] {
        for metric in Metric::ALL {
            let c = dpe_cost(&m, metric, v, NumFormat::Fp16);
            right.row([
                v.to_string(),
                metric.to_string(),
                format!("{:.5}", c.area_um2 / 1e6),
                format!("{:.4}", c.energy_pj * freq_hz * 1e-9),
            ]);
        }
    }
    format!(
        "Fig. 9 — dPE hardware overhead (28 nm @ 300 MHz)\n\
         Left: metric/precision at v=8. Right: scaling with vector length.\n\
         (paper: L2 > L1 > Chebyshev; FP16 ≈ several× cheaper than FP32;\n\
         cost ≈ linear in v)\n\n{}\n{}",
        left.render(),
        right.render()
    )
}

/// Fig. 10: expanding a lookup-limited design with more IMMs.
pub fn fig10() -> String {
    let g = Gemm::new(512, 768, 768);
    let base = design1().sim_config();
    let mut t = TextTable::new([
        "nIMM",
        "cycles",
        "IMM util",
        "CCM busy frac",
        "speedup vs 1 IMM",
    ]);
    let mut first_cycles = 0u64;
    for n_imm in [1usize, 2, 4, 8] {
        let cfg = SimConfig { n_imm, ..base };
        let r = simulate_gemm(&cfg, &g);
        if n_imm == 1 {
            first_cycles = r.cycles;
        }
        t.row([
            n_imm.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", r.imm_utilization),
            format!("{:.3}", r.ccm_busy as f64 / r.cycles as f64),
            format!("{:.2}x", first_cycles as f64 / r.cycles as f64),
        ]);
    }
    format!(
        "Fig. 10 — Expanding the lookup-limited design with more IMMs\n\
         (BERT projection GEMM 512×768×768 on Design-1-class hardware; the\n\
         paper's point: doubling IMMs ≈ doubles throughput while reusing the CCM)\n\n{}",
        t.render()
    )
}

/// Fig. 11: the co-design search engine's pruning heatmaps + searched point.
pub fn fig11() -> String {
    use lutdla_dse::{accuracy_heatmap, prune_grid, tau_heatmap};
    let space = SearchSpace::figure11();
    let target = Gemm::new(512, 768, 768);
    let constraints = Constraints {
        min_accuracy: 90.5,
        max_area_mm2: 4.0,
        max_power_mw: 600.0,
        ..Constraints::relaxed()
    };
    let oracle = SurrogateAccuracy::resnet20_cifar10();
    let result = search(&space, &target, &constraints, &oracle);

    let mut out = String::from(
        "Fig. 11 — Co-Design Space Search Engine\n\
         (paper's example search lands on v=3, c=16, nIMM=8, nCCM=2)\n\n",
    );
    out.push_str(&tau_heatmap(&space.vs, &space.cs, &target, Metric::L2).render());
    out.push('\n');
    out.push_str(&accuracy_heatmap(&space.vs, &space.cs, Metric::L2, &oracle).render());
    out.push('\n');
    out.push_str(&prune_grid(&result, Metric::L2, &space.vs, &space.cs));
    out.push('\n');
    if let Some(best) = result.best() {
        out.push_str(&format!(
            "searched design: v={}, c={}, metric={}, nIMM={}, nCCU={} \
             (omega={:.0} cycles, {:.3} mm2, {:.1} mW, est. acc {:.2}%)\n",
            best.config.v,
            best.config.c,
            best.config.metric,
            best.config.n_imm,
            best.config.n_ccu,
            best.omega.omega(),
            best.cost.area_mm2,
            best.cost.power_mw,
            best.accuracy,
        ));
    }
    out
}

/// Table VII: per-IMM settings and resource needs of Designs 1–3.
pub fn table7() -> String {
    let mut t = TextTable::new([
        "Design",
        "V",
        "Nc",
        "Tn",
        "M",
        "SRAM KB (model)",
        "SRAM KB (paper)",
        "BW GB/s (model)",
        "BW GB/s (paper)",
    ]);
    for d in all_designs() {
        let imm = d.hw.imm_config();
        let bw = imm.min_bandwidth_bytes_per_s(d.hw.freq_mhz * 1e6) / 1e9;
        t.row([
            d.name.to_string(),
            d.hw.v.to_string(),
            d.hw.nc.to_string(),
            d.hw.tn.to_string(),
            d.hw.m_rows.to_string(),
            format!("{:.1}", imm.total_kb()),
            format!("{:.1}", d.paper_sram_kb),
            format!("{:.1}", bw),
            format!("{:.1}", d.paper_bandwidth_gbps),
        ]);
    }
    format!(
        "Table VII — IMM settings and resource needs\n\n{}",
        t.render()
    )
}

/// Table VIII: PPA comparison with other accelerators (normalised to 28 nm).
pub fn table8() -> String {
    let mut t = TextTable::new([
        "Accelerator",
        "Tech nm",
        "Freq MHz",
        "Area mm2",
        "Power mW",
        "Perf GOPS",
        "GOPS/mm2 @28nm",
        "GOPS/mW @28nm",
    ]);
    for s in table8_specs() {
        t.row([
            s.name.clone(),
            s.node.0.to_string(),
            fnum(s.freq_mhz),
            fnum(s.area_mm2),
            fnum(s.power_mw),
            fnum(s.perf_gops),
            fnum(s.scaled_gops_per_mm2(TechNode::N28)),
            format!("{:.2}", s.scaled_gops_per_mw(TechNode::N28)),
        ]);
    }
    let mut min_area_gain = f64::INFINITY;
    let mut max_area_gain: f64 = 0.0;
    let mut min_power_gain = f64::INFINITY;
    let mut max_power_gain: f64 = 0.0;
    for d in all_designs() {
        let c = design_cost(&d.hw);
        t.row([
            d.name.to_string(),
            d.hw.node.0.to_string(),
            fnum(d.hw.freq_mhz),
            format!("{:.3}", c.area_mm2),
            fnum(c.power_mw),
            fnum(c.peak_gops),
            fnum(c.gops_per_mm2),
            format!("{:.2}", c.gops_per_mw),
        ]);
        for s in table8_specs() {
            let ag = c.gops_per_mm2 / s.scaled_gops_per_mm2(TechNode::N28);
            let pg = c.gops_per_mw / s.scaled_gops_per_mw(TechNode::N28);
            min_area_gain = min_area_gain.min(ag);
            max_area_gain = max_area_gain.max(ag);
            min_power_gain = min_power_gain.min(pg);
            max_power_gain = max_power_gain.max(pg);
        }
    }
    format!(
        "Table VIII — Comparison with other accelerators\n\
         (paper LUT-DLA rows: 0.755/1.701/3.64 mm², 219.6/315.0/496.4 mW,\n\
         460.8/1228.8/2764.8 GOPS; paper gains: 1.5–146.1x area-eff, 1.4–7.0x power-eff)\n\n{}\n\
         measured gain ranges vs literature rows: area-eff {:.1}–{:.1}x, power-eff {:.1}–{:.1}x\n",
        t.render(),
        min_area_gain,
        max_area_gain,
        min_power_gain,
        max_power_gain,
    )
}

/// Table IX: LUT-DLA vs the PQA execution model.
pub fn table9() -> String {
    let cfg = SimConfig {
        v: 4,
        c: 32,
        tn: 16,
        m_rows: 512,
        nc_buffer: 192,
        n_ccu: 2,
        n_imm: 1,
        ..design3().sim_config()
    };
    let g = Gemm::new(512, 768, 768);
    let ls = simulate_gemm(&cfg, &g);
    let pqa = simulate_pqa(&cfg, &g);
    let ls_onchip_kb = (2 * cfg.bank_bytes()
        + (cfg.m_rows * cfg.tn) as u64 * cfg.acc_bits as u64 / 8
        + (cfg.m_rows * 192) as u64 * 5 / 8) as f64
        / 1024.0;
    let pqa_kb = pqa_onchip_bytes(&cfg, &g) as f64 / 1024.0;

    let mut t = TextTable::new([
        "Design",
        "On-chip mem KB",
        "Cycles (k)",
        "Paper mem KB",
        "Paper cycles (k)",
    ]);
    t.row([
        "PQA".to_string(),
        fnum(pqa_kb),
        fnum(pqa.cycles as f64 / 1e3),
        "6912.25".to_string(),
        "7864".to_string(),
    ]);
    t.row([
        "LUT-DLA (LS)".to_string(),
        fnum(ls_onchip_kb),
        fnum(ls.cycles as f64 / 1e3),
        "10.5".to_string(),
        "4743".to_string(),
    ]);
    format!(
        "Table IX — Comparison with the PQA LUT-based accelerator\n\
         (GEMM 512×768×768, c=32, v=4, 16 lookup lanes; the paper's PQA pause\n\
         magnitude depends on its FPGA memory system — at DDR4 bandwidth the\n\
         pause shrinks, the on-chip-memory gap does not)\n\n{}",
        t.render()
    )
}

/// Fig. 13: end-to-end throughput and energy across workloads and designs.
pub fn fig13() -> String {
    let designs: Vec<(String, SimConfig)> = all_designs()
        .iter()
        .map(|d| (d.name.to_string(), d.sim_config()))
        .collect();
    let workloads = [
        zoo::resnet_imagenet(18, 1000),
        zoo::resnet_imagenet(34, 1000),
        zoo::resnet50(1000),
        zoo::bert_base(TransformerGemmOpts::default()),
    ];
    let mut t = TextTable::new([
        "Workload",
        "Design",
        "time ms",
        "GOPS",
        "chip energy mJ",
        "speedup vs NVDLA-L",
        "energy vs NVDLA-L",
    ]);
    let mut out = String::from(
        "Fig. 13 — End-to-end throughput and energy (batch 1, DDR4 25.6 GB/s)\n\
         (paper: Design2 beats NVDLA-Large on ResNets with ~11x less energy;\n\
         Design3 up to 72x faster on BERT with 11.5x less energy)\n\n",
    );
    for w in &workloads {
        let e = end_to_end(w, 1, &designs);
        let nvdla_t = e.nvdla_large.time_s;
        let nvdla_e = e.nvdla_large.chip_energy_mj;
        t.row([
            w.name.clone(),
            "NVDLA-Small".to_string(),
            fnum(e.nvdla_small.time_s * 1e3),
            fnum(e.nvdla_small.gops),
            fnum(e.nvdla_small.chip_energy_mj),
            format!("{:.2}x", nvdla_t / e.nvdla_small.time_s),
            format!("{:.2}x", e.nvdla_small.chip_energy_mj / nvdla_e),
        ]);
        t.row([
            w.name.clone(),
            "NVDLA-Large".to_string(),
            fnum(nvdla_t * 1e3),
            fnum(e.nvdla_large.gops),
            fnum(nvdla_e),
            "1.00x".to_string(),
            "1.00x".to_string(),
        ]);
        t.row([
            w.name.clone(),
            "Gemmini".to_string(),
            fnum(e.gemmini.time_s * 1e3),
            fnum(e.gemmini.gops),
            fnum(e.gemmini.chip_energy_mj),
            format!("{:.2}x", nvdla_t / e.gemmini.time_s),
            format!("{:.2}x", e.gemmini.chip_energy_mj / nvdla_e),
        ]);
        for (name, r) in &e.lutdla {
            t.row([
                w.name.clone(),
                name.clone(),
                fnum(r.time_s * 1e3),
                fnum(r.effective_gops()),
                fnum(r.energy.chip_mj()),
                format!("{:.2}x", nvdla_t / r.time_s),
                format!("{:.2}x", r.energy.chip_mj() / nvdla_e),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Fig. 14: normalised performance / area-efficiency / energy-efficiency.
pub fn fig14() -> String {
    let designs: Vec<(String, SimConfig)> = all_designs()
        .iter()
        .map(|d| (d.name.to_string(), d.sim_config()))
        .collect();
    let areas: Vec<f64> = all_designs()
        .iter()
        .map(|d| design_cost(&d.hw).area_mm2)
        .collect();
    let workloads = [
        zoo::bert_base(TransformerGemmOpts::default()),
        zoo::resnet_imagenet(18, 1000),
    ];
    let mut out = String::from(
        "Fig. 14 — PPA analysis, normalised to NVDLA-Small = 1.0\n\
         (paper: Design1 is 6.2x/12.0x faster than NVDLA-Small on BERT/ResNet18\n\
         at similar area; area-eff gains 2.5x/4.8x, energy-eff 1.1x/4.01x)\n\n",
    );
    for w in &workloads {
        let e = end_to_end(w, 1, &designs);
        let base_t = e.nvdla_small.time_s;
        let base_area_eff = 1.0 / (base_t * 0.91);
        let base_energy_eff = 1.0 / e.nvdla_small.chip_energy_mj;
        let mut t = TextTable::new(["Design", "norm. perf", "norm. area-eff", "norm. energy-eff"]);
        t.row([
            "NVDLA-Small".to_string(),
            "1.00".to_string(),
            "1.00".to_string(),
            "1.00".to_string(),
        ]);
        t.row([
            "NVDLA-Large".to_string(),
            format!("{:.2}", base_t / e.nvdla_large.time_s),
            format!(
                "{:.2}",
                (1.0 / (e.nvdla_large.time_s * 5.5)) / base_area_eff
            ),
            format!(
                "{:.2}",
                (1.0 / e.nvdla_large.chip_energy_mj) / base_energy_eff
            ),
        ]);
        t.row([
            "Gemmini".to_string(),
            format!("{:.2}", base_t / e.gemmini.time_s),
            format!("{:.2}", (1.0 / (e.gemmini.time_s * 1.21)) / base_area_eff),
            format!("{:.2}", (1.0 / e.gemmini.chip_energy_mj) / base_energy_eff),
        ]);
        for ((name, r), area) in e.lutdla.iter().zip(&areas) {
            t.row([
                name.clone(),
                format!("{:.2}", base_t / r.time_s),
                format!("{:.2}", (1.0 / (r.time_s * area)) / base_area_eff),
                format!("{:.2}", (1.0 / r.energy.chip_mj()) / base_energy_eff),
            ]);
        }
        out.push_str(&format!("workload: {}\n{}\n", w.name, t.render()));
    }
    out
}

/// Design-choice ablation: LS dataflow vs PQA buffering vs no-overlap, and
/// clock-domain decoupling (the DESIGN.md ablation bench).
pub fn ablation_hw() -> String {
    let g = Gemm::new(512, 768, 768);
    let base = design2().sim_config();
    let mut t = TextTable::new(["Variant", "cycles", "vs base", "on-chip note"]);
    let b = simulate_gemm(&base, &g);
    t.row([
        "LS + ping-pong (base)".to_string(),
        b.cycles.to_string(),
        "1.00x".to_string(),
        "2 banks".to_string(),
    ]);
    let no_overlap = simulate_gemm(
        &SimConfig {
            overlap_load: false,
            ..base
        },
        &g,
    );
    t.row([
        "no ping-pong".to_string(),
        no_overlap.cycles.to_string(),
        format!("{:.2}x", no_overlap.cycles as f64 / b.cycles as f64),
        "1 bank".to_string(),
    ]);
    let pqa = simulate_pqa(&base, &g);
    t.row([
        "whole-layer LUT (PQA)".to_string(),
        pqa.cycles.to_string(),
        format!("{:.2}x", pqa.cycles as f64 / b.cycles as f64),
        "full table resident".to_string(),
    ]);
    let slow_ccm = simulate_gemm(
        &SimConfig {
            ccm_clock_mult: 1,
            ..base
        },
        &g,
    );
    t.row([
        "CCM at IMM clock".to_string(),
        slow_ccm.cycles.to_string(),
        format!("{:.2}x", slow_ccm.cycles as f64 / b.cycles as f64),
        "no clock decoupling".to_string(),
    ]);
    let starved = simulate_gemm(
        &SimConfig {
            bw_bytes_per_cycle: base.bw_bytes_per_cycle / 16.0,
            ..base
        },
        &g,
    );
    t.row([
        "1/16 bandwidth".to_string(),
        starved.cycles.to_string(),
        format!("{:.2}x", starved.cycles as f64 / b.cycles as f64),
        "load-bound regime".to_string(),
    ]);
    format!(
        "Ablation — architectural choices on the Table IX GEMM (Design 2)\n\n{}",
        t.render()
    )
}
