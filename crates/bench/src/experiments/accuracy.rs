//! Accuracy-side experiment generators (LUTBoost training on the synthetic
//! proxies): Fig. 7, Table II, Fig. 8, Table IV, Table V, Table VI,
//! Fig. 12, and the training-side ablations.
//!
//! Absolute numbers depend on the synthetic tasks (see DESIGN.md); each
//! generator prints the paper's reference values alongside so the *shape*
//! (orderings, gaps) can be compared directly.

use lutdla_core::TextTable;
use lutdla_lutboost::{eval_images_deployed, DeployConfig, LutConfig, LutRuntime, Strategy};
use lutdla_nn::data::{ImageTaskConfig, SeqTaskConfig};
use lutdla_vq::{lock_engine, Distance, FloatPrecision, LutQuant};

use crate::common::{
    image_task, pretrain_epochs, schedule, seq_task, CnnKind, PretrainedCnn, PretrainedTransformer,
    TransformerKind,
};

fn lut(v: usize, c: usize, d: Distance) -> LutConfig {
    LutConfig {
        v,
        c,
        distance: d,
        recon_weight: 0.05,
    }
}

/// Fig. 7: multistage vs single-stage training-loss trajectories.
pub fn fig7(quick: bool) -> String {
    let pre = PretrainedTransformer::train(
        TransformerKind::Bert,
        &seq_task(quick, SeqTaskConfig::glue_proxy(0, 4)),
        pretrain_epochs(quick),
    );
    let sched = schedule(quick);
    let cfg = lut(4, 16, Distance::L2);
    let (multi, _, _) = pre.convert(Strategy::Multistage, cfg, &sched, 42);
    let (single, _, _) = pre.convert(Strategy::SingleStage, cfg, &sched, 42);

    let mut t = TextTable::new(["epoch", "multistage loss", "single-stage loss"]);
    let n = multi.epoch_losses.len().max(single.epoch_losses.len());
    for i in 0..n {
        let stage_tag = if i < multi.joint_start {
            " (centroid)"
        } else {
            ""
        };
        t.row([
            format!("{i}{stage_tag}"),
            multi
                .epoch_losses
                .get(i)
                .map(|l| format!("{l:.4}"))
                .unwrap_or_default(),
            single
                .epoch_losses
                .get(i)
                .map(|l| format!("{l:.4}"))
                .unwrap_or_default(),
        ]);
    }
    format!(
        "Fig. 7 — Multistage vs single-stage conversion training (BERT proxy, v=4, c=16)\n\
         (paper: the multistage curve drops sharply during centroid calibration and\n\
         converges lower; final accuracies here: multistage {:.1}%, single-stage {:.1}%,\n\
         dense baseline {:.1}%)\n\n{}",
        multi.test_accuracy,
        single.test_accuracy,
        pre.baseline_acc,
        t.render()
    )
}

/// Table II: LUTBoost multistage vs single-stage, L2/L1, ResNet-20/32/56.
pub fn table2(quick: bool) -> String {
    let data = image_task(quick, ImageTaskConfig::cifar100_proxy());
    let sched = schedule(quick);
    let mut t = TextTable::new([
        "Model",
        "Single L2",
        "Single L1",
        "Multi L2",
        "Multi L1",
        "Baseline",
    ]);
    let kinds = if quick {
        vec![CnnKind::ResNet20]
    } else {
        vec![CnnKind::ResNet20, CnnKind::ResNet32, CnnKind::ResNet56]
    };
    for kind in kinds {
        let pre = PretrainedCnn::train(kind, &data, pretrain_epochs(quick));
        let acc = |strategy, d, seed| {
            let (o, _, _) = pre.convert(strategy, lut(4, 16, d), &sched, seed);
            o.test_accuracy
        };
        let s_l2 = acc(Strategy::SingleStage, Distance::L2, 1);
        let s_l1 = acc(Strategy::SingleStage, Distance::L1, 2);
        let m_l2 = acc(Strategy::Multistage, Distance::L2, 3);
        let m_l1 = acc(Strategy::Multistage, Distance::L1, 4);
        t.row([
            kind.name().to_string(),
            format!("{s_l2:.2}"),
            format!("{s_l1:.2}"),
            format!("{m_l2:.2} ({:+.2})", m_l2 - s_l2),
            format!("{m_l1:.2} ({:+.2})", m_l1 - s_l1),
            format!("{:.2}", pre.baseline_acc),
        ]);
    }
    format!(
        "Table II — LUTBoost training evaluation (CIFAR-100 proxy)\n\
         (paper: multistage gains +3.3–5.8% in L2 and +5.6–7.2% in L1 over\n\
         single-stage on ResNet-20/32/56)\n\n{}",
        t.render()
    )
}

/// Fig. 8: sensitivity to centroid count and vector length.
pub fn fig8(quick: bool) -> String {
    let data = image_task(quick, ImageTaskConfig::cifar10_proxy());
    let sched = schedule(quick);
    let pre = PretrainedCnn::train(CnnKind::ResNet20, &data, pretrain_epochs(quick));

    let mut left = TextTable::new(["c (v=4)", "L2 acc", "L1 acc"]);
    let cs: &[usize] = if quick { &[8, 64] } else { &[8, 16, 32, 64] };
    for &c in cs {
        let (l2, _, _) = pre.convert(Strategy::Multistage, lut(4, c, Distance::L2), &sched, 10);
        let (l1, _, _) = pre.convert(Strategy::Multistage, lut(4, c, Distance::L1), &sched, 11);
        left.row([
            c.to_string(),
            format!("{:.2}", l2.test_accuracy),
            format!("{:.2}", l1.test_accuracy),
        ]);
    }
    let mut right = TextTable::new(["v (c=16)", "L2 acc", "L1 acc"]);
    let vs: &[usize] = if quick { &[3, 9] } else { &[3, 6, 9] };
    for &v in vs {
        let (l2, _, _) = pre.convert(Strategy::Multistage, lut(v, 16, Distance::L2), &sched, 12);
        let (l1, _, _) = pre.convert(Strategy::Multistage, lut(v, 16, Distance::L1), &sched, 13);
        right.row([
            v.to_string(),
            format!("{:.2}", l2.test_accuracy),
            format!("{:.2}", l1.test_accuracy),
        ]);
    }
    format!(
        "Fig. 8 — Sensitivity analysis (ResNet-20 proxy on CIFAR-10 proxy; baseline {:.2}%)\n\
         (paper: accuracy rises with c and saturates ≈32; shorter v scores higher)\n\n{}\n{}",
        pre.baseline_acc,
        left.render(),
        right.render()
    )
}

/// Table IV: accuracy of LUT-based models, FP32 vs BF16+INT8 deployments.
pub fn table4(quick: bool) -> String {
    let sched = schedule(quick);
    let mut t = TextTable::new([
        "Model/Dataset",
        "FP32 L2",
        "FP32 L1",
        "BF16+INT8 L2",
        "BF16+INT8 L1",
        "Baseline",
    ]);
    let cases: Vec<(CnnKind, &str, ImageTaskConfig)> = if quick {
        vec![(
            CnnKind::ResNet20,
            "CIFAR10*",
            ImageTaskConfig::cifar10_proxy(),
        )]
    } else {
        vec![
            (
                CnnKind::ResNet20,
                "CIFAR10*",
                ImageTaskConfig::cifar10_proxy(),
            ),
            (
                CnnKind::ResNet20,
                "CIFAR100*",
                ImageTaskConfig::cifar100_proxy(),
            ),
            (
                CnnKind::ResNet32,
                "CIFAR10*",
                ImageTaskConfig::cifar10_proxy(),
            ),
            (
                CnnKind::ResNet56,
                "CIFAR10*",
                ImageTaskConfig::cifar10_proxy(),
            ),
            (
                CnnKind::ResNet18,
                "Tiny-ImageNet*",
                ImageTaskConfig::tiny_imagenet_proxy(),
            ),
            (CnnKind::Vgg11, "CIFAR10*", ImageTaskConfig::cifar10_proxy()),
            (CnnKind::LeNet, "MNIST*", ImageTaskConfig::mnist_proxy()),
        ]
    };
    for (kind, ds, mut data) in cases {
        if kind == CnnKind::LeNet {
            data.channels = 1;
        }
        let data = image_task(quick, data);
        let pre = PretrainedCnn::train(kind, &data, pretrain_epochs(quick));
        let run = |d: Distance, seed| {
            let (o, net, ps) = pre.convert(Strategy::Multistage, lut(4, 16, d), &sched, seed);
            let fp32 = o.test_accuracy;
            let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
            let int8 =
                eval_images_deployed(&mut rt, &net, &ps, &pre.test, 32, DeployConfig::bf16_int8())
                    * 100.0;
            (fp32, int8)
        };
        let (l2_fp, l2_i8) = run(Distance::L2, 20);
        let (l1_fp, l1_i8) = run(Distance::L1, 21);
        t.row([
            format!("{} {ds}", kind.name()),
            format!("{l2_fp:.2}"),
            format!("{l1_fp:.2}"),
            format!("{l2_i8:.2}"),
            format!("{l1_i8:.2}"),
            format!("{:.2}", pre.baseline_acc),
        ]);
    }
    format!(
        "Table IV — Accuracy of LUT-based models (datasets marked * are synthetic proxies)\n\
         (paper: FP32 within 0.1–3.1% of baseline; BF16+INT8 costs <1% more)\n\n{}",
        t.render()
    )
}

/// Table-IV-style quantization sweep with a **shared encode**: one
/// converted model evaluated at every [`LutQuant`] while the datapath
/// precision is held fixed. Codes depend only on the codebook and the
/// datapath precision — never on the table quantization — so the sweep
/// encodes each layer **once** and replays the packed stream against every
/// quant's table ([`lutdla_vq::LutEngine::run_many_from_packed`]), instead
/// of paying the similarity walk once per combo. The generator times both
/// executions over the same activations, checks them bit-identical, and
/// reports the measured speedup.
pub fn table4_quant_sweep(quick: bool) -> String {
    let data = image_task(quick, ImageTaskConfig::cifar10_proxy());
    let sched = schedule(quick);
    let pre = PretrainedCnn::train(CnnKind::ResNet20, &data, pretrain_epochs(quick));
    let (_, net, ps) = pre.convert(Strategy::Multistage, lut(4, 16, Distance::L2), &sched, 20);

    // Accuracy per table quantization, datapath pinned at FP32. One
    // runtime serves the whole sweep, so its cache ends up holding every
    // layer's engine at each quant — the groups `engines_sharing_codes`
    // hands back below.
    let quants = [LutQuant::F32, LutQuant::F16, LutQuant::Int8];
    let mut rt = LutRuntime::new(DeployConfig::fp32());
    let mut t = TextTable::new(["LUT quant", "accuracy % (FP32 datapath)"]);
    for quant in quants {
        let cfg = DeployConfig {
            lut_quant: quant,
            precision: FloatPrecision::Fp32,
        };
        let acc = eval_images_deployed(&mut rt, &net, &ps, &pre.test, 32, cfg) * 100.0;
        t.row([format!("{quant:?}"), format!("{acc:.2}")]);
    }

    // The encode-once measurement: every cached group holds one layer's
    // engines across the three quants (same codebook, same precision). Per
    // layer, time "walk once per combo" against "walk once, replay the
    // packed codes through every table", over identical activations.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let rows = if quick { 128 } else { 512 };
    let mut naive_nanos = 0u128;
    let mut shared_nanos = 0u128;
    let mut layers = 0usize;
    for group in rt.engines_sharing_codes() {
        if group.len() < 2 {
            continue;
        }
        layers += 1;
        let k = lock_engine(&group[0]).input_dim();
        let x = lutdla_tensor::Tensor::rand_uniform(&mut rng, &[rows, k], -1.0, 1.0);

        let start = std::time::Instant::now();
        let naive: Vec<_> = group.iter().map(|e| lock_engine(e).run_batch(&x)).collect();
        naive_nanos += start.elapsed().as_nanos();

        let start = std::time::Instant::now();
        let mut first = lock_engine(&group[0]);
        let rest: Vec<_> = group[1..].iter().map(lock_engine).collect();
        let tables: Vec<_> = rest.iter().map(|e| e.tables()).collect();
        let packed = first.encode_packed(&x);
        let head = first.run_from_packed(&packed).expect("own codes fit");
        let tail = first
            .run_many_from_packed(&packed, &tables)
            .expect("grouped tables share the codebook");
        shared_nanos += start.elapsed().as_nanos();

        let shared: Vec<_> = std::iter::once(head).chain(tail).collect();
        for (quant, (a, b)) in quants.iter().zip(naive.iter().zip(&shared)) {
            assert_eq!(
                a.data(),
                b.data(),
                "{quant:?}: shared-encode sweep diverged from per-combo encode"
            );
        }
    }
    let speedup = naive_nanos as f64 / shared_nanos.max(1) as f64;
    format!(
        "Table IV (encode-once) — LUT-quant sweep at a fixed FP32 datapath\n\
         (codes are quant-independent, so the sweep encodes once per layer and\n\
         replays the packed stream against every quant's table; both paths are\n\
         checked bit-identical here)\n\n{}\n\
         shared-encode sweep over {} layer(s) × {} quants, {} rows/layer:\n\
         per-combo encode {:.2} ms → encode-once {:.2} ms ({speedup:.2}x)\n",
        t.render(),
        layers,
        quants.len(),
        rows,
        naive_nanos as f64 / 1e6,
        shared_nanos as f64 / 1e6,
    )
}

/// Table V: accuracy vs equivalent bitwidth.
pub fn table5(quick: bool) -> String {
    let data = image_task(quick, ImageTaskConfig::cifar10_proxy());
    let sched = schedule(quick);
    let pre = PretrainedCnn::train(CnnKind::ResNet20, &data, pretrain_epochs(quick));
    let params: &[(usize, usize)] = if quick {
        &[(9, 8), (3, 16)]
    } else {
        &[(9, 8), (9, 16), (6, 8), (6, 16), (3, 8), (3, 16)]
    };
    let mut t = TextTable::new(["v", "c", "equiv. bits", "L2 acc", "L1 acc"]);
    for &(v, c) in params {
        let bits = (c as f64).log2().ceil() / v as f64;
        let (l2, _, _) = pre.convert(Strategy::Multistage, lut(v, c, Distance::L2), &sched, 30);
        let (l1, _, _) = pre.convert(Strategy::Multistage, lut(v, c, Distance::L1), &sched, 31);
        t.row([
            v.to_string(),
            c.to_string(),
            format!("{bits:.2}"),
            format!("{:.2}", l2.test_accuracy),
            format!("{:.2}", l1.test_accuracy),
        ]);
    }
    format!(
        "Table V — Bitwidth and similarity evaluation (ResNet-20 proxy, baseline {:.2}%)\n\
         (paper: accuracy grows with equivalent bitwidth, 0.3 bit → 1.3 bit spans\n\
         87.8% → 90.8% under L2)\n\n{}",
        pre.baseline_acc,
        t.render()
    )
}

/// Table VI: transformer accuracy on the GLUE-proxy suite.
pub fn table6(quick: bool) -> String {
    let sched = schedule(quick);
    let mut t = TextTable::new(["Model", "Task", "Baseline", "L2", "L1"]);
    let kinds = if quick {
        vec![TransformerKind::DistilBert]
    } else {
        vec![
            TransformerKind::Bert,
            TransformerKind::Opt125m,
            TransformerKind::DistilBert,
        ]
    };
    let tasks: &[(u64, usize, &str)] = if quick {
        &[(0, 2, "SST-2*")]
    } else {
        &[
            (0, 2, "SST-2*"),
            (1, 2, "QQP*"),
            (2, 2, "QNLI*"),
            (3, 3, "MNLI*"),
            (4, 2, "MRPC*"),
            (5, 2, "STS-B*"),
        ]
    };
    for kind in kinds {
        let mut sums = [0.0f32; 3];
        for &(seed, classes, task) in tasks {
            let pre = PretrainedTransformer::train(
                kind,
                &seq_task(quick, SeqTaskConfig::glue_proxy(seed, classes)),
                pretrain_epochs(quick),
            );
            let (l2, _, _) =
                pre.convert(Strategy::Multistage, lut(4, 16, Distance::L2), &sched, seed);
            let (l1, _, _) = pre.convert(
                Strategy::Multistage,
                lut(4, 16, Distance::L1),
                &sched,
                seed + 50,
            );
            sums[0] += pre.baseline_acc;
            sums[1] += l2.test_accuracy;
            sums[2] += l1.test_accuracy;
            t.row([
                kind.name().to_string(),
                task.to_string(),
                format!("{:.1}", pre.baseline_acc),
                format!("{:.1}", l2.test_accuracy),
                format!("{:.1}", l1.test_accuracy),
            ]);
        }
        let n = tasks.len() as f32;
        t.row([
            kind.name().to_string(),
            "Average".to_string(),
            format!("{:.1}", sums[0] / n),
            format!("{:.1}", sums[1] / n),
            format!("{:.1}", sums[2] / n),
        ]);
    }
    format!(
        "Table VI — LUT-based transformer accuracy on GLUE proxies (tasks marked *)\n\
         (paper: L2 within ~2.6% and L1 within ~3.0% of baseline on average)\n\n{}",
        t.render()
    )
}

/// Fig. 12: LUTBoost vs the PECAN/PQA-style from-scratch training.
pub fn fig12(quick: bool) -> String {
    let data = image_task(quick, ImageTaskConfig::cifar10_proxy());
    let sched = schedule(quick);
    let pre = PretrainedCnn::train(CnnKind::ResNet20, &data, pretrain_epochs(quick));
    let settings: &[(usize, usize)] = if quick {
        &[(3, 16)]
    } else {
        &[(9, 8), (9, 16), (3, 8), (3, 16)]
    };
    let mut t = TextTable::new([
        "Setting",
        "From-scratch (PECAN/PQA-style)",
        "Ours L1",
        "Ours L2",
        "Baseline",
    ]);
    for &(v, c) in settings {
        let (scratch, _, _) =
            pre.convert(Strategy::FromScratch, lut(v, c, Distance::L2), &sched, 60);
        let (l1, _, _) = pre.convert(Strategy::Multistage, lut(v, c, Distance::L1), &sched, 61);
        let (l2, _, _) = pre.convert(Strategy::Multistage, lut(v, c, Distance::L2), &sched, 62);
        t.row([
            format!("v={v}, c={c}"),
            format!("{:.2}", scratch.test_accuracy),
            format!("{:.2}", l1.test_accuracy),
            format!("{:.2}", l2.test_accuracy),
            format!("{:.2}", pre.baseline_acc),
        ]);
    }
    format!(
        "Fig. 12 — Comparison with PECAN/PQA (from-scratch conversion baselines)\n\
         (paper: LUTBoost beats PECAN by 2.5–8.2% and PQA by 3.7–8.4%)\n\n{}",
        t.render()
    )
}

/// Similarity-metric sweep including Chebyshev (the §VII-A text claims
/// CNN drops of 0.1–3.1% for L2, 0.1–3.4% for L1, 0.1–3.8% for Chebyshev).
pub fn metric_sweep(quick: bool) -> String {
    let data = image_task(quick, ImageTaskConfig::cifar10_proxy());
    let sched = schedule(quick);
    let pre = PretrainedCnn::train(CnnKind::ResNet20, &data, pretrain_epochs(quick));
    let mut t = TextTable::new(["Metric", "accuracy %", "drop vs baseline"]);
    for d in [Distance::L2, Distance::L1, Distance::Chebyshev] {
        let (o, _, _) = pre.convert(Strategy::Multistage, lut(4, 16, d), &sched, 90);
        t.row([
            d.to_string(),
            format!("{:.2}", o.test_accuracy),
            format!("{:+.2}", o.test_accuracy - pre.baseline_acc),
        ]);
    }
    format!(
        "Metric sweep — accuracy under L2/L1/Chebyshev similarity (ResNet-20 proxy,\n\
         baseline {:.2}%; paper: drops of ≤3.1% / ≤3.4% / ≤3.8% respectively)\n\n{}",
        pre.baseline_acc,
        t.render()
    )
}

/// Training-side ablations: reconstruction loss on/off, k-means vs random
/// init (the design choices DESIGN.md calls out).
pub fn ablation_train(quick: bool) -> String {
    use lutdla_lutboost::as_lut_mut;
    let data = image_task(quick, ImageTaskConfig::cifar10_proxy());
    let sched = schedule(quick);
    let pre = PretrainedCnn::train(CnnKind::ResNet20, &data, pretrain_epochs(quick));

    // Full multistage.
    let (full, mut full_net, _full_ps) =
        pre.convert(Strategy::Multistage, lut(4, 16, Distance::L2), &sched, 70);
    // No reconstruction loss.
    let (no_recon, _, _) = pre.convert(
        Strategy::Multistage,
        LutConfig {
            recon_weight: 0.0,
            ..lut(4, 16, Distance::L2)
        },
        &sched,
        70,
    );
    // Random init + multistage schedule (isolates the k-means contribution).
    let (rand_init, _, _) =
        pre.convert(Strategy::SingleStage, lut(4, 16, Distance::L2), &sched, 70);

    // Exercise the ablation switch API on the converted model.
    for unit in full_net.dense_units_mut() {
        if let Some(l) = as_lut_mut(unit) {
            l.set_recon_enabled(false);
        }
    }

    let mut t = TextTable::new(["Variant", "accuracy %", "delta vs full"]);
    t.row([
        "multistage + recon (full)".to_string(),
        format!("{:.2}", full.test_accuracy),
        "0.00".to_string(),
    ]);
    t.row([
        "no reconstruction loss".to_string(),
        format!("{:.2}", no_recon.test_accuracy),
        format!("{:+.2}", no_recon.test_accuracy - full.test_accuracy),
    ]);
    t.row([
        "random init (no k-means)".to_string(),
        format!("{:.2}", rand_init.test_accuracy),
        format!("{:+.2}", rand_init.test_accuracy - full.test_accuracy),
    ]);
    format!(
        "Ablation — LUTBoost design choices (ResNet-20 proxy, baseline {:.2}%)\n\n{}",
        pre.baseline_acc,
        t.render()
    )
}

/// Centroid-parameter accounting (the §V-1 ResNet example: LUT parameters
/// are a few percent of the dense weights).
pub fn centroid_share(quick: bool) -> String {
    let data = image_task(quick, ImageTaskConfig::cifar10_proxy());
    let pre = PretrainedCnn::train(CnnKind::ResNet20, &data, 1);
    let sched = schedule(true);
    let (outcome, _net, ps) =
        pre.convert(Strategy::Multistage, lut(4, 16, Distance::L2), &sched, 80);
    let centroid_scalars = outcome.handles.centroid_scalars(&ps);
    let total = ps.num_scalars();
    format!(
        "Centroid share — LUT parameters vs dense parameters (§V-1)\n\
         centroids: {centroid_scalars} scalars, all parameters: {total} \
         ({:.1}% — paper's ResNet-18 example: ~4%)\n",
        100.0 * centroid_scalars as f64 / total as f64
    )
}
