//! Regenerates the paper's fig8 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::fig8(lutdla_bench::quick_flag())
    );
}
