//! Regenerates the paper's table1 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::table1());
}
