//! Regenerates the paper's table6 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::table6(lutdla_bench::quick_flag())
    );
}
