//! LUT-GEMM deploy-path throughput benchmark: the scalar reference
//! (`approx_matmul_with_precision`) versus the batched [`LutEngine`] (at
//! one and several worker threads) versus the micro-batched serving front
//! door ([`MicroBatcher`], single-row submits coalesced back into batches),
//! across representative `M×K×N×c×v` points — plus two **whole-model**
//! serving measurements (`ModelSession` pipelining submitted images
//! through every layer of a converted ResNet proxy): the static per-stage
//! window (`model_serve`) and the adaptive per-stage policy
//! (`adaptive_serve`, requests produced by concurrent feeder threads and
//! drained through the session's single-threaded front door —
//! `ModelSession` deliberately serializes `submit`), so cross-layer
//! amortization and the batch-policy controller both show up next to the
//! per-layer numbers. Emits `BENCH_lutgemm.json` so every CI run leaves a
//! perf data point on the record.
//!
//! Usage:
//!
//! ```text
//! bench_lutgemm [--smoke] [--out PATH] [--check PATH]
//! ```
//!
//! `--smoke` runs one tiny point with a single timing pass (the CI mode);
//! the default runs the full grid, including the acceptance point
//! `M=256, K=1024, N=1024, v=4, c=16`. `--check PATH` runs no benchmark:
//! it validates an existing artifact against the expected schema (all
//! fields present, every `*_rows_per_s` strictly positive, `model_serve`,
//! `adaptive_serve`, and `encode_once` blocks in place) and exits non-zero
//! on any problem — the CI gate that keeps the artifact from silently
//! rotting.
//!
//! The `encode_once` block measures the encode-once execution paths:
//! packed (4-bit) versus `u16` code streaming on one table, a four-table
//! sweep with one shared encode (`run_many_from_packed`) versus the walk
//! repeated per table, and the cross-request encode memo's cold-vs-warm
//! hit path.

use std::time::{Duration, Instant};

use lutdla_lutboost::{
    lutify_convnet, undeploy_units, CentroidInit, ConvertPolicy, DeployConfig, LutConfig,
    LutRuntime,
};
use lutdla_models::trainable::resnet20_mini;
use lutdla_nn::{Graph, ImageModel, ParamSet};
use lutdla_tensor::Tensor;
use lutdla_vq::{
    approx_matmul_with_precision, default_workers, share, AdaptiveOptions, BatchOptions,
    BatchPolicy, Distance, EncodeMemo, EngineOptions, FloatPrecision, LutEngine, LutQuant,
    LutTable, MicroBatcher, Pending, ProductQuantizer, TileTables,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Submitter threads pushing single rows through the micro-batcher.
const SERVE_SUBMITTERS: usize = 2;

#[derive(Clone, Copy)]
struct Point {
    m: usize,
    k: usize,
    n: usize,
    v: usize,
    c: usize,
}

struct Measurement {
    point: Point,
    scalar_rows_per_s: f64,
    engine1_rows_per_s: f64,
    engine_mt_rows_per_s: f64,
    serve_rows_per_s: f64,
    speedup_1t: f64,
    speedup_mt: f64,
    /// Micro-batched single-row serving vs handing the engine the whole
    /// batch directly: the coalescing overhead tax (1.0 = free).
    serve_vs_batch: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--check needs a path to a BENCH_lutgemm.json artifact");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match lutdla_bench::artifact::check_artifact_text(&text) {
            Ok(()) => {
                println!("bench-check OK: {path}");
                return;
            }
            Err(problems) => {
                eprintln!("bench-check FAILED for {path}:\n{problems}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_lutgemm.json".to_string());

    let (points, iters): (Vec<Point>, usize) = if smoke {
        (
            vec![Point {
                m: 48,
                k: 64,
                n: 64,
                v: 4,
                c: 16,
            }],
            2,
        )
    } else {
        (
            vec![
                // The acceptance point (ISSUE 2): ≥3× single-thread.
                Point {
                    m: 256,
                    k: 1024,
                    n: 1024,
                    v: 4,
                    c: 16,
                },
                Point {
                    m: 512,
                    k: 512,
                    n: 512,
                    v: 4,
                    c: 16,
                },
                Point {
                    m: 256,
                    k: 768,
                    n: 384,
                    v: 8,
                    c: 64,
                },
            ],
            5,
        )
    };

    let mt_workers = default_workers().clamp(2, 4);
    let mut results = Vec::new();
    for p in points {
        results.push(run_point(p, iters, mt_workers));
    }
    let encode_once = run_encode_once(smoke, iters);
    let (model, adaptive) = run_model_serves(smoke, iters);

    let json = to_json(&results, &encode_once, &model, &adaptive, smoke, mt_workers);
    std::fs::write(&out_path, &json).expect("write BENCH_lutgemm.json");
    println!("wrote {out_path}");
}

struct ModelMeasurement {
    model: &'static str,
    images: usize,
    lut_stages: usize,
    dense_stages: usize,
    serve_rows_per_s: f64,
}

struct AdaptiveMeasurement {
    model: &'static str,
    images: usize,
    /// Request-producer threads feeding the serving loop's channel. The
    /// `ModelSession` front door itself is single-threaded (`!Sync`), so
    /// this is the arrival-stream fan-in, not parallel `submit` calls —
    /// the per-layer `points[].serve_rows_per_s` measurement is where
    /// genuinely parallel submitters hit one batcher.
    submitters: usize,
    lut_stages: usize,
    dense_stages: usize,
    serve_rows_per_s: f64,
    /// Widest per-stage window the adaptive controllers converged to —
    /// direct evidence the policy actually widened under the request
    /// stream (1 would mean every stage stayed collapsed).
    max_stage_window: usize,
}

/// Whole-model serving: images submitted through a `ModelSession`
/// (per-stage micro-batchers over cached engines for converted units, the
/// dense path for the rest), against a LUTBoost-converted ResNet-20 proxy.
/// Measured twice over one converted model: the static per-stage window,
/// then the adaptive per-stage policy with requests produced by
/// `SERVE_SUBMITTERS` feeder threads and drained on the serving thread.
fn run_model_serves(smoke: bool, iters: usize) -> (ModelMeasurement, AdaptiveMeasurement) {
    let images = if smoke { 16 } else { 96 };
    let flush_every = 32;
    println!("model serve: resnet20_mini, {images} images");
    let mut rng = StdRng::seed_from_u64(0x0de1);
    let mut ps = ParamSet::new();
    let mut net = resnet20_mini(&mut ps, 10);
    let batch = Tensor::randn(&mut rng, &[images, 3, 16, 16], 1.0);
    let _ = lutify_convnet(
        &mut net,
        &mut ps,
        LutConfig::default(),
        CentroidInit::Kmeans,
        ConvertPolicy::default(),
        batch.clone(),
        &mut rng,
    );
    let per = 3 * 16 * 16;
    let image =
        |i: usize| Tensor::from_vec(batch.data()[i * per..(i + 1) * per].to_vec(), &[3, 16, 16]);

    let mut rt = LutRuntime::new(DeployConfig::bf16_int8());
    // Bit-identity guard: the session must reproduce the plain deploy +
    // batched eval forward exactly.
    rt.deploy(net.dense_units(), &ps);
    let mut g = Graph::new(false);
    let node = ImageModel::logits(&net, &mut g, &ps, batch.clone());
    let reference = g.value(node).clone();
    undeploy_units(net.dense_units());
    let session = rt.serve(&net, &ps).build_model();
    let served = session.run((0..images).map(image)).expect("valid images");
    assert!(
        served.allclose(&reference, 0.0),
        "whole-model session is not bit-identical to the deployed eval path"
    );

    let serve_s = best_of(iters, || {
        let mut handles = Vec::with_capacity(flush_every);
        for i in 0..images {
            handles.push(session.submit(image(i)).expect("valid image"));
            if handles.len() == flush_every || i + 1 == images {
                session.flush();
                for h in handles.drain(..) {
                    std::hint::black_box(h.wait().expect("session alive"));
                }
            }
        }
    });
    let meas = ModelMeasurement {
        model: "resnet20_mini",
        images,
        lut_stages: session.lut_stages(),
        dense_stages: session.plan().len() - session.lut_stages(),
        serve_rows_per_s: images as f64 / serve_s,
    };
    println!(
        "  {} LUT stages + {} dense | whole-model serve {:>8.0} images/s",
        meas.lut_stages, meas.dense_stages, meas.serve_rows_per_s,
    );
    drop(session);

    // Same converted model, adaptive per-stage policy: every LUT stage's
    // window widens/collapses independently. SERVE_SUBMITTERS feeder
    // threads produce the request stream; the serving thread drains the
    // channel into submit/flush (the front door serializes submits — the
    // pressure the stages adapt to is the block backlog per flush).
    let cfg = rt.config();
    let policy = BatchPolicy::Adaptive(AdaptiveOptions {
        min_batch: 1,
        max_batch: 4096,
        ..AdaptiveOptions::default()
    });
    let session = rt.serve(&net, &ps).config(cfg).policy(policy).build_model();
    let served = session.run((0..images).map(image)).expect("valid images");
    assert!(
        served.allclose(&reference, 0.0),
        "adaptive-policy session is not bit-identical to the deployed eval path"
    );
    let adaptive_s = best_of(iters, || {
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<usize>();
            for t in 0..SERVE_SUBMITTERS {
                let tx = tx.clone();
                s.spawn(move || {
                    let mut i = t;
                    while i < images {
                        tx.send(i).expect("serving loop alive");
                        i += SERVE_SUBMITTERS;
                    }
                });
            }
            drop(tx);
            let mut handles = Vec::with_capacity(flush_every);
            for i in rx {
                handles.push(session.submit(image(i)).expect("valid image"));
                if handles.len() == flush_every {
                    session.flush();
                    for h in handles.drain(..) {
                        std::hint::black_box(h.wait().expect("session alive"));
                    }
                }
            }
            session.flush();
            for h in handles.drain(..) {
                std::hint::black_box(h.wait().expect("session alive"));
            }
        });
    });
    let max_stage_window = session
        .stage_stats()
        .iter()
        .map(|(_, st)| st.current_window)
        .max()
        .unwrap_or(0);
    let adaptive = AdaptiveMeasurement {
        model: meas.model,
        images,
        submitters: SERVE_SUBMITTERS,
        lut_stages: meas.lut_stages,
        dense_stages: meas.dense_stages,
        serve_rows_per_s: images as f64 / adaptive_s,
        max_stage_window,
    };
    println!(
        "  adaptive policy x{} submitters | whole-model serve {:>8.0} images/s | widest stage window {}",
        adaptive.submitters, adaptive.serve_rows_per_s, adaptive.max_stage_window,
    );
    (meas, adaptive)
}

struct EncodeOnceMeasurement {
    m: usize,
    k: usize,
    n: usize,
    v: usize,
    c: usize,
    /// Bits per code in the packed stream (4 here, since c = 16).
    code_width_bits: usize,
    /// Single-table lookup throughput streaming pre-encoded `u16` codes.
    u16_rows_per_s: f64,
    /// Single-table lookup throughput streaming the packed code blocks.
    packed_rows_per_s: f64,
    /// `packed / u16` — the bandwidth win of the minimal-width stream.
    packed_speedup: f64,
    /// Tables sharing the codebook in the many-table measurement.
    tables: usize,
    /// Sweep throughput paying the similarity walk once **per table**.
    repeated_rows_per_s: f64,
    /// Sweep throughput paying the walk once, replaying packed codes
    /// against every table.
    many_table_rows_per_s: f64,
    /// `many_table / repeated` — the encode-once win over the sweep.
    many_table_speedup: f64,
    /// Rows in the memo measurement's batch.
    memo_rows: usize,
    /// `run_batch_memo` throughput against an empty memo (walk + insert).
    memo_cold_rows_per_s: f64,
    /// `run_batch_memo` throughput once every row hits (no walk at all).
    memo_warm_rows_per_s: f64,
    /// `warm / cold` — what a duplicate-heavy stream gains from the memo.
    memo_warm_speedup: f64,
}

/// The encode-once measurements: packed-vs-`u16` code streaming on one
/// table, a 4-table sweep with one shared encode (the multi-head /
/// quant-sweep shape), and the cross-request memo's cold-vs-warm hit path.
/// Every path is checked bit-identical to `run_batch` before it is timed.
fn run_encode_once(smoke: bool, iters: usize) -> EncodeOnceMeasurement {
    const TABLES: usize = 4;
    let (m, k, n) = if smoke {
        (256, 64, 64)
    } else {
        (4096, 512, 64)
    };
    let (v, c) = (8, 16);
    println!("encode-once M={m} K={k} N={n}x{TABLES} v={v} c={c}");
    let mut rng = StdRng::seed_from_u64(0xe0ce);
    let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
    let pq = ProductQuantizer::fit(&a.rows(0, 256.min(m)), v, c, Distance::L2, &mut rng);
    // Four tables over one codebook — the many-table shape (think QKV+O
    // projections, or a LutQuant sweep): codes depend on the input and the
    // codebook only, so one stream serves all four.
    let luts: Vec<LutTable> = (0..TABLES)
        .map(|_| {
            let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
            LutTable::build(&pq, &b, LutQuant::F32)
        })
        .collect();
    let mut engines: Vec<LutEngine> = luts
        .iter()
        .map(|t| {
            LutEngine::with_opts(
                pq.clone(),
                t,
                EngineOptions {
                    workers: 1,
                    ..EngineOptions::default()
                },
            )
        })
        .collect();

    // Reference outputs (encode + run per table) for the identity checks.
    let solo: Vec<Tensor> = engines.iter_mut().map(|e| e.run_batch(&a)).collect();
    let repeated_s = best_of(iters, || {
        for e in engines.iter_mut() {
            std::hint::black_box(e.run_batch(&a));
        }
    });

    let (first, rest) = engines.split_at_mut(1);
    let first = &mut first[0];

    // Single-table lookup: pre-encoded u16 codes vs the packed stream.
    let codes = pq.encode(&a);
    let packed = first.encode_packed(&a);
    assert_eq!(
        packed.unpack(),
        codes,
        "packed stream disagrees with encode"
    );
    let from_u16 = first.run_from_codes(&codes, m).expect("codes fit");
    let from_packed = first.run_from_packed(&packed).expect("stream fits");
    assert!(
        from_u16.allclose(&solo[0], 0.0) && from_packed.allclose(&solo[0], 0.0),
        "code-stream paths are not bit-identical to run_batch"
    );
    // These two regions are sub-millisecond at the full-mode point, so a
    // handful of samples is hostage to scheduler noise — take the best of
    // many more to recover the clean-run minimum.
    let lookup_iters = iters * 8;
    let u16_s = best_of(lookup_iters, || {
        std::hint::black_box(first.run_from_codes(&codes, m).expect("codes fit"));
    });
    let packed_s = best_of(lookup_iters, || {
        std::hint::black_box(first.run_from_packed(&packed).expect("stream fits"));
    });

    // Many-table sweep: encode once, replay against every table.
    let shared_tables: Vec<&TileTables> = rest.iter().map(|e| e.tables()).collect();
    let tail = first
        .run_many_from_packed(&packed, &shared_tables)
        .expect("tables share the codebook");
    for (s, t) in solo[1..].iter().zip(&tail) {
        assert!(
            t.allclose(s, 0.0),
            "run_many_from_packed diverged from the solo engines"
        );
    }
    let many_s = best_of(iters, || {
        let p = first.encode_packed(&a);
        std::hint::black_box(first.run_from_packed(&p).expect("stream fits"));
        std::hint::black_box(
            first
                .run_many_from_packed(&p, &shared_tables)
                .expect("tables share the codebook"),
        );
    });

    // Cross-request memo: cold pass (walk + insert) vs warm pass (every
    // row verified-hit, no walk). Capacity 8× the batch so even a skewed
    // shard distribution cannot evict.
    let memo_rows = if smoke { 128 } else { 1024 };
    let xm = a.rows(0, memo_rows);
    let memo_ref = first.run_batch(&xm);
    // Sub-millisecond warm passes get the same extra-sample treatment as
    // the lookup timings above.
    let cold_s = best_of(lookup_iters, || {
        let memo = EncodeMemo::new(8 * memo_rows);
        std::hint::black_box(first.run_batch_memo(&xm, &memo));
    });
    let memo = EncodeMemo::new(8 * memo_rows);
    let warmed = first.run_batch_memo(&xm, &memo);
    assert!(
        warmed.allclose(&memo_ref, 0.0),
        "memo path is not bit-identical to run_batch"
    );
    let warm_s = best_of(lookup_iters, || {
        std::hint::black_box(first.run_batch_memo(&xm, &memo));
    });
    assert!(memo.stats().hits > 0, "warm passes never hit the memo");

    let meas = EncodeOnceMeasurement {
        m,
        k,
        n,
        v,
        c,
        code_width_bits: first.code_width().bits(),
        u16_rows_per_s: m as f64 / u16_s,
        packed_rows_per_s: m as f64 / packed_s,
        packed_speedup: u16_s / packed_s,
        tables: TABLES,
        repeated_rows_per_s: m as f64 / repeated_s,
        many_table_rows_per_s: m as f64 / many_s,
        many_table_speedup: repeated_s / many_s,
        memo_rows,
        memo_cold_rows_per_s: memo_rows as f64 / cold_s,
        memo_warm_rows_per_s: memo_rows as f64 / warm_s,
        memo_warm_speedup: cold_s / warm_s,
    };
    println!(
        "  u16 {:>10.0} rows/s | packed {:>10.0} rows/s ({:.2}x) | sweep x{TABLES}: repeated {:>8.0} rows/s -> shared {:>8.0} rows/s ({:.2}x) | memo cold {:>8.0} -> warm {:>8.0} rows/s ({:.2}x)",
        meas.u16_rows_per_s,
        meas.packed_rows_per_s,
        meas.packed_speedup,
        meas.repeated_rows_per_s,
        meas.many_table_rows_per_s,
        meas.many_table_speedup,
        meas.memo_cold_rows_per_s,
        meas.memo_warm_rows_per_s,
        meas.memo_warm_speedup,
    );
    meas
}

fn run_point(p: Point, iters: usize, mt_workers: usize) -> Measurement {
    let Point { m, k, n, v, c } = p;
    println!("point M={m} K={k} N={n} v={v} c={c}");
    let mut rng = StdRng::seed_from_u64(0x10c0 + (m + k + n) as u64);
    let a = Tensor::rand_uniform(&mut rng, &[m, k], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[k, n], -1.0, 1.0);
    let pq = ProductQuantizer::fit(&a, v, c, Distance::L2, &mut rng);
    let lut = LutTable::build(&pq, &b, LutQuant::F32);

    let scalar_out = approx_matmul_with_precision(&a, &pq, &lut, FloatPrecision::Fp32);
    let scalar_s = best_of(iters, || {
        std::hint::black_box(approx_matmul_with_precision(
            &a,
            &pq,
            &lut,
            FloatPrecision::Fp32,
        ));
    });

    let mut engine1 = LutEngine::with_opts(
        pq.clone(),
        &lut,
        EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        },
    );
    assert!(
        engine1.run_batch(&a).allclose(&scalar_out, 0.0),
        "engine output is not bit-identical to the scalar path"
    );
    let engine1_s = best_of(iters, || {
        std::hint::black_box(engine1.run_batch(&a));
    });

    let mut engine_mt = LutEngine::with_opts(
        pq,
        &lut,
        EngineOptions {
            workers: mt_workers,
            ..EngineOptions::default()
        },
    );
    assert!(engine_mt.run_batch(&a).allclose(&scalar_out, 0.0));
    let engine_mt_s = best_of(iters, || {
        std::hint::black_box(engine_mt.run_batch(&a));
    });

    // Serving path: the same multithreaded engine behind a MicroBatcher,
    // fed single rows from SERVE_SUBMITTERS concurrent submitter threads.
    let batcher = MicroBatcher::new(
        share(engine_mt),
        BatchOptions {
            max_batch: 64.min(m),
            max_delay: Duration::from_millis(1),
        },
    );
    // Coalesced single-row results must stay bit-identical to the batch.
    for i in 0..m.min(8) {
        let out = batcher
            .submit(&a.data()[i * k..(i + 1) * k])
            .expect("valid row")
            .wait()
            .expect("batcher alive");
        assert_eq!(
            out.as_slice(),
            &scalar_out.data()[i * n..(i + 1) * n],
            "serve path is not bit-identical to the scalar path"
        );
    }
    let serve_s = best_of(iters, || {
        std::thread::scope(|s| {
            for t in 0..SERVE_SUBMITTERS {
                let batcher = &batcher;
                let a = &a;
                s.spawn(move || {
                    let rows = (t * m / SERVE_SUBMITTERS)..((t + 1) * m / SERVE_SUBMITTERS);
                    let pending: Vec<Pending> = rows
                        .map(|i| {
                            batcher
                                .submit(&a.data()[i * k..(i + 1) * k])
                                .expect("valid row")
                        })
                        .collect();
                    for p in pending {
                        std::hint::black_box(p.wait().expect("batcher alive"));
                    }
                });
            }
        });
    });

    let meas = Measurement {
        point: p,
        scalar_rows_per_s: m as f64 / scalar_s,
        engine1_rows_per_s: m as f64 / engine1_s,
        engine_mt_rows_per_s: m as f64 / engine_mt_s,
        serve_rows_per_s: m as f64 / serve_s,
        speedup_1t: scalar_s / engine1_s,
        speedup_mt: scalar_s / engine_mt_s,
        serve_vs_batch: engine_mt_s / serve_s,
    };
    println!(
        "  scalar {:>10.0} rows/s | engine x1 {:>10.0} rows/s ({:.2}x) | engine x{} {:>10.0} rows/s ({:.2}x) | serve {:>10.0} rows/s ({:.2}x of batch)",
        meas.scalar_rows_per_s,
        meas.engine1_rows_per_s,
        meas.speedup_1t,
        mt_workers,
        meas.engine_mt_rows_per_s,
        meas.speedup_mt,
        meas.serve_rows_per_s,
        meas.serve_vs_batch,
    );
    meas
}

/// Best (minimum) wall time over `iters` runs, in seconds.
fn best_of(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn to_json(
    results: &[Measurement],
    encode_once: &EncodeOnceMeasurement,
    model: &ModelMeasurement,
    adaptive: &AdaptiveMeasurement,
    smoke: bool,
    mt_workers: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"lutgemm\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!("  \"mt_workers\": {mt_workers},\n"));
    s.push_str(&format!("  \"serve_submitters\": {SERVE_SUBMITTERS},\n"));
    s.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let Point { m, k, n, v, c } = r.point;
        // Keys are host-independent (the worker count behind "mt" is the
        // top-level "mt_workers" field) so tooling can diff artifacts
        // produced on differently-sized runners.
        s.push_str(&format!(
            "    {{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"v\": {v}, \"c\": {c}, \
             \"scalar_rows_per_s\": {:.1}, \"engine_1t_rows_per_s\": {:.1}, \
             \"engine_mt_rows_per_s\": {:.1}, \"serve_rows_per_s\": {:.1}, \
             \"speedup_1t\": {:.3}, \"speedup_mt\": {:.3}, \"serve_vs_batch\": {:.3}}}{}",
            r.scalar_rows_per_s,
            r.engine1_rows_per_s,
            r.engine_mt_rows_per_s,
            r.serve_rows_per_s,
            r.speedup_1t,
            r.speedup_mt,
            r.serve_vs_batch,
            if i + 1 == results.len() { "" } else { "," },
        ));
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"encode_once\": {{\"m\": {}, \"k\": {}, \"n\": {}, \"v\": {}, \"c\": {}, \
         \"code_width_bits\": {}, \"u16_rows_per_s\": {:.1}, \"packed_rows_per_s\": {:.1}, \
         \"packed_speedup\": {:.3}, \"tables\": {}, \"repeated_rows_per_s\": {:.1}, \
         \"many_table_rows_per_s\": {:.1}, \"many_table_speedup\": {:.3}, \"memo_rows\": {}, \
         \"memo_cold_rows_per_s\": {:.1}, \"memo_warm_rows_per_s\": {:.1}, \
         \"memo_warm_speedup\": {:.3}}},\n",
        encode_once.m,
        encode_once.k,
        encode_once.n,
        encode_once.v,
        encode_once.c,
        encode_once.code_width_bits,
        encode_once.u16_rows_per_s,
        encode_once.packed_rows_per_s,
        encode_once.packed_speedup,
        encode_once.tables,
        encode_once.repeated_rows_per_s,
        encode_once.many_table_rows_per_s,
        encode_once.many_table_speedup,
        encode_once.memo_rows,
        encode_once.memo_cold_rows_per_s,
        encode_once.memo_warm_rows_per_s,
        encode_once.memo_warm_speedup,
    ));
    s.push_str(&format!(
        "  \"model_serve\": {{\"model\": \"{}\", \"images\": {}, \"lut_stages\": {}, \
         \"dense_stages\": {}, \"serve_rows_per_s\": {:.1}}},\n",
        model.model, model.images, model.lut_stages, model.dense_stages, model.serve_rows_per_s,
    ));
    s.push_str(&format!(
        "  \"adaptive_serve\": {{\"model\": \"{}\", \"images\": {}, \"submitters\": {}, \
         \"lut_stages\": {}, \"dense_stages\": {}, \"serve_rows_per_s\": {:.1}, \
         \"max_stage_window\": {}}}\n",
        adaptive.model,
        adaptive.images,
        adaptive.submitters,
        adaptive.lut_stages,
        adaptive.dense_stages,
        adaptive.serve_rows_per_s,
        adaptive.max_stage_window,
    ));
    s.push_str("}\n");
    s
}
