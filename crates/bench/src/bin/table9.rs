//! Regenerates the paper's table9 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::table9());
}
