//! Regenerates the paper's fig12 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::fig12(lutdla_bench::quick_flag())
    );
}
