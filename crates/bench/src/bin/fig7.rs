//! Regenerates the paper's fig7 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::fig7(lutdla_bench::quick_flag())
    );
}
