//! Regenerates the paper's fig10 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::fig10());
}
