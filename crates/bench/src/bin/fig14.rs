//! Regenerates the paper's fig14 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::fig14());
}
