//! Regenerates the paper's fig1 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::fig1());
}
