//! Regenerates the paper's table7 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::table7());
}
