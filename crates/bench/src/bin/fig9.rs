//! Regenerates the paper's fig9 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::fig9());
}
