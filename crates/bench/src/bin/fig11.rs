//! Regenerates the paper's fig11 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::fig11());
}
