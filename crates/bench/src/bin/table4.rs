//! Regenerates the paper's table4 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    let quick = lutdla_bench::quick_flag();
    println!("{}", lutdla_bench::experiments::accuracy::table4(quick));
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::table4_quant_sweep(quick)
    );
}
