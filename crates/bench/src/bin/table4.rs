//! Regenerates the paper's table4 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::table4(lutdla_bench::quick_flag())
    );
}
