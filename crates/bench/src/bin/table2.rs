//! Regenerates the paper's table2 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::table2(lutdla_bench::quick_flag())
    );
}
