//! Open-loop serving latency benchmark: a deterministic arrival process
//! (seeded Poisson by default, `--fixed` for evenly spaced) replayed
//! against whole-model [`ModelSession`]s across the scenario matrix
//! model (`convnet`/`transformer`) × policy (`static`/`adaptive`) × load
//! (`low`/`overload`), reporting p50/p95/p99 latency from *scheduled*
//! arrival to resolution, achieved vs offered rate, SLO-conformance, and
//! final per-stage counters. A second `gateway_*` scenario family drives
//! the multi-tenant [`ServeGateway`] (2 models × 3 SLO-class tenants each,
//! one persistent gateway across both loads) and additionally reports
//! admission-control outcomes and per-class latency percentiles. A third
//! `decode_*` family streams tokens through [`DecodeSession`]s (N
//! autoregressive streams over a causal transformer, one step per new
//! token) and reports per-token latency percentiles, decode throughput
//! against a full-re-eval baseline (`prefix_speedup`), and the
//! prefix-reuse row counters. Emits `BENCH_serve.json` so every CI run
//! leaves a serving-latency data point on the record.
//!
//! Usage:
//!
//! ```text
//! bench_serve [--smoke] [--fixed] [--seed N] [--out PATH] [--check PATH]
//! ```
//!
//! `--smoke` shrinks the per-scenario request count and decode stream
//! matrix (the CI mode) — every family, including a decode scenario per
//! load, still runs. `--check PATH` runs no benchmark: it validates an
//! existing artifact against the expected schema plus the sanity ordering
//! (p50 ≤ p95 ≤ p99, overload p99 > p50, adaptive low-load SLO
//! conformance ≥ 0.5), the gateway admission gates (`shed_ratio` in
//! `[0, 1]` and consistent with `shed / requests`, admitted + shed =
//! requests, every admitted request served, latency-class p99 ≤
//! best-effort p99 under overload), and the decode gates (per-token
//! percentiles monotone, `steps == streams * seq_len` accounting,
//! `reused_rows`/`walked_rows` > 0, `prefix_speedup` > 0 — and > 1 in
//! full mode). Each failed field is printed with its path, any failing
//! scenario is echoed back as a compact JSON snippet, and the exit code
//! is non-zero on any problem.
//!
//! [`ModelSession`]: lutdla_lutboost::ModelSession
//! [`ServeGateway`]: lutdla_lutboost::ServeGateway
//! [`DecodeSession`]: lutdla_lutboost::DecodeSession

use lutdla_bench::serve_bench::{run, to_json, ServeBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--check needs a path to a BENCH_serve.json artifact");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match lutdla_bench::artifact::check_serve_artifact_text(&text) {
            Ok(()) => {
                println!("bench-check OK: {path}");
                return;
            }
            Err(problems) => {
                eprintln!("bench-check FAILED for {path}:\n{problems}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let poisson = !args.iter().any(|a| a == "--fixed");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--seed needs an unsigned integer, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0x5e7e);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let report = run(ServeBenchConfig {
        smoke,
        poisson,
        seed,
    });
    let json = to_json(&report);
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
}
