//! Regenerates the paper's fig13 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::fig13());
}
