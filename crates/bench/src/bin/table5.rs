//! Regenerates the paper's table5 (see `lutdla_bench::experiments::accuracy`).
fn main() {
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::table5(lutdla_bench::quick_flag())
    );
}
