//! Regenerates the paper's table8 (see `lutdla_bench::experiments::hw`).
fn main() {
    println!("{}", lutdla_bench::experiments::hw::table8());
}
