//! Runs both the hardware-side and training-side ablation suites.
fn main() {
    println!("{}", lutdla_bench::experiments::hw::ablation_hw());
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::ablation_train(lutdla_bench::quick_flag())
    );
    println!(
        "{}",
        lutdla_bench::experiments::accuracy::centroid_share(true)
    );
}
