//! Regenerates every table and figure, printing each section and writing
//! the combined report to `results/experiments.txt`.
use std::io::Write;

fn main() {
    let quick = lutdla_bench::quick_flag();
    let mut combined = String::new();
    for (id, body) in lutdla_bench::all_experiments(quick) {
        let header = format!("==================== {id} ====================\n");
        println!("{header}{body}");
        combined.push_str(&header);
        combined.push_str(&body);
        combined.push('\n');
    }
    std::fs::create_dir_all("results").expect("create results dir");
    let mut f = std::fs::File::create("results/experiments.txt").expect("create report");
    f.write_all(combined.as_bytes()).expect("write report");
    eprintln!("wrote results/experiments.txt");
}
