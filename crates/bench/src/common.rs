//! Shared experiment plumbing: pre-trained model caches and conversion
//! helpers reused by every accuracy-side table/figure generator.

use lutdla_lutboost::{
    convert_and_train_images, convert_and_train_seq, fresh_pretrained_convnet,
    fresh_pretrained_transformer, ConversionOutcome, ConvertPolicy, LutConfig, Strategy,
    TrainSchedule,
};
use lutdla_models::trainable::{
    bert_mini, distilbert_mini, lenet_mini, opt125m_mini, resnet18_mini, resnet20_mini,
    resnet32_mini, resnet56_mini, vgg11_mini, ConvNet, ConvNetConfig, TransformerClassifier,
    TransformerConfig,
};
use lutdla_nn::data::{
    synthetic_images, synthetic_sequences, ImageDataset, ImageTaskConfig, SeqDataset, SeqTaskConfig,
};
use lutdla_nn::{
    eval_images, eval_seq, train_epoch_images, train_epoch_seq, Optimizer, ParamSet, Sgd,
};

/// Which CNN proxy to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnnKind {
    /// ResNet-20 proxy.
    ResNet20,
    /// ResNet-32 proxy.
    ResNet32,
    /// ResNet-56 proxy.
    ResNet56,
    /// ResNet-18 proxy.
    ResNet18,
    /// VGG-11 proxy.
    Vgg11,
    /// LeNet proxy.
    LeNet,
}

impl CnnKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CnnKind::ResNet20 => "ResNet20",
            CnnKind::ResNet32 => "ResNet32",
            CnnKind::ResNet56 => "ResNet56",
            CnnKind::ResNet18 => "ResNet18",
            CnnKind::Vgg11 => "VGG11",
            CnnKind::LeNet => "LeNet",
        }
    }

    fn build(&self, ps: &mut ParamSet, classes: usize) -> ConvNet {
        match self {
            CnnKind::ResNet20 => resnet20_mini(ps, classes),
            CnnKind::ResNet32 => resnet32_mini(ps, classes),
            CnnKind::ResNet56 => resnet56_mini(ps, classes),
            CnnKind::ResNet18 => resnet18_mini(ps, classes),
            CnnKind::Vgg11 => vgg11_mini(ps, classes),
            CnnKind::LeNet => lenet_mini(ps, classes),
        }
    }
}

/// A pre-trained CNN whose weights can be re-instantiated per strategy.
pub struct PretrainedCnn {
    cfg: ConvNetConfig,
    trained: ParamSet,
    /// Dense-model test accuracy (%), the tables' "Baseline" column.
    pub baseline_acc: f32,
    /// The training split.
    pub train: ImageDataset,
    /// The held-out split.
    pub test: ImageDataset,
}

impl PretrainedCnn {
    /// Trains the dense baseline once.
    pub fn train(kind: CnnKind, data_cfg: &ImageTaskConfig, epochs: usize) -> Self {
        let (train, test) = synthetic_images(data_cfg);
        let mut ps = ParamSet::new();
        let net = kind.build(&mut ps, data_cfg.num_classes);
        let cfg = *net.config();
        let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4));
        for _ in 0..epochs {
            train_epoch_images(&net, &mut ps, &mut opt, &train, 32);
        }
        let baseline_acc = eval_images(&net, &ps, &test, 32) * 100.0;
        Self {
            cfg,
            trained: ps,
            baseline_acc,
            train,
            test,
        }
    }

    /// Re-instantiates the trained model and runs one conversion strategy,
    /// returning the outcome (accuracy in percent) and the converted model.
    pub fn convert(
        &self,
        strategy: Strategy,
        lut_cfg: LutConfig,
        schedule: &TrainSchedule,
        seed: u64,
    ) -> (ConversionOutcome, ConvNet, ParamSet) {
        let (mut net, mut ps) = fresh_pretrained_convnet(self.cfg, &self.trained);
        let mut outcome = convert_and_train_images(
            &mut net,
            &mut ps,
            strategy,
            lut_cfg,
            ConvertPolicy::default(),
            schedule,
            &self.train,
            &self.test,
            seed,
        );
        outcome.test_accuracy *= 100.0;
        (outcome, net, ps)
    }
}

/// Which transformer proxy to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformerKind {
    /// BERT proxy.
    Bert,
    /// DistilBERT proxy.
    DistilBert,
    /// OPT-125M proxy.
    Opt125m,
}

impl TransformerKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TransformerKind::Bert => "BERT",
            TransformerKind::DistilBert => "DistillBERT",
            TransformerKind::Opt125m => "OPT-125M",
        }
    }

    fn build(&self, ps: &mut ParamSet, classes: usize) -> TransformerClassifier {
        match self {
            TransformerKind::Bert => bert_mini(ps, classes),
            TransformerKind::DistilBert => distilbert_mini(ps, classes),
            TransformerKind::Opt125m => opt125m_mini(ps, classes),
        }
    }
}

/// A pre-trained transformer with strategy re-instantiation.
pub struct PretrainedTransformer {
    cfg: TransformerConfig,
    trained: ParamSet,
    /// Dense-model test accuracy (%).
    pub baseline_acc: f32,
    /// The training split.
    pub train: SeqDataset,
    /// The held-out split.
    pub test: SeqDataset,
}

impl PretrainedTransformer {
    /// Trains the dense baseline once on a GLUE-proxy task.
    pub fn train(kind: TransformerKind, data_cfg: &SeqTaskConfig, epochs: usize) -> Self {
        let (train, test) = synthetic_sequences(data_cfg);
        let mut ps = ParamSet::new();
        let net = kind.build(&mut ps, data_cfg.num_classes);
        let cfg = *net.config();
        let mut opt = Optimizer::Adam(lutdla_nn::Adam::new(3e-3));
        for _ in 0..epochs {
            train_epoch_seq(&net, &mut ps, &mut opt, &train, 32);
        }
        let baseline_acc = eval_seq(&net, &ps, &test, 32) * 100.0;
        Self {
            cfg,
            trained: ps,
            baseline_acc,
            train,
            test,
        }
    }

    /// Re-instantiates and converts with one strategy.
    pub fn convert(
        &self,
        strategy: Strategy,
        lut_cfg: LutConfig,
        schedule: &TrainSchedule,
        seed: u64,
    ) -> (ConversionOutcome, TransformerClassifier, ParamSet) {
        let (mut net, mut ps) = fresh_pretrained_transformer(self.cfg, &self.trained);
        let mut outcome = convert_and_train_seq(
            &mut net,
            &mut ps,
            strategy,
            lut_cfg,
            ConvertPolicy::default(),
            schedule,
            &self.train,
            &self.test,
            seed,
        );
        outcome.test_accuracy *= 100.0;
        (outcome, net, ps)
    }
}

/// Effort level: `quick` shrinks datasets/epochs so smoke tests stay fast;
/// the default settings drive the recorded EXPERIMENTS.md numbers.
pub fn image_task(quick: bool, base: ImageTaskConfig) -> ImageTaskConfig {
    if quick {
        ImageTaskConfig {
            n_train: 128,
            n_test: 64,
            ..base
        }
    } else {
        base
    }
}

/// Sequence-task counterpart of [`image_task`].
pub fn seq_task(quick: bool, base: SeqTaskConfig) -> SeqTaskConfig {
    if quick {
        SeqTaskConfig {
            n_train: 128,
            n_test: 64,
            ..base
        }
    } else {
        base
    }
}

/// Epoch schedule scaled by effort.
pub fn schedule(quick: bool) -> TrainSchedule {
    if quick {
        TrainSchedule {
            centroid_epochs: 1,
            joint_epochs: 2,
            ..Default::default()
        }
    } else {
        TrainSchedule::default()
    }
}

/// Baseline pre-training epochs scaled by effort.
pub fn pretrain_epochs(quick: bool) -> usize {
    if quick {
        3
    } else {
        10
    }
}
