//! Open-loop serving benchmark behind the `bench_serve` binary.
//!
//! Sweeps a scenario matrix — model (`convnet`/`transformer`) × batch
//! policy (`static`/`adaptive`) × offered load (`low`/`overload`) —
//! against [`LutRuntime::model_session_with_policy`]. Each scenario
//! replays a deterministic arrival schedule ([`ArrivalProcess`]) and
//! submits requests at their *scheduled* instants regardless of server
//! progress, so queueing delay lands in the measured latency rather than
//! silently throttling the offered rate (no coordinated omission). Per
//! request latency is `resolved_at − scheduled_arrival`, taken from the
//! [`ServeTiming`] stamps the serving layer records once per coalesced
//! flush; per-stage service time comes from
//! [`StageStats::service_nanos`].
//!
//! [`ServeTiming`]: lutdla_vq::ServeTiming
//! [`StageStats::service_nanos`]: lutdla_vq::StageStats::service_nanos
//!
//! Rates are calibrated per model: a closed-loop batch-1 pass measures the
//! base service latency, then `low` offers a quarter of that service rate
//! (the server keeps up; SLO conformance should be high) and `overload`
//! offers 8× (the queue grows without bound; the latency ramp makes
//! p99 ≫ p50). The SLO is `max(3 × base latency, 1 ms)`.

use std::time::{Duration, Instant};

use crate::arrival::ArrivalProcess;
use crate::histogram::LatencyHistogram;
use lutdla_lutboost::{
    lutify_convnet, lutify_transformer, CentroidInit, ConvertPolicy, LutConfig, LutRuntime,
    ModelSession,
};
use lutdla_models::trainable::{distilbert_mini, resnet20_mini, ServableModel};
use lutdla_nn::ParamSet;
use lutdla_tensor::Tensor;
use lutdla_vq::{AdaptiveOptions, BatchOptions, BatchPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Submitted-but-unflushed backlog that forces a flush under overload, so
/// coalescing windows (and the adaptive controller) see real batches.
const BURST: usize = 8;

/// Harness configuration, straight from the CLI.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// CI mode: fewer requests per scenario.
    pub smoke: bool,
    /// `true` = seeded Poisson arrivals, `false` = fixed-rate.
    pub poisson: bool,
    /// Base seed; each scenario offsets it so traces decorrelate.
    pub seed: u64,
}

impl ServeBenchConfig {
    fn requests(&self) -> usize {
        if self.smoke {
            40
        } else {
            256
        }
    }

    fn arrival(&self, scenario_idx: u64) -> ArrivalProcess {
        if self.poisson {
            ArrivalProcess::Poisson {
                seed: self.seed.wrapping_add(scenario_idx),
            }
        } else {
            ArrivalProcess::Fixed
        }
    }
}

/// Offered-load level, calibrated against the measured service rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// 0.25× the batch-1 service rate: the server keeps up.
    Low,
    /// 8× the batch-1 service rate: the queue grows without bound.
    Overload,
}

impl Load {
    /// Artifact label.
    pub fn name(&self) -> &'static str {
        match self {
            Load::Low => "low",
            Load::Overload => "overload",
        }
    }

    fn rate(&self, service_rps: f64) -> f64 {
        match self {
            Load::Low => service_rps * 0.25,
            Load::Overload => service_rps * 8.0,
        }
    }
}

/// Final counters of one pipeline stage, flattened for the artifact.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage name from the session plan.
    pub stage: String,
    /// Coalesced batches run.
    pub batches_run: usize,
    /// Rows served.
    pub rows_served: usize,
    /// Largest per-flush drain observed.
    pub queued_high_water: usize,
    /// Window the policy ended on (tracks the controller when adaptive).
    pub final_window: usize,
    /// Mean engine service time per flush, in microseconds.
    pub mean_service_us: f64,
}

/// One cell of the scenario matrix, measured.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// `{model}_{policy}_{load}`.
    pub name: String,
    /// `convnet` or `transformer`.
    pub model: &'static str,
    /// `static` or `adaptive`.
    pub policy: &'static str,
    /// `low` or `overload`.
    pub load: &'static str,
    /// `poisson` or `fixed`.
    pub arrival: &'static str,
    /// Requests submitted (all are resolved).
    pub requests: usize,
    /// Scheduled arrival rate, requests/s.
    pub offered_rps: f64,
    /// Resolved requests over total wall time, requests/s.
    pub achieved_rps: f64,
    /// Latency percentiles from scheduled arrival to resolution, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Exact observed maximum, ms.
    pub max_ms: f64,
    /// Exact mean, ms.
    pub mean_ms: f64,
    /// The latency SLO this scenario was judged against, ms.
    pub slo_ms: f64,
    /// Fraction of requests with latency ≤ SLO, in `[0, 1]`.
    pub slo_conformance: f64,
    /// Final per-stage counters.
    pub stages: Vec<StageRow>,
}

/// The whole artifact, pre-serialization.
#[derive(Debug)]
pub struct ServeReport {
    /// `smoke` or `full`.
    pub mode: &'static str,
    /// Arrival-process label shared by every scenario.
    pub arrival: &'static str,
    /// Base seed.
    pub seed: u64,
    /// Requests per scenario.
    pub requests_per_scenario: usize,
    /// All measured scenarios, matrix order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Runs the full scenario matrix and returns the report.
pub fn run(cfg: ServeBenchConfig) -> ServeReport {
    let mut scenarios = Vec::new();
    run_convnet(cfg, &mut scenarios);
    run_transformer(cfg, &mut scenarios);
    ServeReport {
        mode: if cfg.smoke { "smoke" } else { "full" },
        arrival: if cfg.poisson { "poisson" } else { "fixed" },
        seed: cfg.seed,
        requests_per_scenario: cfg.requests(),
        scenarios,
    }
}

/// The policy half of the matrix, shared by both models.
fn policies() -> [(&'static str, BatchPolicy); 2] {
    [
        (
            "static",
            BatchPolicy::Static(BatchOptions {
                max_batch: 64,
                max_delay: Duration::from_millis(1),
            }),
        ),
        (
            "adaptive",
            BatchPolicy::Adaptive(AdaptiveOptions {
                min_batch: 1,
                max_batch: 64,
                ..AdaptiveOptions::default()
            }),
        ),
    ]
}

fn run_convnet(cfg: ServeBenchConfig, out: &mut Vec<ScenarioResult>) {
    let images = 16;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc0e);
    let mut ps = ParamSet::new();
    let mut net = resnet20_mini(&mut ps, 10);
    let batch = Tensor::randn(&mut rng, &[images, 3, 16, 16], 1.0);
    let _ = lutify_convnet(
        &mut net,
        &mut ps,
        LutConfig::default(),
        CentroidInit::Kmeans,
        ConvertPolicy::default(),
        batch.clone(),
        &mut rng,
    );
    let per = 3 * 16 * 16;
    let inputs: Vec<Tensor> = (0..images)
        .map(|i| Tensor::from_vec(batch.data()[i * per..(i + 1) * per].to_vec(), &[3, 16, 16]))
        .collect();
    run_model(cfg, "convnet", &net, &ps, &inputs, out);
}

fn run_transformer(cfg: ServeBenchConfig, out: &mut Vec<ScenarioResult>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7f0);
    let mut ps = ParamSet::new();
    let mut net = distilbert_mini(&mut ps, 3);
    let tokens: Vec<usize> = (0..6 * 16).map(|i| (i * 5 + 3) % 64).collect();
    let _ = lutify_transformer(
        &mut net,
        &mut ps,
        LutConfig::default(),
        CentroidInit::Kmeans,
        ConvertPolicy::default(),
        &tokens,
        6,
        16,
        &mut rng,
    );
    let inputs: Vec<Vec<usize>> = (0..6)
        .map(|i| tokens[i * 16..(i + 1) * 16].to_vec())
        .collect();
    run_model(cfg, "transformer", &net, &ps, &inputs, out);
}

/// Calibrates the model's batch-1 service latency, then measures every
/// policy × load cell.
fn run_model<M: ServableModel>(
    cfg: ServeBenchConfig,
    model_name: &'static str,
    net: &M,
    ps: &ParamSet,
    inputs: &[M::Input],
    out: &mut Vec<ScenarioResult>,
) {
    let mut rt = LutRuntime::new(lutdla_lutboost::DeployConfig::bf16_int8());
    let deploy_cfg = rt.config();

    // Closed-loop batch-1 calibration: min submit→resolve wall time.
    let base = {
        let session = rt.model_session(net, ps);
        let mut best = Duration::MAX;
        for i in 0..8 {
            let t0 = Instant::now();
            let h = session
                .submit(inputs[i % inputs.len()].clone())
                .expect("valid input");
            session.flush();
            h.wait().expect("session alive");
            let dt = t0.elapsed();
            if i >= 2 {
                best = best.min(dt); // skip cache-warming iterations
            }
        }
        best
    };
    let service_rps = 1.0 / base.as_secs_f64().max(1e-9);
    let slo = (base * 3).max(Duration::from_millis(1));
    println!(
        "{model_name}: batch-1 latency {:.3} ms → service {:.0} req/s, SLO {:.3} ms",
        base.as_secs_f64() * 1e3,
        service_rps,
        slo.as_secs_f64() * 1e3,
    );

    for (policy_name, policy) in policies() {
        for load in [Load::Low, Load::Overload] {
            let idx = out.len() as u64;
            let arrival = cfg.arrival(idx);
            let rate = load.rate(service_rps);
            let offsets = arrival.schedule(cfg.requests(), rate);
            let session = rt.model_session_with_policy(net, ps, deploy_cfg, policy);
            let scenario = drive(
                &session,
                inputs,
                &offsets,
                slo,
                ScenarioLabel {
                    model: model_name,
                    policy: policy_name,
                    load: load.name(),
                    arrival: arrival.name(),
                    offered_rps: rate,
                    slo_ms: slo.as_secs_f64() * 1e3,
                },
            );
            println!(
                "  {:<28} offered {:>7.0} req/s | achieved {:>7.0} | p50 {:>8.3} ms | p99 {:>8.3} ms | SLO-conformance {:.2}",
                scenario.name,
                scenario.offered_rps,
                scenario.achieved_rps,
                scenario.p50_ms,
                scenario.p99_ms,
                scenario.slo_conformance,
            );
            out.push(scenario);
        }
    }
}

struct ScenarioLabel {
    model: &'static str,
    policy: &'static str,
    load: &'static str,
    arrival: &'static str,
    offered_rps: f64,
    slo_ms: f64,
}

/// Replays one arrival schedule against a session: open-loop submits at
/// the scheduled instants, flushing the backlog while idle (and whenever
/// it reaches [`BURST`] when the schedule never lets the loop go idle).
fn drive<M: ServableModel>(
    session: &ModelSession<'_, M>,
    inputs: &[M::Input],
    offsets: &[Duration],
    slo: Duration,
    label: ScenarioLabel,
) -> ScenarioResult {
    let t0 = Instant::now();
    let mut pending = Vec::with_capacity(offsets.len());
    for (i, off) in offsets.iter().enumerate() {
        // Hold to the schedule; service the open batch while waiting.
        loop {
            let now = t0.elapsed();
            if now >= *off {
                break;
            }
            if session.queued() > 0 {
                session.flush();
            } else {
                std::thread::sleep(*off - now);
            }
        }
        pending.push(
            session
                .submit(inputs[i % inputs.len()].clone())
                .expect("valid input"),
        );
        if session.queued() >= BURST {
            session.flush();
        }
    }
    session.flush();
    let total = t0.elapsed();

    let mut hist = LatencyHistogram::new();
    let mut conforming = 0usize;
    for (off, p) in offsets.iter().zip(pending) {
        let (_rows, timing) = p.wait_timed().expect("session alive");
        // Latency from the *scheduled* arrival, not the submit instant:
        // time the request spent queued behind the schedule counts too.
        let lat = timing.latency_since(t0 + *off);
        hist.record(lat);
        if lat <= slo {
            conforming += 1;
        }
    }

    let ms = |d: Option<Duration>| d.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
    let stages = session
        .stage_stats()
        .into_iter()
        .map(|(name, st)| StageRow {
            stage: name.to_string(),
            batches_run: st.batches_run,
            rows_served: st.rows_served,
            queued_high_water: st.queued_high_water,
            final_window: st.current_window,
            mean_service_us: st.service_nanos as f64 / st.batches_run.max(1) as f64 / 1e3,
        })
        .collect();
    ScenarioResult {
        name: format!("{}_{}_{}", label.model, label.policy, label.load),
        model: label.model,
        policy: label.policy,
        load: label.load,
        arrival: label.arrival,
        requests: offsets.len(),
        offered_rps: label.offered_rps,
        achieved_rps: offsets.len() as f64 / total.as_secs_f64().max(1e-9),
        p50_ms: ms(hist.percentile(0.50)),
        p95_ms: ms(hist.percentile(0.95)),
        p99_ms: ms(hist.percentile(0.99)),
        max_ms: ms(hist.max()),
        mean_ms: ms(hist.mean()),
        slo_ms: label.slo_ms,
        slo_conformance: conforming as f64 / offsets.len().max(1) as f64,
        stages,
    }
}

/// Serializes the report into the `BENCH_serve.json` schema checked by
/// [`crate::artifact::check_serve_artifact_text`].
pub fn to_json(report: &ServeReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"serve\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    s.push_str(&format!("  \"arrival\": \"{}\",\n", report.arrival));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!(
        "  \"requests_per_scenario\": {},\n",
        report.requests_per_scenario
    ));
    s.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in report.scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"policy\": \"{}\", \"load\": \"{}\", \
             \"arrival\": \"{}\", \"requests\": {}, \"offered_rps\": {:.1}, \
             \"achieved_rps\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"max_ms\": {:.4}, \"mean_ms\": {:.4}, \"slo_ms\": {:.4}, \
             \"slo_conformance\": {:.4}, \"stages\": [\n",
            sc.name,
            sc.model,
            sc.policy,
            sc.load,
            sc.arrival,
            sc.requests,
            sc.offered_rps,
            sc.achieved_rps,
            sc.p50_ms,
            sc.p95_ms,
            sc.p99_ms,
            sc.max_ms,
            sc.mean_ms,
            sc.slo_ms,
            sc.slo_conformance,
        ));
        for (j, st) in sc.stages.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"stage\": \"{}\", \"batches_run\": {}, \"rows_served\": {}, \
                 \"queued_high_water\": {}, \"final_window\": {}, \"mean_service_us\": {:.2}}}{}\n",
                st.stage,
                st.batches_run,
                st.rows_served,
                st.queued_high_water,
                st.final_window,
                st.mean_service_us,
                if j + 1 == sc.stages.len() { "" } else { "," },
            ));
        }
        s.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == report.scenarios.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
