//! Open-loop serving benchmark behind the `bench_serve` binary.
//!
//! Sweeps a scenario matrix — model (`convnet`/`transformer`) × batch
//! policy (`static`/`adaptive`) × offered load (`low`/`overload`) —
//! against builder-constructed [`ModelSession`]s
//! ([`LutRuntime::serve`]). Each scenario
//! replays a deterministic arrival schedule ([`ArrivalProcess`]) and
//! submits requests at their *scheduled* instants regardless of server
//! progress, so queueing delay lands in the measured latency rather than
//! silently throttling the offered rate (no coordinated omission). Per
//! request latency is `resolved_at − scheduled_arrival`, taken from the
//! [`ServeTiming`] stamps the serving layer records once per coalesced
//! flush; per-stage service time comes from
//! [`StageStats::service_nanos`].
//!
//! [`ServeTiming`]: lutdla_vq::ServeTiming
//! [`StageStats::service_nanos`]: lutdla_vq::StageStats::service_nanos
//!
//! Rates are calibrated per model: a closed-loop batch-1 pass measures the
//! base service latency, then `low` offers a quarter of that service rate
//! (the server keeps up; SLO conformance should be high) and `overload`
//! offers 8× (the queue grows without bound; the latency ramp makes
//! p99 ≫ p50). The SLO is `max(3 × base latency, 1 ms)`.
//!
//! A second family of scenarios (`gateway_*`) drives the multi-tenant
//! [`ServeGateway`]: two registered models × three SLO-class tenants each,
//! behind one persistent gateway swept across the same low/overload
//! levels. Those scenarios report admission-control outcomes (admitted /
//! shed / `shed_ratio`) and per-class latency percentiles alongside the
//! interval-delta stage counters ([`StageStats::delta`]), the runtime's
//! engine-cache totals, and the per-stage encode-memo counters — the
//! latter exercised by a duplicate-heavy `gateway_memo_dup_low` scenario
//! that replays one image against cold memos.
//!
//! A third family (`decode_*`) measures token-streaming decode sessions
//! ([`LutRuntime::decode_session`]): several sequential streams each feed
//! one token per step at a paced arrival schedule, reporting per-token
//! latency percentiles, steps/s, the closed-loop full-re-eval baseline
//! (every step re-encoding the whole prefix through a fresh
//! [`ModelSession`] submit), and the prefix-reuse counters
//! ([`DecodeSession::decode_stats`]) that explain the speedup.
//!
//! [`StageStats::delta`]: lutdla_vq::StageStats::delta
//! [`DecodeSession::decode_stats`]: lutdla_lutboost::DecodeSession::decode_stats

use std::time::{Duration, Instant};

use crate::arrival::ArrivalProcess;
use crate::histogram::LatencyHistogram;
use lutdla_lutboost::{
    lutify_convnet, lutify_transformer, CentroidInit, ClassPolicy, ConvertPolicy, GatewayOptions,
    LutConfig, LutRuntime, ModelSession, RuntimeOptions, ServeGateway, SloClass, TenantId,
};
use lutdla_models::trainable::{distilbert_mini, gpt_mini, resnet20_mini, ConvNet, ServableModel};
use lutdla_nn::ParamSet;
use lutdla_tensor::Tensor;
use lutdla_vq::{AdaptiveOptions, BatchOptions, BatchPolicy, Pending, ServeError, StageStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Submitted-but-unflushed backlog that forces a flush under overload, so
/// coalescing windows (and the adaptive controller) see real batches.
const BURST: usize = 8;

/// The gateway drive's backlog threshold. Larger than [`BURST`] on
/// purpose: with six tenants round-robined, a 24-submit window lands ~4
/// requests on each 2-deep best-effort queue between pump rounds, so
/// overload produces real admission sheds — and admitted best-effort
/// requests (round quota 1) demonstrably wait extra rounds behind the
/// latency class.
const GATEWAY_BURST: usize = 24;

/// Per-stage encode-memo capacity (rows) for the gateway runtime. 8× the
/// distinct-row population a stage sees (≤ 8 images × 256 patches), so
/// even a fully skewed shard distribution cannot evict and the
/// duplicate-heavy scenario's hit counters are deterministic.
const GATEWAY_MEMO_ROWS: usize = 16384;

/// Harness configuration, straight from the CLI.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// CI mode: fewer requests per scenario.
    pub smoke: bool,
    /// `true` = seeded Poisson arrivals, `false` = fixed-rate.
    pub poisson: bool,
    /// Base seed; each scenario offsets it so traces decorrelate.
    pub seed: u64,
}

impl ServeBenchConfig {
    fn requests(&self) -> usize {
        if self.smoke {
            40
        } else {
            256
        }
    }

    fn arrival(&self, scenario_idx: u64) -> ArrivalProcess {
        if self.poisson {
            ArrivalProcess::Poisson {
                seed: self.seed.wrapping_add(scenario_idx),
            }
        } else {
            ArrivalProcess::Fixed
        }
    }
}

/// Offered-load level, calibrated against the measured service rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// 0.25× the batch-1 service rate: the server keeps up.
    Low,
    /// 8× the batch-1 service rate: the queue grows without bound.
    Overload,
}

impl Load {
    /// Artifact label.
    pub fn name(&self) -> &'static str {
        match self {
            Load::Low => "low",
            Load::Overload => "overload",
        }
    }

    fn rate(&self, service_rps: f64) -> f64 {
        match self {
            Load::Low => service_rps * 0.25,
            Load::Overload => service_rps * 8.0,
        }
    }
}

/// Final counters of one pipeline stage, flattened for the artifact.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage name from the session plan.
    pub stage: String,
    /// Coalesced batches run.
    pub batches_run: usize,
    /// Rows served.
    pub rows_served: usize,
    /// Largest per-flush drain observed.
    pub queued_high_water: usize,
    /// Window the policy ended on (tracks the controller when adaptive).
    pub final_window: usize,
    /// Mean engine service time per flush, in microseconds.
    pub mean_service_us: f64,
}

/// One cell of the scenario matrix, measured.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// `{model}_{policy}_{load}`.
    pub name: String,
    /// `convnet` or `transformer`.
    pub model: &'static str,
    /// `static` or `adaptive`.
    pub policy: &'static str,
    /// `low` or `overload`.
    pub load: &'static str,
    /// `poisson` or `fixed`.
    pub arrival: &'static str,
    /// Requests submitted (all are resolved).
    pub requests: usize,
    /// Scheduled arrival rate, requests/s.
    pub offered_rps: f64,
    /// Resolved requests over total wall time, requests/s.
    pub achieved_rps: f64,
    /// Latency percentiles from scheduled arrival to resolution, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Exact observed maximum, ms.
    pub max_ms: f64,
    /// Exact mean, ms.
    pub mean_ms: f64,
    /// The latency SLO this scenario was judged against, ms.
    pub slo_ms: f64,
    /// Fraction of requests with latency ≤ SLO, in `[0, 1]`.
    pub slo_conformance: f64,
    /// Final per-stage counters.
    pub stages: Vec<StageRow>,
}

/// Per-class latency/admission summary inside a gateway scenario.
#[derive(Debug, Clone)]
pub struct GatewayClassRow {
    /// `latency`, `throughput`, or `best_effort`.
    pub class: &'static str,
    /// Requests offered to tenants of this class.
    pub requests: usize,
    /// Of those, admitted past the bounded queues.
    pub admitted: usize,
    /// Of those, turned away at admission.
    pub shed: usize,
    /// Median latency of the admitted requests, ms (0 if none admitted).
    pub p50_ms: f64,
    /// 99th percentile, ms (0 if none admitted).
    pub p99_ms: f64,
}

/// One measured `gateway_*` scenario: mixed SLO classes over two models
/// behind one [`ServeGateway`], at one offered-load level.
#[derive(Debug, Clone)]
pub struct GatewayScenarioResult {
    /// `gateway_mixed_{load}`.
    pub name: String,
    /// `low` or `overload`.
    pub load: &'static str,
    /// `poisson` or `fixed`.
    pub arrival: &'static str,
    /// Registered models behind the gateway.
    pub models: usize,
    /// Registered tenants.
    pub tenants: usize,
    /// Requests offered across all tenants.
    pub requests: usize,
    /// Requests admitted (all of these are served: the scenario drains).
    pub admitted: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// `shed / requests`, in `[0, 1]`.
    pub shed_ratio: f64,
    /// Whole-model coalesced batches this scenario ran (interval delta,
    /// not gateway-lifetime totals — the gateway persists across loads).
    pub batches_run: u64,
    /// Requests served this scenario (interval delta).
    pub rows_served: u64,
    /// Engine-cache hits of the backing runtime ([`LutRuntime::stats`]),
    /// lifetime totals: the gateway registers two models that share a
    /// calibration session's engines, so hits + misses must be nonzero.
    pub engine_cache_hits: u64,
    /// Engine-cache misses (engines built) of the backing runtime.
    pub engine_cache_misses: u64,
    /// Engine-cache evictions of the backing runtime.
    pub engine_cache_evictions: u64,
    /// Encode-memo hits this scenario (interval delta summed over every
    /// stage of every registered model).
    pub memo_hits: usize,
    /// Encode-memo misses this scenario (interval delta, summed).
    pub memo_misses: usize,
    /// Encode-memo evictions this scenario (interval delta, summed).
    pub memo_evictions: usize,
    /// The latency SLO the per-class percentiles are judged against, ms.
    pub slo_ms: f64,
    /// Per-class admission/latency summaries, drain-priority order.
    pub classes: Vec<GatewayClassRow>,
    /// Per-stage counters for this scenario's interval
    /// ([`StageStats::delta`] against the scenario-start snapshot), stage
    /// names prefixed `model/stage`.
    pub stages: Vec<StageRow>,
}

/// One measured `decode_*` scenario: sequential token-streaming decode
/// sessions over a causal transformer, at one offered step-rate level.
#[derive(Debug, Clone)]
pub struct DecodeScenarioResult {
    /// `decode_{load}`.
    pub name: String,
    /// Always `gpt` (the causal-transformer proxy).
    pub model: &'static str,
    /// `low` or `overload`.
    pub load: &'static str,
    /// `poisson` or `fixed`.
    pub arrival: &'static str,
    /// Sequential decode streams (one `DecodeSession` each).
    pub streams: usize,
    /// Tokens decoded per stream.
    pub seq_len: usize,
    /// Steps served — must equal `streams * seq_len` (the artifact
    /// checker gates this accounting).
    pub steps: usize,
    /// Scheduled arrival rate, steps/s.
    pub offered_sps: f64,
    /// Per-token latency from scheduled arrival to resolution, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Exact observed maximum, ms.
    pub max_ms: f64,
    /// Exact mean, ms.
    pub mean_ms: f64,
    /// Steps served over total wall time (pacing included), steps/s.
    pub steps_per_s: f64,
    /// Closed-loop baseline: every step re-encoding its whole prefix
    /// through a fresh `ModelSession` submit, steps/s.
    pub full_reeval_steps_per_s: f64,
    /// Decode service rate (sum of per-step service times, pacing
    /// excluded) over the full-re-eval baseline rate. > 1 means prefix
    /// code reuse beat re-encoding from scratch.
    pub prefix_speedup: f64,
    /// Prefix rows spliced from cached packed codes, summed over every
    /// LUT stage of every stream.
    pub reused_rows: u64,
    /// Rows that paid the similarity walk, summed likewise.
    pub walked_rows: u64,
}

/// The whole artifact, pre-serialization.
#[derive(Debug)]
pub struct ServeReport {
    /// `smoke` or `full`.
    pub mode: &'static str,
    /// Arrival-process label shared by every scenario.
    pub arrival: &'static str,
    /// Base seed.
    pub seed: u64,
    /// Requests per scenario.
    pub requests_per_scenario: usize,
    /// All measured scenarios, matrix order.
    pub scenarios: Vec<ScenarioResult>,
    /// The multi-tenant gateway scenarios (one gateway across all loads).
    pub gateway_scenarios: Vec<GatewayScenarioResult>,
    /// The token-streaming decode scenarios.
    pub decode_scenarios: Vec<DecodeScenarioResult>,
}

/// Runs the full scenario matrix and returns the report.
pub fn run(cfg: ServeBenchConfig) -> ServeReport {
    let mut scenarios = Vec::new();
    run_convnet(cfg, &mut scenarios);
    run_transformer(cfg, &mut scenarios);
    let mut gateway_scenarios = Vec::new();
    run_gateway(cfg, &mut gateway_scenarios);
    let mut decode_scenarios = Vec::new();
    run_decode(cfg, &mut decode_scenarios);
    ServeReport {
        mode: if cfg.smoke { "smoke" } else { "full" },
        arrival: if cfg.poisson { "poisson" } else { "fixed" },
        seed: cfg.seed,
        requests_per_scenario: cfg.requests(),
        scenarios,
        gateway_scenarios,
        decode_scenarios,
    }
}

/// The policy half of the matrix, shared by both models.
fn policies() -> [(&'static str, BatchPolicy); 2] {
    [
        (
            "static",
            BatchPolicy::Static(BatchOptions {
                max_batch: 64,
                max_delay: Duration::from_millis(1),
            }),
        ),
        (
            "adaptive",
            BatchPolicy::Adaptive(AdaptiveOptions {
                min_batch: 1,
                max_batch: 64,
                ..AdaptiveOptions::default()
            }),
        ),
    ]
}

fn run_convnet(cfg: ServeBenchConfig, out: &mut Vec<ScenarioResult>) {
    let images = 16;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc0e);
    let mut ps = ParamSet::new();
    let mut net = resnet20_mini(&mut ps, 10);
    let batch = Tensor::randn(&mut rng, &[images, 3, 16, 16], 1.0);
    let _ = lutify_convnet(
        &mut net,
        &mut ps,
        LutConfig::default(),
        CentroidInit::Kmeans,
        ConvertPolicy::default(),
        batch.clone(),
        &mut rng,
    );
    let per = 3 * 16 * 16;
    let inputs: Vec<Tensor> = (0..images)
        .map(|i| Tensor::from_vec(batch.data()[i * per..(i + 1) * per].to_vec(), &[3, 16, 16]))
        .collect();
    run_model(cfg, "convnet", &net, &ps, &inputs, out);
}

fn run_transformer(cfg: ServeBenchConfig, out: &mut Vec<ScenarioResult>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7f0);
    let mut ps = ParamSet::new();
    let mut net = distilbert_mini(&mut ps, 3);
    let tokens: Vec<usize> = (0..6 * 16).map(|i| (i * 5 + 3) % 64).collect();
    let _ = lutify_transformer(
        &mut net,
        &mut ps,
        LutConfig::default(),
        CentroidInit::Kmeans,
        ConvertPolicy::default(),
        &tokens,
        6,
        16,
        &mut rng,
    );
    let inputs: Vec<Vec<usize>> = (0..6)
        .map(|i| tokens[i * 16..(i + 1) * 16].to_vec())
        .collect();
    run_model(cfg, "transformer", &net, &ps, &inputs, out);
}

/// Calibrates the model's batch-1 service latency, then measures every
/// policy × load cell.
fn run_model<M: ServableModel>(
    cfg: ServeBenchConfig,
    model_name: &'static str,
    net: &M,
    ps: &ParamSet,
    inputs: &[M::Input],
    out: &mut Vec<ScenarioResult>,
) {
    let mut rt = LutRuntime::new(lutdla_lutboost::DeployConfig::bf16_int8());
    let deploy_cfg = rt.config();

    // Closed-loop batch-1 calibration: min submit→resolve wall time.
    let base = {
        let session = rt.serve(net, ps).build_model();
        let mut best = Duration::MAX;
        for i in 0..8 {
            let t0 = Instant::now();
            let h = session
                .submit(inputs[i % inputs.len()].clone())
                .expect("valid input");
            session.flush();
            h.wait().expect("session alive");
            let dt = t0.elapsed();
            if i >= 2 {
                best = best.min(dt); // skip cache-warming iterations
            }
        }
        best
    };
    let service_rps = 1.0 / base.as_secs_f64().max(1e-9);
    let slo = (base * 3).max(Duration::from_millis(1));
    println!(
        "{model_name}: batch-1 latency {:.3} ms → service {:.0} req/s, SLO {:.3} ms",
        base.as_secs_f64() * 1e3,
        service_rps,
        slo.as_secs_f64() * 1e3,
    );

    for (policy_name, policy) in policies() {
        for load in [Load::Low, Load::Overload] {
            let idx = out.len() as u64;
            let arrival = cfg.arrival(idx);
            let rate = load.rate(service_rps);
            let offsets = arrival.schedule(cfg.requests(), rate);
            let session = rt
                .serve(net, ps)
                .config(deploy_cfg)
                .policy(policy)
                .build_model();
            let scenario = drive(
                &session,
                inputs,
                &offsets,
                slo,
                ScenarioLabel {
                    model: model_name,
                    policy: policy_name,
                    load: load.name(),
                    arrival: arrival.name(),
                    offered_rps: rate,
                    slo_ms: slo.as_secs_f64() * 1e3,
                },
            );
            println!(
                "  {:<28} offered {:>7.0} req/s | achieved {:>7.0} | p50 {:>8.3} ms | p99 {:>8.3} ms | SLO-conformance {:.2}",
                scenario.name,
                scenario.offered_rps,
                scenario.achieved_rps,
                scenario.p50_ms,
                scenario.p99_ms,
                scenario.slo_conformance,
            );
            out.push(scenario);
        }
    }
}

struct ScenarioLabel {
    model: &'static str,
    policy: &'static str,
    load: &'static str,
    arrival: &'static str,
    offered_rps: f64,
    slo_ms: f64,
}

/// Replays one arrival schedule against a session: open-loop submits at
/// the scheduled instants, flushing the backlog while idle (and whenever
/// it reaches [`BURST`] when the schedule never lets the loop go idle).
fn drive<M: ServableModel>(
    session: &ModelSession<'_, M>,
    inputs: &[M::Input],
    offsets: &[Duration],
    slo: Duration,
    label: ScenarioLabel,
) -> ScenarioResult {
    let t0 = Instant::now();
    let mut pending = Vec::with_capacity(offsets.len());
    for (i, off) in offsets.iter().enumerate() {
        // Hold to the schedule; service the open batch while waiting.
        loop {
            let now = t0.elapsed();
            if now >= *off {
                break;
            }
            if session.queued() > 0 {
                session.flush();
            } else {
                std::thread::sleep(*off - now);
            }
        }
        pending.push(
            session
                .submit(inputs[i % inputs.len()].clone())
                .expect("valid input"),
        );
        if session.queued() >= BURST {
            session.flush();
        }
    }
    session.flush();
    let total = t0.elapsed();

    let mut hist = LatencyHistogram::new();
    let mut conforming = 0usize;
    for (off, p) in offsets.iter().zip(pending) {
        let (_rows, timing) = p.wait_timed().expect("session alive");
        // Latency from the *scheduled* arrival, not the submit instant:
        // time the request spent queued behind the schedule counts too.
        let lat = timing.latency_since(t0 + *off);
        hist.record(lat);
        if lat <= slo {
            conforming += 1;
        }
    }

    let ms = |d: Option<Duration>| d.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
    let stages = session
        .stage_stats()
        .into_iter()
        .map(|(name, st)| StageRow {
            stage: name.to_string(),
            batches_run: st.batches_run,
            rows_served: st.rows_served,
            queued_high_water: st.queued_high_water,
            final_window: st.current_window,
            mean_service_us: st.service_nanos as f64 / st.batches_run.max(1) as f64 / 1e3,
        })
        .collect();
    ScenarioResult {
        name: format!("{}_{}_{}", label.model, label.policy, label.load),
        model: label.model,
        policy: label.policy,
        load: label.load,
        arrival: label.arrival,
        requests: offsets.len(),
        offered_rps: label.offered_rps,
        achieved_rps: offsets.len() as f64 / total.as_secs_f64().max(1e-9),
        p50_ms: ms(hist.percentile(0.50)),
        p95_ms: ms(hist.percentile(0.95)),
        p99_ms: ms(hist.percentile(0.99)),
        max_ms: ms(hist.max()),
        mean_ms: ms(hist.mean()),
        slo_ms: label.slo_ms,
        slo_conformance: conforming as f64 / offsets.len().max(1) as f64,
        stages,
    }
}

/// One converted convnet for the gateway scenarios (the "two models" are
/// two instances with independent parameters).
fn gateway_convnet(seed: u64) -> (ParamSet, ConvNet, Vec<Tensor>) {
    let images = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let mut net = resnet20_mini(&mut ps, 10);
    let batch = Tensor::randn(&mut rng, &[images, 3, 16, 16], 1.0);
    let _ = lutify_convnet(
        &mut net,
        &mut ps,
        LutConfig::default(),
        CentroidInit::Kmeans,
        ConvertPolicy::default(),
        batch.clone(),
        &mut rng,
    );
    let per = 3 * 16 * 16;
    let inputs = (0..images)
        .map(|i| Tensor::from_vec(batch.data()[i * per..(i + 1) * per].to_vec(), &[3, 16, 16]))
        .collect();
    (ps, net, inputs)
}

/// Measures the `gateway_*` scenarios: 2 models × 3 SLO classes (6
/// tenants) behind **one** [`ServeGateway`] that persists across the
/// low/overload sweep — per-scenario counters are interval deltas
/// ([`StageStats::delta`]), which is exactly the snapshot-diff idiom the
/// helper exists for. The `BestEffort` tenants run a deliberately tight
/// admission policy (2-deep queue, per-round quota 1) so overload shows
/// the shed-and-fairness asymmetry the artifact checker gates: best-effort
/// sheds while latency admits, and latency p99 stays at or below
/// best-effort p99.
///
/// A third scenario, `gateway_memo_dup_low`, replays the *same* image for
/// every request. It runs first, while the per-stage encode memos
/// ([`RuntimeOptions::memo_rows`]) are cold, so its interval delta shows
/// both memo misses (first encounter of each row) and hits (every repeat
/// skips the similarity walk) — the cross-request encode-memo path under
/// a duplicate-heavy serving load.
fn run_gateway(cfg: ServeBenchConfig, out: &mut Vec<GatewayScenarioResult>) {
    let (ps_a, net_a, inputs) = gateway_convnet(cfg.seed ^ 0x6a7e);
    let (ps_b, net_b, _) = gateway_convnet(cfg.seed ^ 0x6a7f);
    // The gateway runtime runs with per-stage encode memos enabled: the
    // duplicate-heavy `gateway_memo_dup_low` scenario (run first, while
    // the memos are cold) must show both misses and hits.
    let mut rt = LutRuntime::with_options(
        lutdla_lutboost::DeployConfig::bf16_int8(),
        RuntimeOptions {
            memo_rows: GATEWAY_MEMO_ROWS,
            ..RuntimeOptions::default()
        },
    );

    // Closed-loop batch-1 calibration on one model (both are the same
    // architecture), before the gateway takes over deploy state.
    let base = {
        let session = rt.serve(&net_a, &ps_a).build_model();
        let mut best = Duration::MAX;
        for i in 0..8 {
            let t0 = Instant::now();
            let h = session
                .submit(inputs[i % inputs.len()].clone())
                .expect("valid input");
            session.flush();
            h.wait().expect("session alive");
            let dt = t0.elapsed();
            if i >= 2 {
                best = best.min(dt);
            }
        }
        best
    };
    let service_rps = 1.0 / base.as_secs_f64().max(1e-9);
    let slo = (base * 3).max(Duration::from_millis(1));
    println!(
        "gateway: batch-1 latency {:.3} ms → service {:.0} req/s, SLO {:.3} ms",
        base.as_secs_f64() * 1e3,
        service_rps,
        slo.as_secs_f64() * 1e3,
    );

    let mut gw = ServeGateway::new(GatewayOptions::new(rt.config()));
    let models = [
        ("cnn_a", gw.register_model(&mut rt, "cnn_a", &net_a, &ps_a)),
        ("cnn_b", gw.register_model(&mut rt, "cnn_b", &net_b, &ps_b)),
    ];
    let mut tenants: Vec<(TenantId, SloClass)> = Vec::new();
    for (mname, mid) in models {
        for class in SloClass::ALL {
            let policy = if class == SloClass::BestEffort {
                ClassPolicy {
                    max_queue: 2,
                    batch: BatchPolicy::Static(BatchOptions::immediate(1)),
                    shed_deadline: None,
                }
            } else {
                class.default_policy()
            };
            let name = format!("{mname}_{class}");
            tenants.push((gw.register_tenant_with(&name, mid, class, policy), class));
        }
    }

    for (load, dup) in [
        (Load::Low, true),
        (Load::Low, false),
        (Load::Overload, false),
    ] {
        // Offset the arrival seed past the per-model scenarios so traces
        // stay decorrelated from the session matrix.
        let arrival = cfg.arrival(0x40 + out.len() as u64);
        let rate = load.rate(service_rps);
        let offsets = arrival.schedule(cfg.requests(), rate);

        // Interval baselines: the gateway persists across loads, so every
        // reported counter is a delta against this snapshot.
        let prev = gw.stats();
        let prev_stages: Vec<Vec<StageStats>> = models
            .iter()
            .map(|(_, mid)| gw.stage_stats(*mid).into_iter().map(|(_, s)| s).collect())
            .collect();

        let t0 = Instant::now();
        let mut admitted: Vec<(SloClass, Duration, Pending)> = Vec::new();
        let mut offered = [0usize; 3];
        let mut shed = [0usize; 3];
        for (i, off) in offsets.iter().enumerate() {
            // Hold to the schedule; serve the backlog while waiting.
            loop {
                let now = t0.elapsed();
                if now >= *off {
                    break;
                }
                if gw.queued() > 0 {
                    gw.pump();
                } else {
                    std::thread::sleep(*off - now);
                }
            }
            let (tenant, class) = tenants[i % tenants.len()];
            offered[class.index()] += 1;
            // The memo scenario is duplicate-heavy on purpose: one image.
            let input = if dup {
                &inputs[0]
            } else {
                &inputs[i % inputs.len()]
            };
            match gw.submit(tenant, input.clone()) {
                Ok(h) => admitted.push((class, *off, h)),
                Err(ServeError::Shed { .. }) => shed[class.index()] += 1,
                Err(e) => panic!("gateway rejected a valid request: {e}"),
            }
            if gw.queued() >= GATEWAY_BURST {
                gw.pump();
            }
        }
        gw.drain();

        let mut hists = [
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        ];
        let admitted_total = admitted.len();
        for (class, off, h) in admitted {
            let (_rows, timing) = h.wait_timed().expect("gateway alive");
            hists[class.index()].record(timing.latency_since(t0 + off));
        }

        let ms = |d: Option<Duration>| d.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
        let classes: Vec<GatewayClassRow> = SloClass::ALL
            .iter()
            .map(|&class| {
                let i = class.index();
                GatewayClassRow {
                    class: class.as_str(),
                    requests: offered[i],
                    admitted: offered[i] - shed[i],
                    shed: shed[i],
                    p50_ms: ms(hists[i].percentile(0.50)),
                    p99_ms: ms(hists[i].percentile(0.99)),
                }
            })
            .collect();
        let stats = gw.stats();
        let cache = rt.stats();
        let mut stages = Vec::new();
        let (mut memo_hits, mut memo_misses, mut memo_evictions) = (0usize, 0usize, 0usize);
        for ((mname, mid), prev_model) in models.iter().zip(&prev_stages) {
            for ((stage, now), prev) in gw.stage_stats(*mid).iter().zip(prev_model) {
                let d = now.delta(prev);
                memo_hits += d.memo_hits;
                memo_misses += d.memo_misses;
                memo_evictions += d.memo_evictions;
                stages.push(StageRow {
                    stage: format!("{mname}/{stage}"),
                    batches_run: d.batches_run,
                    rows_served: d.rows_served,
                    queued_high_water: d.queued_high_water,
                    final_window: d.current_window,
                    mean_service_us: d.service_nanos as f64 / d.batches_run.max(1) as f64 / 1e3,
                });
            }
        }
        let requests = offsets.len();
        let total_shed: usize = shed.iter().sum();
        let scenario = GatewayScenarioResult {
            name: if dup {
                format!("gateway_memo_dup_{}", load.name())
            } else {
                format!("gateway_mixed_{}", load.name())
            },
            load: load.name(),
            arrival: arrival.name(),
            models: models.len(),
            tenants: tenants.len(),
            requests,
            admitted: admitted_total,
            shed: total_shed,
            shed_ratio: total_shed as f64 / requests.max(1) as f64,
            batches_run: (stats.batches_run - prev.batches_run),
            rows_served: stats.rows_served - prev.rows_served,
            engine_cache_hits: cache.hits,
            engine_cache_misses: cache.misses,
            engine_cache_evictions: cache.evictions,
            memo_hits,
            memo_misses,
            memo_evictions,
            slo_ms: slo.as_secs_f64() * 1e3,
            classes,
            stages,
        };
        println!(
            "  {:<28} offered {:>7.0} req/s | admitted {:>3} | shed {:>3} | batches {:>4} | memo {:>5}h/{:>5}m | lat p99 {:>8.3} ms | be p99 {:>8.3} ms",
            scenario.name,
            rate,
            scenario.admitted,
            scenario.shed,
            scenario.batches_run,
            scenario.memo_hits,
            scenario.memo_misses,
            scenario.classes[0].p99_ms,
            scenario.classes[2].p99_ms,
        );
        out.push(scenario);
    }
}

/// Measures the `decode_*` scenarios: a converted causal transformer
/// (`gpt_mini`) decoded token by token through [`LutRuntime::decode_session`],
/// one stream after another, with arrivals paced at `low`/`overload`
/// multiples of the measured closed-loop step rate.
///
/// Two rates frame the tentpole's claim. `full_reeval_steps_per_s` is the
/// do-nothing baseline — every step submits its whole prefix to a plain
/// [`ModelSession`], so every stage re-walks every row every step.
/// `prefix_speedup` divides the decode session's *service* rate (sum of
/// per-step service times, pacing sleeps excluded) by that baseline: the
/// decode path runs the same full-prefix forward but splices the prefix's
/// packed codes out of its per-stage caches, so only the new token's rows
/// pay the similarity walk — `reused_rows`/`walked_rows` shows the ratio
/// doing the work.
fn run_decode(cfg: ServeBenchConfig, out: &mut Vec<DecodeScenarioResult>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdec0);
    let mut ps = ParamSet::new();
    let mut net = gpt_mini(&mut ps, 16);
    let tokens: Vec<usize> = (0..6 * 16).map(|i| (i * 13 + 7) % 64).collect();
    let _ = lutify_transformer(
        &mut net,
        &mut ps,
        LutConfig::default(),
        CentroidInit::Kmeans,
        ConvertPolicy::default(),
        &tokens,
        6,
        16,
        &mut rng,
    );
    let (streams, seq_len) = if cfg.smoke { (3, 8) } else { (8, 12) };
    let steps = streams * seq_len;
    let tok = |s: usize, t: usize| tokens[(s * seq_len + t) % tokens.len()];
    let mut rt = LutRuntime::new(lutdla_lutboost::DeployConfig::bf16_int8());

    // Closed-loop full-re-eval baseline: every step re-encodes its whole
    // prefix from scratch through a plain session submit.
    let full_reeval = {
        let session = rt.serve(&net, &ps).build_model();
        let t0 = Instant::now();
        for s in 0..streams {
            let mut prefix = Vec::with_capacity(seq_len);
            for t in 0..seq_len {
                prefix.push(tok(s, t));
                let h = session.submit(prefix.clone()).expect("valid prefix");
                session.flush();
                h.wait().expect("session alive");
            }
        }
        t0.elapsed()
    };
    let full_reeval_sps = steps as f64 / full_reeval.as_secs_f64().max(1e-9);

    // Closed-loop decode calibration: one throwaway stream sets the step
    // service rate the load levels are multiples of.
    let service_sps = {
        let session = rt.decode_session(&net, &ps).expect("causal model");
        let t0 = Instant::now();
        for t in 0..seq_len {
            let h = session.step(vec![tok(0, t)]).expect("valid step");
            h.wait().expect("step resolved");
        }
        seq_len as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    println!(
        "decode: closed-loop {service_sps:.0} steps/s | full re-eval {full_reeval_sps:.0} steps/s",
    );

    for load in [Load::Low, Load::Overload] {
        // Offset the arrival seed past the session and gateway scenarios.
        let arrival = cfg.arrival(0x80 + out.len() as u64);
        let rate = load.rate(service_sps);
        let offsets = arrival.schedule(steps, rate);

        let t0 = Instant::now();
        let mut hist = LatencyHistogram::new();
        let mut service_total = Duration::ZERO;
        let (mut reused, mut walked) = (0u64, 0u64);
        let mut i = 0usize;
        for s in 0..streams {
            // One `DecodeSession` per stream; its per-stage caches (and
            // reuse counters) live for exactly this stream's prefix.
            let session = rt.decode_session(&net, &ps).expect("causal model");
            for t in 0..seq_len {
                let off = offsets[i];
                loop {
                    let now = t0.elapsed();
                    if now >= off {
                        break;
                    }
                    std::thread::sleep(off - now);
                }
                let t1 = Instant::now();
                let h = session.step(vec![tok(s, t)]).expect("valid step");
                let (_rows, timing) = h.wait_timed().expect("step resolved");
                service_total += t1.elapsed();
                // Latency from the *scheduled* arrival: schedule slip under
                // overload counts, exactly as in the session scenarios.
                hist.record(timing.latency_since(t0 + off));
                i += 1;
            }
            for (_, st) in session.decode_stats() {
                reused += st.reused_rows;
                walked += st.walked_rows;
            }
        }
        let total = t0.elapsed();

        let ms = |d: Option<Duration>| d.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
        let decode_service_sps = steps as f64 / service_total.as_secs_f64().max(1e-9);
        let scenario = DecodeScenarioResult {
            name: format!("decode_{}", load.name()),
            model: "gpt",
            load: load.name(),
            arrival: arrival.name(),
            streams,
            seq_len,
            steps: i,
            offered_sps: rate,
            p50_ms: ms(hist.percentile(0.50)),
            p95_ms: ms(hist.percentile(0.95)),
            p99_ms: ms(hist.percentile(0.99)),
            max_ms: ms(hist.max()),
            mean_ms: ms(hist.mean()),
            steps_per_s: steps as f64 / total.as_secs_f64().max(1e-9),
            full_reeval_steps_per_s: full_reeval_sps,
            prefix_speedup: decode_service_sps / full_reeval_sps.max(1e-9),
            reused_rows: reused,
            walked_rows: walked,
        };
        println!(
            "  {:<28} offered {:>7.0} st/s | served {:>7.0} | p50 {:>8.3} ms | p99 {:>8.3} ms | speedup {:.2}x | reused {:>5} walked {:>5}",
            scenario.name,
            scenario.offered_sps,
            scenario.steps_per_s,
            scenario.p50_ms,
            scenario.p99_ms,
            scenario.prefix_speedup,
            scenario.reused_rows,
            scenario.walked_rows,
        );
        out.push(scenario);
    }
}

/// Serializes the report into the `BENCH_serve.json` schema checked by
/// [`crate::artifact::check_serve_artifact_text`].
pub fn to_json(report: &ServeReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"serve\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    s.push_str(&format!("  \"arrival\": \"{}\",\n", report.arrival));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!(
        "  \"requests_per_scenario\": {},\n",
        report.requests_per_scenario
    ));
    s.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in report.scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"policy\": \"{}\", \"load\": \"{}\", \
             \"arrival\": \"{}\", \"requests\": {}, \"offered_rps\": {:.1}, \
             \"achieved_rps\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"max_ms\": {:.4}, \"mean_ms\": {:.4}, \"slo_ms\": {:.4}, \
             \"slo_conformance\": {:.4}, \"stages\": [\n",
            sc.name,
            sc.model,
            sc.policy,
            sc.load,
            sc.arrival,
            sc.requests,
            sc.offered_rps,
            sc.achieved_rps,
            sc.p50_ms,
            sc.p95_ms,
            sc.p99_ms,
            sc.max_ms,
            sc.mean_ms,
            sc.slo_ms,
            sc.slo_conformance,
        ));
        for (j, st) in sc.stages.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"stage\": \"{}\", \"batches_run\": {}, \"rows_served\": {}, \
                 \"queued_high_water\": {}, \"final_window\": {}, \"mean_service_us\": {:.2}}}{}\n",
                st.stage,
                st.batches_run,
                st.rows_served,
                st.queued_high_water,
                st.final_window,
                st.mean_service_us,
                if j + 1 == sc.stages.len() { "" } else { "," },
            ));
        }
        s.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == report.scenarios.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"gateway_scenarios\": [\n");
    for (i, sc) in report.gateway_scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"load\": \"{}\", \"arrival\": \"{}\", \"models\": {}, \
             \"tenants\": {}, \"requests\": {}, \"admitted\": {}, \"shed\": {}, \
             \"shed_ratio\": {:.4}, \"batches_run\": {}, \"rows_served\": {}, \
             \"engine_cache_hits\": {}, \"engine_cache_misses\": {}, \
             \"engine_cache_evictions\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
             \"memo_evictions\": {}, \"slo_ms\": {:.4}, \"classes\": [\n",
            sc.name,
            sc.load,
            sc.arrival,
            sc.models,
            sc.tenants,
            sc.requests,
            sc.admitted,
            sc.shed,
            sc.shed_ratio,
            sc.batches_run,
            sc.rows_served,
            sc.engine_cache_hits,
            sc.engine_cache_misses,
            sc.engine_cache_evictions,
            sc.memo_hits,
            sc.memo_misses,
            sc.memo_evictions,
            sc.slo_ms,
        ));
        for (j, cl) in sc.classes.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"class\": \"{}\", \"requests\": {}, \"admitted\": {}, \"shed\": {}, \
                 \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}{}\n",
                cl.class,
                cl.requests,
                cl.admitted,
                cl.shed,
                cl.p50_ms,
                cl.p99_ms,
                if j + 1 == sc.classes.len() { "" } else { "," },
            ));
        }
        s.push_str("    ], \"stages\": [\n");
        for (j, st) in sc.stages.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"stage\": \"{}\", \"batches_run\": {}, \"rows_served\": {}, \
                 \"queued_high_water\": {}, \"final_window\": {}, \"mean_service_us\": {:.2}}}{}\n",
                st.stage,
                st.batches_run,
                st.rows_served,
                st.queued_high_water,
                st.final_window,
                st.mean_service_us,
                if j + 1 == sc.stages.len() { "" } else { "," },
            ));
        }
        s.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == report.gateway_scenarios.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"decode_scenarios\": [\n");
    for (i, sc) in report.decode_scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"load\": \"{}\", \
             \"arrival\": \"{}\", \"streams\": {}, \"seq_len\": {}, \"steps\": {}, \
             \"offered_sps\": {:.1}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"p99_ms\": {:.4}, \"max_ms\": {:.4}, \"mean_ms\": {:.4}, \
             \"steps_per_s\": {:.1}, \"full_reeval_steps_per_s\": {:.1}, \
             \"prefix_speedup\": {:.4}, \"reused_rows\": {}, \"walked_rows\": {}}}{}\n",
            sc.name,
            sc.model,
            sc.load,
            sc.arrival,
            sc.streams,
            sc.seq_len,
            sc.steps,
            sc.offered_sps,
            sc.p50_ms,
            sc.p95_ms,
            sc.p99_ms,
            sc.max_ms,
            sc.mean_ms,
            sc.steps_per_s,
            sc.full_reeval_steps_per_s,
            sc.prefix_speedup,
            sc.reused_rows,
            sc.walked_rows,
            if i + 1 == report.decode_scenarios.len() {
                ""
            } else {
                ","
            },
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
