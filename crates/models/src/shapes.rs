//! Layer-shape descriptors and GEMM extraction for the paper's workloads.
//!
//! LUT-DLA accelerates GEMM; every workload is therefore described as the
//! sequence of GEMMs it lowers to — convolutions via `im2col`
//! ([`lutdla_tensor::Conv2dGeometry`]), transformer blocks via their
//! projection/FFN matrices.

use lutdla_tensor::Conv2dGeometry;

/// The dimensions of one GEMM `[M, K] × [K, N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmDims {
    /// Rows of the activation matrix.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl GemmDims {
    /// Creates GEMM dimensions.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n }
    }

    /// Multiply–accumulate count.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Operation count (2 ops per MAC, the convention used in Table VIII).
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }
}

/// One layer of a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerShape {
    /// A 2-D convolution, lowered to GEMM by `im2col`.
    Conv(Conv2dGeometry),
    /// A dense projection applied to `tokens` rows.
    Linear {
        /// Number of activation rows (batch × tokens or batch × pixels).
        tokens: usize,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl LayerShape {
    /// The GEMM this layer lowers to, for a given image batch size
    /// (ignored for `Linear`, whose row count is already in `tokens`).
    pub fn gemm(&self, batch: usize) -> GemmDims {
        match self {
            LayerShape::Conv(g) => GemmDims::new(g.gemm_m(batch), g.gemm_k(), g.gemm_n()),
            LayerShape::Linear {
                tokens,
                in_features,
                out_features,
            } => GemmDims::new(*tokens, *in_features, *out_features),
        }
    }
}

/// A named workload: an ordered list of GEMM-bearing layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name (e.g. `"ResNet18"`).
    pub name: String,
    /// The layers, in execution order.
    pub layers: Vec<LayerShape>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, layers: Vec<LayerShape>) -> Self {
        Self {
            name: name.into(),
            layers,
        }
    }

    /// All GEMMs for a given batch size.
    pub fn gemms(&self, batch: usize) -> Vec<GemmDims> {
        self.layers.iter().map(|l| l.gemm(batch)).collect()
    }

    /// Total MAC count at a given batch size.
    pub fn total_macs(&self, batch: usize) -> u64 {
        self.gemms(batch).iter().map(GemmDims::macs).sum()
    }

    /// Total op count (2×MACs).
    pub fn total_ops(&self, batch: usize) -> u64 {
        2 * self.total_macs(batch)
    }

    /// Total weight parameter count across GEMM layers.
    pub fn total_weights(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| {
                let g = l.gemm(1);
                g.k as u64 * g.n as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_layer_gemm() {
        let g = Conv2dGeometry::new(3, 64, (32, 32), (3, 3), 1, 1);
        let l = LayerShape::Conv(g);
        let d = l.gemm(2);
        assert_eq!(d.m, 2 * 32 * 32);
        assert_eq!(d.k, 27);
        assert_eq!(d.n, 64);
    }

    #[test]
    fn linear_layer_gemm_ignores_batch() {
        let l = LayerShape::Linear {
            tokens: 512,
            in_features: 768,
            out_features: 3072,
        };
        assert_eq!(l.gemm(99), GemmDims::new(512, 768, 3072));
    }

    #[test]
    fn ops_double_macs() {
        let d = GemmDims::new(4, 5, 6);
        assert_eq!(d.macs(), 120);
        assert_eq!(d.ops(), 240);
    }

    #[test]
    fn workload_totals() {
        let w = Workload::new(
            "toy",
            vec![
                LayerShape::Linear {
                    tokens: 2,
                    in_features: 3,
                    out_features: 4,
                },
                LayerShape::Linear {
                    tokens: 2,
                    in_features: 4,
                    out_features: 5,
                },
            ],
        );
        assert_eq!(w.total_macs(1), 2 * 3 * 4 + 2 * 4 * 5);
        assert_eq!(w.total_weights(), 12 + 20);
    }
}
