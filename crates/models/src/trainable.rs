//! Tiny trainable counterparts of the paper's workloads.
//!
//! Architectures here are *structure-preserving scale-downs*: a CIFAR
//! ResNet-20 becomes a 2-stage residual CNN on 16×16 synthetic images, a
//! BERT becomes a 2-block encoder over a 64-token vocabulary. Every matrix
//! multiplication flows through a [`DenseUnit`], whose inner [`GemmOp`] box
//! is the seam where LUTBoost swaps a plain weight matrix for a LUT
//! operator — so the baseline network and its LUT-converted form share all
//! non-GEMM structure (batch norm, residuals, attention) exactly.

use std::cell::RefCell;

use lutdla_tensor::{Conv2dGeometry, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lutdla_nn::{
    BatchNorm2d, Embedding, Graph, ImageModel, LayerNorm, Module, NodeId, ParamId, ParamSet,
    SeqModel,
};

/// A pluggable GEMM: maps `[M, K] → [M, N]` activations.
///
/// The plain implementation is a weight matrix ([`PlainGemm`]); LUTBoost
/// provides a lookup-table implementation with a straight-through gradient.
pub trait GemmOp {
    /// Records the GEMM on the tape.
    fn forward_gemm(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId;

    /// Parameters owned by this op.
    fn params(&self) -> Vec<ParamId>;

    /// Input features `K`.
    fn in_dim(&self) -> usize;

    /// Output features `N`.
    fn out_dim(&self) -> usize;

    /// Takes (and clears) the auxiliary loss produced by the most recent
    /// forward, if any (LUT ops emit their reconstruction loss here).
    fn take_aux(&self) -> Option<NodeId> {
        None
    }

    /// The dense weight parameter, when the op is backed by one (both the
    /// plain GEMM and the LUT operator are; custom ops may not be).
    fn weight_param(&self) -> Option<ParamId> {
        None
    }

    /// Downcast support, so converters can recover the concrete type.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A dense projection backed by a single weight parameter `[K, N]`.
#[derive(Debug)]
pub struct PlainGemm {
    weight: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl PlainGemm {
    /// Creates a plain GEMM with Kaiming initialisation.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let weight = ps.add(
            format!("{name}.weight"),
            Tensor::kaiming(rng, &[in_dim, out_dim], in_dim),
        );
        Self {
            weight,
            in_dim,
            out_dim,
        }
    }

    /// The weight handle.
    pub fn weight(&self) -> ParamId {
        self.weight
    }
}

impl GemmOp for PlainGemm {
    fn forward_gemm(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        let w = g.param(ps, self.weight);
        g.matmul(x, w)
    }

    fn params(&self) -> Vec<ParamId> {
        vec![self.weight]
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn weight_param(&self) -> Option<ParamId> {
        Some(self.weight)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A GEMM plus optional bias — the unit LUTBoost converts.
pub struct DenseUnit {
    /// The projection (plain weight or LUT operator).
    pub gemm: Box<dyn GemmOp>,
    /// Optional bias of length `N`.
    pub bias: Option<ParamId>,
    /// Name for reporting.
    pub name: String,
}

impl DenseUnit {
    /// Creates a plain dense unit.
    pub fn plain<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let gemm = Box::new(PlainGemm::new(ps, rng, name, in_dim, out_dim));
        let bias = bias.then(|| ps.add(format!("{name}.bias"), Tensor::zeros(&[out_dim])));
        Self {
            gemm,
            bias,
            name: name.to_string(),
        }
    }

    /// Forward over `[M, K]` activations.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: NodeId) -> NodeId {
        let y = self.gemm.forward_gemm(g, ps, x);
        match self.bias {
            Some(b) => {
                let bn = g.param(ps, b);
                g.add_bias(y, bn)
            }
            None => y,
        }
    }

    /// All parameters (gemm + bias).
    pub fn params(&self) -> Vec<ParamId> {
        let mut p = self.gemm.params();
        p.extend(self.bias);
        p
    }
}

impl std::fmt::Debug for DenseUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseUnit")
            .field("name", &self.name)
            .field("in_dim", &self.gemm.in_dim())
            .field("out_dim", &self.gemm.out_dim())
            .field("bias", &self.bias.is_some())
            .finish()
    }
}

/// A model that a whole-model serving session can drive: an **ordered
/// dense-unit walk** plus a batched eval-mode forward over single examples.
///
/// The contract that makes sessions correct:
///
/// 1. [`ServableModel::unit_walk`] returns every [`DenseUnit`] in exactly
///    the order the forward consumes them — the same order
///    `capture_gemm_inputs` records calibration activations, so a serving
///    plan compiled over the walk (LUT engine per converted unit, dense
///    GEMM otherwise) replays precisely what the eval forward computes.
/// 2. [`ServableModel::forward_logits`] is the eval-mode forward
///    (`Graph::new(false)`), whose per-example logits are independent of
///    how examples are grouped into batches (eval-mode batch norm uses
///    running stats; every other op is example-local). That independence is
///    what lets a session coalesce submissions freely while staying
///    bit-identical to any other batching of the same examples.
pub trait ServableModel {
    /// One inference request: a single image (`[C, H, W]` tensor) or a
    /// single token sequence.
    type Input: Clone;

    /// Every dense unit in forward order.
    fn unit_walk(&self) -> Vec<&DenseUnit>;

    /// Checks one request's shape/content before it joins a batch.
    fn validate_input(&self, input: &Self::Input) -> Result<(), String>;

    /// Whether two requests may share one forward batch (e.g. equal
    /// sequence lengths). Defaults to "always".
    fn batch_compatible(&self, _a: &Self::Input, _b: &Self::Input) -> bool {
        true
    }

    /// Eval-mode forward over a non-empty batch of validated, mutually
    /// [`batch_compatible`](ServableModel::batch_compatible) requests;
    /// returns `[batch, classes]` logits.
    fn forward_logits(&self, ps: &ParamSet, inputs: &[Self::Input]) -> Tensor;

    /// Output width of [`ServableModel::forward_logits`].
    fn num_classes(&self) -> usize;

    /// Whether the model honours the **incremental-forward contract** an
    /// autoregressive decode session relies on: inputs are growing
    /// position sequences ([`ServableModel::extend_input`] appends), and
    /// every per-position activation feeding a dense unit is **bitwise**
    /// independent of later positions — so a step that appends one token
    /// leaves the whole prefix's per-stage rows unchanged, and a decode
    /// cache can re-encode only the new rows. A causal transformer
    /// ([`TransformerConfig::causal`]) satisfies this; image models and
    /// bidirectional encoders do not. The default declines with a reason.
    fn decode_contract(&self) -> Result<(), String> {
        Err("model has no incremental-forward contract (decode needs per-position prefix stability)"
            .to_string())
    }

    /// Appends a decode step's tokens onto a growing prefix, validating
    /// the combined input. Only meaningful when
    /// [`ServableModel::decode_contract`] holds; the default declines.
    fn extend_input(
        &self,
        prefix: &Self::Input,
        step: &Self::Input,
    ) -> Result<Self::Input, String> {
        let _ = (prefix, step);
        Err("model has no incremental-forward contract".to_string())
    }

    /// Decode positions carried by one input (tokens of a sequence). Image
    /// requests are a single position.
    fn input_positions(&self, input: &Self::Input) -> usize {
        let _ = input;
        1
    }
}

/// Rearranges GEMM conv output `[batch·oh·ow, cout]` into NCHW.
fn nchw_from_gemm(
    g: &mut Graph,
    y: NodeId,
    batch: usize,
    cout: usize,
    oh: usize,
    ow: usize,
) -> NodeId {
    let r = g.reshape(y, &[batch, oh * ow, cout]);
    let t = g.transpose_last2(r);
    g.reshape(t, &[batch, cout, oh, ow])
}

/// Convolution + batch norm, GEMM exposed through a [`DenseUnit`].
#[derive(Debug)]
pub struct ConvUnit {
    /// Convolution geometry.
    pub geom: Conv2dGeometry,
    /// The `im2col`-GEMM.
    pub dense: DenseUnit,
    /// Post-conv batch norm.
    pub bn: BatchNorm2d,
}

impl ConvUnit {
    fn new(ps: &mut ParamSet, rng: &mut StdRng, name: &str, geom: Conv2dGeometry) -> Self {
        let dense = DenseUnit::plain(ps, rng, name, geom.gemm_k(), geom.out_channels, false);
        let bn = BatchNorm2d::new(ps, &format!("{name}.bn"), geom.out_channels);
        Self { geom, dense, bn }
    }

    /// Forward; optionally records the `im2col` GEMM input in `sink`
    /// (LUTBoost calibration).
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: NodeId,
        sink: &mut Option<&mut Vec<Tensor>>,
    ) -> NodeId {
        let batch = g.value(x).dims()[0];
        let cols = g.im2col(x, self.geom);
        if let Some(s) = sink.as_deref_mut() {
            s.push(g.value(cols).clone());
        }
        let y = self.dense.forward(g, ps, cols);
        let (oh, ow) = self.geom.out_hw();
        let nchw = nchw_from_gemm(g, y, batch, self.geom.out_channels, oh, ow);
        self.bn.forward(g, ps, nchw)
    }

    fn params(&self) -> Vec<ParamId> {
        let mut p = self.dense.params();
        p.extend(self.bn.params());
        p
    }
}

/// A pre-activation-free basic residual block (two 3×3 convs + shortcut).
#[derive(Debug)]
pub struct BasicBlock {
    conv1: ConvUnit,
    conv2: ConvUnit,
    downsample: Option<ConvUnit>,
}

impl BasicBlock {
    fn new(
        ps: &mut ParamSet,
        rng: &mut StdRng,
        name: &str,
        cin: usize,
        cout: usize,
        hw: usize,
        stride: usize,
    ) -> Self {
        let g1 = Conv2dGeometry::new(cin, cout, (hw, hw), (3, 3), stride, 1);
        let (oh, _) = g1.out_hw();
        let g2 = Conv2dGeometry::new(cout, cout, (oh, oh), (3, 3), 1, 1);
        let downsample = (stride != 1 || cin != cout).then(|| {
            ConvUnit::new(
                ps,
                rng,
                &format!("{name}.down"),
                Conv2dGeometry::new(cin, cout, (hw, hw), (1, 1), stride, 0),
            )
        });
        Self {
            conv1: ConvUnit::new(ps, rng, &format!("{name}.conv1"), g1),
            conv2: ConvUnit::new(ps, rng, &format!("{name}.conv2"), g2),
            downsample,
        }
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: NodeId,
        sink: &mut Option<&mut Vec<Tensor>>,
    ) -> NodeId {
        let h = self.conv1.forward(g, ps, x, sink);
        let h = g.relu(h);
        let h = self.conv2.forward(g, ps, h, sink);
        let skip = match &self.downsample {
            Some(d) => d.forward(g, ps, x, sink),
            None => x,
        };
        let sum = g.add(h, skip);
        g.relu(sum)
    }

    fn params(&self) -> Vec<ParamId> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        if let Some(d) = &self.downsample {
            p.extend(d.params());
        }
        p
    }
}

/// Configuration of a tiny residual CNN.
#[derive(Debug, Clone, Copy)]
pub struct ConvNetConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial size (square).
    pub image_size: usize,
    /// Stem / stage-1 width.
    pub width: usize,
    /// Residual blocks per stage (2 stages; stage 2 doubles the width).
    pub blocks_per_stage: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Initialisation seed.
    pub seed: u64,
}

/// A 2-stage residual CNN — the trainable proxy for the CIFAR ResNets.
pub struct ConvNet {
    stem: ConvUnit,
    blocks: Vec<BasicBlock>,
    head: DenseUnit,
    cfg: ConvNetConfig,
    aux: RefCell<Vec<NodeId>>,
}

impl ConvNet {
    /// Builds the network, registering all parameters in `ps`.
    pub fn new(ps: &mut ParamSet, cfg: ConvNetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let s = cfg.image_size;
        let w = cfg.width;
        let stem = ConvUnit::new(
            ps,
            &mut rng,
            "stem",
            Conv2dGeometry::new(cfg.in_channels, w, (s, s), (3, 3), 1, 1),
        );
        let mut blocks = Vec::new();
        for b in 0..cfg.blocks_per_stage {
            blocks.push(BasicBlock::new(
                ps,
                &mut rng,
                &format!("s1.b{b}"),
                w,
                w,
                s,
                1,
            ));
        }
        for b in 0..cfg.blocks_per_stage {
            let (cin, stride, hw) = if b == 0 { (w, 2, s) } else { (2 * w, 1, s / 2) };
            blocks.push(BasicBlock::new(
                ps,
                &mut rng,
                &format!("s2.b{b}"),
                cin,
                2 * w,
                hw,
                stride,
            ));
        }
        let head = DenseUnit::plain(ps, &mut rng, "head", 2 * w, cfg.num_classes, true);
        Self {
            stem,
            blocks,
            head,
            cfg,
            aux: RefCell::new(Vec::new()),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &ConvNetConfig {
        &self.cfg
    }

    /// Forward pass; `sink`, when provided, receives every GEMM input
    /// (in [`ConvNet::dense_units_mut`] order) for LUTBoost calibration.
    pub fn forward_collect(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        images: Tensor,
        mut sink: Option<&mut Vec<Tensor>>,
    ) -> NodeId {
        self.aux.borrow_mut().clear();
        let x = g.input(images);
        let h = self.stem.forward(g, ps, x, &mut sink);
        let mut h = g.relu(h);
        for b in &self.blocks {
            h = b.forward(g, ps, h, &mut sink);
        }
        let pooled = g.global_avg_pool(h);
        if let Some(s) = sink {
            s.push(g.value(pooled).clone());
        }
        let logits = self.head.forward(g, ps, pooled);
        // Collect aux losses emitted by LUT gemms during this forward.
        let mut aux = self.aux.borrow_mut();
        for unit in self.dense_units() {
            if let Some(a) = unit.gemm.take_aux() {
                aux.push(a);
            }
        }
        logits
    }

    /// All dense units in forward order (stem, block convs, head).
    pub fn dense_units(&self) -> Vec<&DenseUnit> {
        let mut units = vec![&self.stem.dense];
        for b in &self.blocks {
            units.push(&b.conv1.dense);
            units.push(&b.conv2.dense);
            if let Some(d) = &b.downsample {
                units.push(&d.dense);
            }
        }
        units.push(&self.head);
        units
    }

    /// Mutable dense units in the same order (LUTBoost conversion seam).
    pub fn dense_units_mut(&mut self) -> Vec<&mut DenseUnit> {
        let mut units: Vec<&mut DenseUnit> = vec![&mut self.stem.dense];
        for b in &mut self.blocks {
            units.push(&mut b.conv1.dense);
            units.push(&mut b.conv2.dense);
            if let Some(d) = &mut b.downsample {
                units.push(&mut d.dense);
            }
        }
        units.push(&mut self.head);
        units
    }

    /// Runs a calibration forward and returns each GEMM's input matrix, in
    /// [`ConvNet::dense_units_mut`] order.
    pub fn capture_gemm_inputs(&self, ps: &ParamSet, images: Tensor) -> Vec<Tensor> {
        let mut g = Graph::new(false);
        let mut captured = Vec::new();
        let _ = self.forward_collect(&mut g, ps, images, Some(&mut captured));
        captured
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamId> {
        let mut p = self.stem.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.head.params());
        p
    }
}

impl std::fmt::Debug for ConvNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConvNet")
            .field("cfg", &self.cfg)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl ImageModel for ConvNet {
    fn logits(&self, g: &mut Graph, ps: &ParamSet, images: Tensor) -> NodeId {
        self.forward_collect(g, ps, images, None)
    }

    fn aux_loss(&self, g: &mut Graph, _ps: &ParamSet) -> Option<NodeId> {
        let aux = self.aux.borrow();
        let mut it = aux.iter().copied();
        let first = it.next()?;
        Some(it.fold(first, |acc, n| g.add(acc, n)))
    }
}

impl ServableModel for ConvNet {
    type Input = Tensor;

    fn unit_walk(&self) -> Vec<&DenseUnit> {
        self.dense_units()
    }

    fn validate_input(&self, input: &Self::Input) -> Result<(), String> {
        let want = [
            self.cfg.in_channels,
            self.cfg.image_size,
            self.cfg.image_size,
        ];
        if input.dims() == want {
            Ok(())
        } else {
            Err(format!(
                "image dims {:?}, model expects {:?}",
                input.dims(),
                want
            ))
        }
    }

    fn forward_logits(&self, ps: &ParamSet, inputs: &[Self::Input]) -> Tensor {
        assert!(!inputs.is_empty(), "empty forward batch");
        let (c, s) = (self.cfg.in_channels, self.cfg.image_size);
        let mut data = Vec::with_capacity(inputs.len() * c * s * s);
        for image in inputs {
            data.extend_from_slice(image.data());
        }
        let batch = Tensor::from_vec(data, &[inputs.len(), c, s, s]);
        let mut g = Graph::new(false);
        let node = ImageModel::logits(self, &mut g, ps, batch);
        g.value(node).clone()
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }
}

/// ResNet-20 proxy: 1 block per stage, width 8.
pub fn resnet20_mini(ps: &mut ParamSet, num_classes: usize) -> ConvNet {
    ConvNet::new(
        ps,
        ConvNetConfig {
            in_channels: 3,
            image_size: 16,
            width: 8,
            blocks_per_stage: 1,
            num_classes,
            seed: 101,
        },
    )
}

/// ResNet-32 proxy: 2 blocks per stage, width 8.
pub fn resnet32_mini(ps: &mut ParamSet, num_classes: usize) -> ConvNet {
    ConvNet::new(
        ps,
        ConvNetConfig {
            in_channels: 3,
            image_size: 16,
            width: 8,
            blocks_per_stage: 2,
            num_classes,
            seed: 102,
        },
    )
}

/// ResNet-56 proxy: 3 blocks per stage, width 8.
pub fn resnet56_mini(ps: &mut ParamSet, num_classes: usize) -> ConvNet {
    ConvNet::new(
        ps,
        ConvNetConfig {
            in_channels: 3,
            image_size: 16,
            width: 8,
            blocks_per_stage: 3,
            num_classes,
            seed: 103,
        },
    )
}

/// ResNet-18 proxy: wider (12 → 24 channels), 2 blocks per stage.
pub fn resnet18_mini(ps: &mut ParamSet, num_classes: usize) -> ConvNet {
    ConvNet::new(
        ps,
        ConvNetConfig {
            in_channels: 3,
            image_size: 16,
            width: 12,
            blocks_per_stage: 2,
            num_classes,
            seed: 104,
        },
    )
}

/// VGG-11 proxy: width 10, 1 block per stage (no residual benefit at this
/// scale; the residual structure is retained for implementation symmetry).
pub fn vgg11_mini(ps: &mut ParamSet, num_classes: usize) -> ConvNet {
    ConvNet::new(
        ps,
        ConvNetConfig {
            in_channels: 3,
            image_size: 16,
            width: 10,
            blocks_per_stage: 1,
            num_classes,
            seed: 105,
        },
    )
}

/// LeNet proxy: single channel input, width 6.
pub fn lenet_mini(ps: &mut ParamSet, num_classes: usize) -> ConvNet {
    ConvNet::new(
        ps,
        ConvNetConfig {
            in_channels: 1,
            image_size: 16,
            width: 6,
            blocks_per_stage: 1,
            num_classes,
            seed: 106,
        },
    )
}

// ---------------------------------------------------------------------
// Transformer classifier
// ---------------------------------------------------------------------

/// Configuration of the tiny transformer encoder.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN expansion width.
    pub d_ff: usize,
    /// Encoder blocks.
    pub layers: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Initialisation seed.
    pub seed: u64,
    /// Causal (autoregressive) attention: position `t` attends only to
    /// positions `≤ t`. The mask is additive `-1e30` pre-softmax, which
    /// absorbs any finite score exactly in f32 and underflows `exp` to
    /// `0.0` — so every per-position activation is **bitwise** independent
    /// of later tokens, the invariant an incremental decode session's
    /// prefix reuse relies on ([`ServableModel::decode_contract`]).
    pub causal: bool,
}

struct EncoderBlock {
    wq: DenseUnit,
    wk: DenseUnit,
    wv: DenseUnit,
    wo: DenseUnit,
    ff1: DenseUnit,
    ff2: DenseUnit,
    ln1: LayerNorm,
    ln2: LayerNorm,
    heads: usize,
    causal: bool,
}

impl EncoderBlock {
    fn new(
        ps: &mut ParamSet,
        rng: &mut StdRng,
        name: &str,
        d: usize,
        d_ff: usize,
        heads: usize,
        causal: bool,
    ) -> Self {
        Self {
            wq: DenseUnit::plain(ps, rng, &format!("{name}.wq"), d, d, true),
            wk: DenseUnit::plain(ps, rng, &format!("{name}.wk"), d, d, true),
            wv: DenseUnit::plain(ps, rng, &format!("{name}.wv"), d, d, true),
            wo: DenseUnit::plain(ps, rng, &format!("{name}.wo"), d, d, true),
            ff1: DenseUnit::plain(ps, rng, &format!("{name}.ff1"), d, d_ff, true),
            ff2: DenseUnit::plain(ps, rng, &format!("{name}.ff2"), d_ff, d, true),
            ln1: LayerNorm::new(ps, &format!("{name}.ln1"), d),
            ln2: LayerNorm::new(ps, &format!("{name}.ln2"), d),
            heads,
            causal,
        }
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: NodeId, // [B, T, D]
        sink: &mut Option<&mut Vec<Tensor>>,
    ) -> NodeId {
        let dims = g.value(x).dims().to_vec();
        let (b, t, d) = (dims[0], dims[1], dims[2]);
        let flat = g.reshape(x, &[b * t, d]);
        let grab = |g: &mut Graph, node: NodeId, sink: &mut Option<&mut Vec<Tensor>>| {
            if let Some(s) = sink.as_deref_mut() {
                s.push(g.value(node).clone());
            }
        };
        grab(g, flat, sink);
        let q = self.wq.forward(g, ps, flat);
        grab(g, flat, sink);
        let k = self.wk.forward(g, ps, flat);
        grab(g, flat, sink);
        let v = self.wv.forward(g, ps, flat);

        let q3 = g.reshape(q, &[b, t, d]);
        let k3 = g.reshape(k, &[b, t, d]);
        let v3 = g.reshape(v, &[b, t, d]);
        let qh = g.split_heads(q3, self.heads);
        let kh = g.split_heads(k3, self.heads);
        let vh = g.split_heads(v3, self.heads);
        let kt = g.transpose_last2(kh);
        let scores = g.bmm(qh, kt);
        let dh = d / self.heads;
        let scaled = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let masked = if self.causal {
            // Additive causal mask over `[B·H, T, T]` score blocks. The
            // f32 ulp at 1e30 is ~1.2e23, so `score + (-1e30)` rounds to
            // exactly -1e30 for any realistic score, and after the row-max
            // subtraction `exp` underflows to exactly +0.0 — masked
            // columns contribute bitwise nothing to softmax or to the
            // value mix, whatever the future tokens hold. The mask enters
            // as a gradient-free input leaf, so training backprops through
            // the add unchanged on the unmasked entries.
            let bh = b * self.heads;
            let mut mask = vec![0.0f32; bh * t * t];
            for block in mask.chunks_exact_mut(t * t) {
                for i in 0..t {
                    for slot in block[i * t + i + 1..(i + 1) * t].iter_mut() {
                        *slot = -1e30;
                    }
                }
            }
            let mask_node = g.input(Tensor::from_vec(mask, &[bh, t, t]));
            g.add(scaled, mask_node)
        } else {
            scaled
        };
        let att = g.softmax(masked);
        let ctx = g.bmm(att, vh);
        let merged = g.merge_heads(ctx, self.heads);
        let mflat = g.reshape(merged, &[b * t, d]);
        grab(g, mflat, sink);
        let proj = self.wo.forward(g, ps, mflat);
        let proj3 = g.reshape(proj, &[b, t, d]);
        let res1 = g.add(x, proj3);
        let norm1 = self.ln1.forward(g, ps, res1);

        let nflat = g.reshape(norm1, &[b * t, d]);
        grab(g, nflat, sink);
        let h = self.ff1.forward(g, ps, nflat);
        let h = g.gelu(h);
        grab(g, h, sink);
        let h = self.ff2.forward(g, ps, h);
        let h3 = g.reshape(h, &[b, t, d]);
        let res2 = g.add(norm1, h3);
        self.ln2.forward(g, ps, res2)
    }

    fn dense_units(&self) -> Vec<&DenseUnit> {
        vec![&self.wq, &self.wk, &self.wv, &self.wo, &self.ff1, &self.ff2]
    }

    fn dense_units_mut(&mut self) -> Vec<&mut DenseUnit> {
        vec![
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.wo,
            &mut self.ff1,
            &mut self.ff2,
        ]
    }

    fn params(&self) -> Vec<ParamId> {
        let mut p: Vec<ParamId> = self.dense_units().iter().flat_map(|u| u.params()).collect();
        p.extend(self.ln1.params());
        p.extend(self.ln2.params());
        p
    }
}

/// A tiny transformer encoder classifier (BERT/DistilBERT/OPT proxy).
pub struct TransformerClassifier {
    emb: Embedding,
    pos: ParamId,
    blocks: Vec<EncoderBlock>,
    head: DenseUnit,
    cfg: TransformerConfig,
    aux: RefCell<Vec<NodeId>>,
}

impl TransformerClassifier {
    /// Builds the model, registering parameters in `ps`.
    pub fn new(ps: &mut ParamSet, cfg: TransformerConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let emb = Embedding::new(ps, &mut rng, "emb", cfg.vocab, cfg.d_model);
        let pos = ps.add(
            "pos",
            Tensor::randn(&mut rng, &[cfg.max_seq, cfg.d_model], 0.02),
        );
        let blocks = (0..cfg.layers)
            .map(|i| {
                EncoderBlock::new(
                    ps,
                    &mut rng,
                    &format!("block{i}"),
                    cfg.d_model,
                    cfg.d_ff,
                    cfg.heads,
                    cfg.causal,
                )
            })
            .collect();
        let head = DenseUnit::plain(ps, &mut rng, "cls", cfg.d_model, cfg.num_classes, true);
        Self {
            emb,
            pos,
            blocks,
            head,
            cfg,
            aux: RefCell::new(Vec::new()),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Forward with optional GEMM-input capture.
    pub fn forward_collect(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        tokens: &[usize],
        batch: usize,
        seq_len: usize,
        mut sink: Option<&mut Vec<Tensor>>,
    ) -> NodeId {
        assert!(seq_len <= self.cfg.max_seq, "sequence too long");
        assert_eq!(tokens.len(), batch * seq_len, "token buffer mismatch");
        self.aux.borrow_mut().clear();
        let e = self.emb.lookup(g, ps, tokens); // [B·T, D]
        let d = self.cfg.d_model;
        // positional add: tile pos[0..T] across the batch
        let pos_v = ps.value(self.pos);
        let mut tiled = vec![0.0f32; batch * seq_len * d];
        for bi in 0..batch {
            for t in 0..seq_len {
                let dst = (bi * seq_len + t) * d;
                tiled[dst..dst + d].copy_from_slice(&pos_v.data()[t * d..(t + 1) * d]);
            }
        }
        let pos_node = g.input(Tensor::from_vec(tiled, &[batch * seq_len, d]));
        let x = g.add(e, pos_node);
        let mut h = g.reshape(x, &[batch, seq_len, d]);
        for b in &self.blocks {
            h = b.forward(g, ps, h, &mut sink);
        }
        // Mean-pool over tokens: [B, T, D] → [B, D] via reshape+transpose.
        let ht = g.transpose_last2(h); // [B, D, T]
        let flat = g.reshape(ht, &[batch * d, seq_len]);
        let pooled = g.mean_last_axis_node(flat); // [B·D]
        let pooled2 = g.reshape(pooled, &[batch, d]);
        if let Some(s) = sink {
            s.push(g.value(pooled2).clone());
        }
        let logits = self.head.forward(g, ps, pooled2);
        let mut aux = self.aux.borrow_mut();
        for unit in self.dense_units() {
            if let Some(a) = unit.gemm.take_aux() {
                aux.push(a);
            }
        }
        logits
    }

    /// All dense units in forward order (per block: q,k,v,o,ff1,ff2; head).
    pub fn dense_units(&self) -> Vec<&DenseUnit> {
        let mut units: Vec<&DenseUnit> = self.blocks.iter().flat_map(|b| b.dense_units()).collect();
        units.push(&self.head);
        units
    }

    /// Mutable dense units in the same order.
    pub fn dense_units_mut(&mut self) -> Vec<&mut DenseUnit> {
        let mut units: Vec<&mut DenseUnit> = self
            .blocks
            .iter_mut()
            .flat_map(|b| b.dense_units_mut())
            .collect();
        units.push(&mut self.head);
        units
    }

    /// Calibration capture of every GEMM input.
    pub fn capture_gemm_inputs(
        &self,
        ps: &ParamSet,
        tokens: &[usize],
        batch: usize,
        seq_len: usize,
    ) -> Vec<Tensor> {
        let mut g = Graph::new(false);
        let mut captured = Vec::new();
        let _ = self.forward_collect(&mut g, ps, tokens, batch, seq_len, Some(&mut captured));
        captured
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamId> {
        let mut p = vec![self.emb.table(), self.pos];
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.head.params());
        p
    }
}

impl std::fmt::Debug for TransformerClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformerClassifier")
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl SeqModel for TransformerClassifier {
    fn logits(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        tokens: &[usize],
        batch: usize,
        seq_len: usize,
    ) -> NodeId {
        self.forward_collect(g, ps, tokens, batch, seq_len, None)
    }

    fn aux_loss(&self, g: &mut Graph, _ps: &ParamSet) -> Option<NodeId> {
        let aux = self.aux.borrow();
        let mut it = aux.iter().copied();
        let first = it.next()?;
        Some(it.fold(first, |acc, n| g.add(acc, n)))
    }
}

impl ServableModel for TransformerClassifier {
    type Input = Vec<usize>;

    fn unit_walk(&self) -> Vec<&DenseUnit> {
        self.dense_units()
    }

    fn validate_input(&self, input: &Self::Input) -> Result<(), String> {
        if input.is_empty() || input.len() > self.cfg.max_seq {
            return Err(format!(
                "sequence length {} outside 1..={}",
                input.len(),
                self.cfg.max_seq
            ));
        }
        match input.iter().find(|&&t| t >= self.cfg.vocab) {
            Some(&t) => Err(format!("token {t} outside vocab of {}", self.cfg.vocab)),
            None => Ok(()),
        }
    }

    /// Sequences of different lengths cannot share one `[B, T, D]` batch.
    fn batch_compatible(&self, a: &Self::Input, b: &Self::Input) -> bool {
        a.len() == b.len()
    }

    fn forward_logits(&self, ps: &ParamSet, inputs: &[Self::Input]) -> Tensor {
        assert!(!inputs.is_empty(), "empty forward batch");
        let seq_len = inputs[0].len();
        debug_assert!(
            inputs.iter().all(|s| s.len() == seq_len),
            "batch mixes sequence lengths"
        );
        let mut tokens = Vec::with_capacity(inputs.len() * seq_len);
        for seq in inputs {
            tokens.extend_from_slice(seq);
        }
        let mut g = Graph::new(false);
        let node = SeqModel::logits(self, &mut g, ps, &tokens, inputs.len(), seq_len);
        g.value(node).clone()
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }

    fn decode_contract(&self) -> Result<(), String> {
        if self.cfg.causal {
            Ok(())
        } else {
            Err("transformer attention is bidirectional; build with \
                 TransformerConfig::causal = true for decode serving"
                .to_string())
        }
    }

    fn extend_input(
        &self,
        prefix: &Self::Input,
        step: &Self::Input,
    ) -> Result<Self::Input, String> {
        if step.is_empty() {
            return Err("decode step carries no tokens".to_string());
        }
        let mut next = prefix.clone();
        next.extend_from_slice(step);
        self.validate_input(&next)?;
        Ok(next)
    }

    fn input_positions(&self, input: &Self::Input) -> usize {
        input.len()
    }
}

/// BERT proxy: 2 encoder blocks, d=32.
pub fn bert_mini(ps: &mut ParamSet, num_classes: usize) -> TransformerClassifier {
    TransformerClassifier::new(
        ps,
        TransformerConfig {
            vocab: 64,
            max_seq: 16,
            d_model: 32,
            heads: 4,
            d_ff: 64,
            layers: 2,
            num_classes,
            seed: 201,
            causal: false,
        },
    )
}

/// DistilBERT proxy: 1 encoder block, d=32.
pub fn distilbert_mini(ps: &mut ParamSet, num_classes: usize) -> TransformerClassifier {
    TransformerClassifier::new(
        ps,
        TransformerConfig {
            vocab: 64,
            max_seq: 16,
            d_model: 32,
            heads: 4,
            d_ff: 64,
            layers: 1,
            num_classes,
            seed: 202,
            causal: false,
        },
    )
}

/// OPT-125M proxy: 2 encoder blocks, d=40.
pub fn opt125m_mini(ps: &mut ParamSet, num_classes: usize) -> TransformerClassifier {
    TransformerClassifier::new(
        ps,
        TransformerConfig {
            vocab: 64,
            max_seq: 16,
            d_model: 40,
            heads: 4,
            d_ff: 80,
            layers: 2,
            num_classes,
            seed: 203,
            causal: false,
        },
    )
}

/// GPT-style causal proxy: 1 decoder block, d=32, causal attention — the
/// model a token-streaming decode session serves
/// ([`ServableModel::decode_contract`] holds).
pub fn gpt_mini(ps: &mut ParamSet, num_classes: usize) -> TransformerClassifier {
    TransformerClassifier::new(
        ps,
        TransformerConfig {
            vocab: 64,
            max_seq: 16,
            d_model: 32,
            heads: 4,
            d_ff: 64,
            layers: 1,
            num_classes,
            seed: 204,
            causal: true,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lutdla_nn::data::{synthetic_images, synthetic_sequences, ImageTaskConfig, SeqTaskConfig};
    use lutdla_nn::{
        eval_images, eval_seq, train_epoch_images, train_epoch_seq, Adam, Optimizer, Sgd,
    };

    #[test]
    fn convnet_shapes() {
        let mut ps = ParamSet::new();
        let net = resnet20_mini(&mut ps, 10);
        let mut g = Graph::new(false);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&mut rng, &[2, 3, 16, 16], 1.0);
        let y = net.logits(&mut g, &ps, x);
        assert_eq!(g.value(y).dims(), &[2, 10]);
    }

    #[test]
    fn convnet_dense_unit_order_matches_capture() {
        let mut ps = ParamSet::new();
        let net = resnet20_mini(&mut ps, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&mut rng, &[2, 3, 16, 16], 1.0);
        let captured = net.capture_gemm_inputs(&ps, x);
        let units = net.dense_units();
        assert_eq!(captured.len(), units.len());
        for (c, u) in captured.iter().zip(&units) {
            assert_eq!(
                c.dims()[1],
                u.gemm.in_dim(),
                "capture/unit mismatch for {}",
                u.name
            );
        }
    }

    #[test]
    fn convnet_learns() {
        let cfg = ImageTaskConfig {
            num_classes: 4,
            n_train: 96,
            n_test: 48,
            noise: 0.25,
            ..ImageTaskConfig::cifar10_proxy()
        };
        let (train, test) = synthetic_images(&cfg);
        let mut ps = ParamSet::new();
        let net = resnet20_mini(&mut ps, 4);
        let mut opt = Optimizer::Sgd(Sgd::new(0.05, 0.9, 1e-4));
        for _ in 0..6 {
            train_epoch_images(&net, &mut ps, &mut opt, &train, 32);
        }
        let acc = eval_images(&net, &ps, &test, 32);
        assert!(acc > 0.5, "test accuracy {acc}");
    }

    #[test]
    fn transformer_shapes() {
        let mut ps = ParamSet::new();
        let net = bert_mini(&mut ps, 3);
        let mut g = Graph::new(false);
        let tokens: Vec<usize> = (0..2 * 16).map(|i| i % 64).collect();
        let y = net.logits(&mut g, &ps, &tokens, 2, 16);
        assert_eq!(g.value(y).dims(), &[2, 3]);
    }

    #[test]
    fn transformer_capture_matches_units() {
        let mut ps = ParamSet::new();
        let net = bert_mini(&mut ps, 3);
        let tokens: Vec<usize> = (0..2 * 16).map(|i| i % 64).collect();
        let captured = net.capture_gemm_inputs(&ps, &tokens, 2, 16);
        let units = net.dense_units();
        assert_eq!(captured.len(), units.len());
        for (c, u) in captured.iter().zip(&units) {
            assert_eq!(c.dims()[1], u.gemm.in_dim(), "mismatch for {}", u.name);
        }
    }

    #[test]
    fn transformer_learns() {
        let cfg = SeqTaskConfig {
            n_train: 192,
            n_test: 96,
            ..SeqTaskConfig::glue_proxy(9, 2)
        };
        let (train, test) = synthetic_sequences(&cfg);
        let mut ps = ParamSet::new();
        let net = distilbert_mini(&mut ps, 2);
        let mut opt = Optimizer::Adam(Adam::new(3e-3));
        for _ in 0..8 {
            train_epoch_seq(&net, &mut ps, &mut opt, &train, 32);
        }
        let acc = eval_seq(&net, &ps, &test, 32);
        assert!(acc > 0.7, "test accuracy {acc}");
    }

    #[test]
    fn servable_walk_is_the_dense_unit_order() {
        let mut ps = ParamSet::new();
        let net = resnet20_mini(&mut ps, 10);
        let walk = ServableModel::unit_walk(&net);
        let units = net.dense_units();
        assert_eq!(walk.len(), units.len());
        for (w, u) in walk.iter().zip(&units) {
            assert!(std::ptr::eq(*w, *u), "walk reordered {}", u.name);
        }
    }

    #[test]
    fn servable_logits_are_independent_of_batch_grouping() {
        // The contract a serving session relies on: coalescing requests into
        // any batch grouping yields bit-identical per-example logits.
        let mut ps = ParamSet::new();
        let net = resnet20_mini(&mut ps, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let images: Vec<Tensor> = (0..5)
            .map(|_| Tensor::randn(&mut rng, &[3, 16, 16], 1.0))
            .collect();
        for im in &images {
            net.validate_input(im).expect("valid image");
        }
        let whole = net.forward_logits(&ps, &images);
        let n = net.num_classes();
        let mut regrouped = Vec::new();
        regrouped.extend(net.forward_logits(&ps, &images[..2]).into_vec());
        regrouped.extend(net.forward_logits(&ps, &images[2..]).into_vec());
        assert_eq!(whole.data(), &regrouped[..], "batch grouping leaked");
        assert_eq!(whole.dims(), &[5, n]);

        let mut ps = ParamSet::new();
        let net = bert_mini(&mut ps, 3);
        let seqs: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..16).map(|t| (i * 7 + t * 3) % 64).collect())
            .collect();
        for s in &seqs {
            net.validate_input(s).expect("valid sequence");
        }
        let whole = net.forward_logits(&ps, &seqs);
        let mut regrouped = Vec::new();
        for s in &seqs {
            regrouped.extend(net.forward_logits(&ps, std::slice::from_ref(s)).into_vec());
        }
        assert_eq!(whole.data(), &regrouped[..], "batch grouping leaked");
    }

    #[test]
    fn servable_input_validation_rejects_bad_shapes() {
        let mut ps = ParamSet::new();
        let net = resnet20_mini(&mut ps, 10);
        let bad = Tensor::zeros(&[3, 8, 8]);
        assert!(net.validate_input(&bad).is_err());

        let mut ps = ParamSet::new();
        let net = bert_mini(&mut ps, 3);
        assert!(net.validate_input(&vec![]).is_err(), "empty sequence");
        assert!(net.validate_input(&vec![0; 17]).is_err(), "too long");
        assert!(net.validate_input(&vec![64; 4]).is_err(), "out of vocab");
        assert!(net.validate_input(&vec![0; 8]).is_ok());
        // Unequal lengths must not share a batch; equal lengths may.
        assert!(!net.batch_compatible(&vec![0; 8], &vec![0; 9]));
        assert!(net.batch_compatible(&vec![0; 8], &vec![1; 8]));
    }

    /// The incremental-forward invariant decode sessions rely on: with
    /// causal attention, every per-position stage input for a prefix is
    /// **bitwise** unchanged by later tokens — or by the sequence simply
    /// being shorter.
    #[test]
    fn causal_prefix_stage_rows_are_bitwise_stable() {
        let mut ps = ParamSet::new();
        let net = gpt_mini(&mut ps, 3);
        let full: Vec<usize> = (0..16).map(|i| (i * 7 + 2) % 64).collect();
        let mut diverged = full.clone();
        diverged[12] = (diverged[12] + 11) % 64;
        let cap_full = net.capture_gemm_inputs(&ps, &full, 1, 16);
        let cap_div = net.capture_gemm_inputs(&ps, &diverged, 1, 16);
        let cap_short = net.capture_gemm_inputs(&ps, &full[..12], 1, 12);
        let mut per_position = 0;
        for (s, ((a, b), c)) in cap_full.iter().zip(&cap_div).zip(&cap_short).enumerate() {
            if a.dims()[0] != 16 {
                continue; // the mean-pooled head row depends on every token
            }
            per_position += 1;
            let d = a.dims()[1];
            assert_eq!(
                &a.data()[..12 * d],
                &b.data()[..12 * d],
                "stage {s}: a future token leaked into the prefix"
            );
            assert_eq!(c.dims(), &[12, d]);
            assert_eq!(
                &a.data()[..12 * d],
                c.data(),
                "stage {s}: prefix rows depend on sequence length"
            );
        }
        assert!(per_position >= 6, "captures missing per-position stages");

        // Counterexample: bidirectional attention does *not* hold the
        // invariant — a future token perturbs post-attention prefix rows.
        let mut ps = ParamSet::new();
        let net = distilbert_mini(&mut ps, 3);
        let cap_full = net.capture_gemm_inputs(&ps, &full, 1, 16);
        let cap_div = net.capture_gemm_inputs(&ps, &diverged, 1, 16);
        let leaked = cap_full
            .iter()
            .zip(&cap_div)
            .filter(|(a, _)| a.dims()[0] == 16)
            .any(|(a, b)| {
                let d = a.dims()[1];
                a.data()[..12 * d] != b.data()[..12 * d]
            });
        assert!(leaked, "bidirectional prefix rows unexpectedly stable");
    }

    #[test]
    fn decode_contract_accepts_causal_transformers_only() {
        let mut ps = ParamSet::new();
        let gpt = gpt_mini(&mut ps, 3);
        gpt.decode_contract().expect("causal transformer decodes");

        let mut ps = ParamSet::new();
        let bert = bert_mini(&mut ps, 3);
        assert!(bert.decode_contract().is_err(), "bidirectional decoded");

        let mut ps = ParamSet::new();
        let conv = resnet20_mini(&mut ps, 4);
        assert!(conv.decode_contract().is_err(), "image model decoded");
        assert!(conv
            .extend_input(&Tensor::zeros(&[3, 16, 16]), &Tensor::zeros(&[3, 16, 16]))
            .is_err());
        assert_eq!(conv.input_positions(&Tensor::zeros(&[3, 16, 16])), 1);
    }

    #[test]
    fn extend_input_appends_and_validates() {
        let mut ps = ParamSet::new();
        let net = gpt_mini(&mut ps, 3);
        let prefix = vec![1usize, 2, 3];
        let next = net.extend_input(&prefix, &vec![4]).expect("fits");
        assert_eq!(next, vec![1, 2, 3, 4]);
        assert_eq!(net.input_positions(&next), 4);
        assert!(net.extend_input(&prefix, &vec![]).is_err(), "empty step");
        assert!(net.extend_input(&prefix, &vec![64]).is_err(), "bad token");
        let full: Vec<usize> = vec![0; 16];
        assert!(net.extend_input(&full, &vec![1]).is_err(), "over max_seq");
    }

    #[test]
    fn causal_transformer_trains() {
        let cfg = SeqTaskConfig {
            n_train: 128,
            n_test: 64,
            ..SeqTaskConfig::glue_proxy(9, 2)
        };
        let (train, test) = synthetic_sequences(&cfg);
        let mut ps = ParamSet::new();
        let net = TransformerClassifier::new(
            &mut ps,
            TransformerConfig {
                causal: true,
                ..*distilbert_mini(&mut ParamSet::new(), 2).config()
            },
        );
        let mut opt = Optimizer::Adam(Adam::new(3e-3));
        for _ in 0..8 {
            train_epoch_seq(&net, &mut ps, &mut opt, &train, 32);
        }
        let acc = eval_seq(&net, &ps, &test, 32);
        assert!(acc > 0.6, "causal test accuracy {acc}");
    }

    #[test]
    fn param_counts_scale_with_depth() {
        let mut ps20 = ParamSet::new();
        let _ = resnet20_mini(&mut ps20, 10);
        let mut ps56 = ParamSet::new();
        let _ = resnet56_mini(&mut ps56, 10);
        assert!(ps56.num_scalars() > 2 * ps20.num_scalars());
    }
}
