//! Workload zoo for LUT-DLA: full-size layer-shape descriptors of every
//! model the paper evaluates, and tiny *trainable* counterparts used by the
//! LUTBoost accuracy experiments.
//!
//! - [`shapes`]/[`zoo`] — shape-only workloads (GEMM sequences) consumed by
//!   the simulator, the baselines, and the design-space explorer.
//! - [`trainable`] — scale-downs of the same architectures built on
//!   `lutdla-nn`, with a [`trainable::GemmOp`] seam through which LUTBoost
//!   substitutes lookup-table operators.
//!
//! # Example
//!
//! ```
//! use lutdla_models::zoo;
//!
//! let bert = zoo::bert_base(zoo::TransformerGemmOpts::default());
//! let gemms = bert.gemms(1);
//! assert_eq!(gemms.len(), 60); // 12 layers × (3 QKV + 2 FFN)
//! ```

pub mod shapes;
pub mod trainable;
pub mod zoo;

pub use shapes::{GemmDims, LayerShape, Workload};
