//! The workload zoo: full-size layer shapes of every model the paper
//! evaluates (ResNet family, VGG11, LeNet, BERT, DistilBERT, OPT-125M).
//!
//! These descriptors drive the performance/energy experiments (Tables
//! VIII/IX, Figs. 13/14); they are *shape-only* — the trainable counterparts
//! used for accuracy experiments live in [`crate::trainable`].

use lutdla_tensor::Conv2dGeometry;

use crate::shapes::{LayerShape, Workload};

fn conv(cin: usize, cout: usize, hw: usize, k: usize, stride: usize, pad: usize) -> LayerShape {
    LayerShape::Conv(Conv2dGeometry::new(
        cin,
        cout,
        (hw, hw),
        (k, k),
        stride,
        pad,
    ))
}

/// CIFAR-style ResNet (He et al.): depth ∈ {20, 32, 56}, 3 stages of
/// `(depth-2)/6` basic blocks at 16/32/64 channels on 32×32 inputs.
///
/// # Panics
///
/// Panics if `depth % 6 != 2`.
pub fn resnet_cifar(depth: usize, num_classes: usize) -> Workload {
    assert_eq!(depth % 6, 2, "CIFAR ResNet depth must be 6n+2");
    let n = (depth - 2) / 6;
    let mut layers = vec![conv(3, 16, 32, 3, 1, 1)];
    let stage =
        |layers: &mut Vec<LayerShape>, cin: usize, cout: usize, hw: usize, blocks: usize| {
            for b in 0..blocks {
                let (stride, in_c, in_hw) = if b == 0 && cin != cout {
                    (2, cin, hw * 2)
                } else {
                    (1, cout, hw)
                };
                layers.push(conv(in_c, cout, in_hw, 3, stride, 1));
                layers.push(conv(cout, cout, hw, 3, 1, 1));
                if b == 0 && cin != cout {
                    // 1×1 projection shortcut
                    layers.push(conv(cin, cout, in_hw, 1, 2, 0));
                }
            }
        };
    stage(&mut layers, 16, 16, 32, n);
    stage(&mut layers, 16, 32, 16, n);
    stage(&mut layers, 32, 64, 8, n);
    layers.push(LayerShape::Linear {
        tokens: 1,
        in_features: 64,
        out_features: num_classes,
    });
    Workload::new(format!("ResNet{depth}"), layers)
}

/// ImageNet-style ResNet-18/34 (basic blocks) on 224×224 inputs.
///
/// # Panics
///
/// Panics if `depth` is not 18 or 34.
pub fn resnet_imagenet(depth: usize, num_classes: usize) -> Workload {
    let blocks: [usize; 4] = match depth {
        18 => [2, 2, 2, 2],
        34 => [3, 4, 6, 3],
        other => panic!("unsupported basic-block ResNet depth {other}"),
    };
    let mut layers = vec![conv(3, 64, 224, 7, 2, 3)];
    // maxpool 3x3/2 → 56×56 (pooling carries no GEMM)
    let chans = [64usize, 128, 256, 512];
    let hws = [56usize, 28, 14, 7];
    let mut cin = 64;
    for s in 0..4 {
        let cout = chans[s];
        let hw = hws[s];
        for b in 0..blocks[s] {
            let (stride, in_c, in_hw) = if b == 0 && s > 0 {
                (2, cin, hw * 2)
            } else {
                (1, cout, hw)
            };
            layers.push(conv(in_c, cout, in_hw, 3, stride, 1));
            layers.push(conv(cout, cout, hw, 3, 1, 1));
            if b == 0 && s > 0 {
                layers.push(conv(cin, cout, in_hw, 1, 2, 0));
            }
        }
        cin = cout;
    }
    layers.push(LayerShape::Linear {
        tokens: 1,
        in_features: 512,
        out_features: num_classes,
    });
    Workload::new(format!("ResNet{depth}"), layers)
}

/// ResNet-50 (bottleneck blocks) on 224×224 inputs.
pub fn resnet50(num_classes: usize) -> Workload {
    let blocks = [3usize, 4, 6, 3];
    let mut layers = vec![conv(3, 64, 224, 7, 2, 3)];
    let mid = [64usize, 128, 256, 512];
    let hws = [56usize, 28, 14, 7];
    let mut cin = 64;
    for s in 0..4 {
        let m = mid[s];
        let cout = m * 4;
        let hw = hws[s];
        for b in 0..blocks[s] {
            let (stride, in_c, in_hw) = if b == 0 {
                if s == 0 {
                    (1, cin, hw)
                } else {
                    (2, cin, hw * 2)
                }
            } else {
                (1, cout, hw)
            };
            layers.push(conv(in_c, m, in_hw, 1, 1, 0));
            layers.push(conv(
                m,
                m,
                if stride == 2 { in_hw } else { hw },
                3,
                stride,
                1,
            ));
            layers.push(conv(m, cout, hw, 1, 1, 0));
            if b == 0 {
                layers.push(conv(in_c, cout, in_hw, 1, stride, 0));
            }
        }
        cin = cout;
    }
    layers.push(LayerShape::Linear {
        tokens: 1,
        in_features: 2048,
        out_features: num_classes,
    });
    Workload::new("ResNet50", layers)
}

/// VGG-11 on 32×32 inputs (the CIFAR variant used in Table IV).
pub fn vgg11(num_classes: usize) -> Workload {
    let mut layers = Vec::new();
    let cfg: [(usize, usize, usize); 8] = [
        (3, 64, 32),
        (64, 128, 16),
        (128, 256, 8),
        (256, 256, 8),
        (256, 512, 4),
        (512, 512, 4),
        (512, 512, 2),
        (512, 512, 2),
    ];
    for (cin, cout, hw) in cfg {
        layers.push(conv(cin, cout, hw, 3, 1, 1));
    }
    layers.push(LayerShape::Linear {
        tokens: 1,
        in_features: 512,
        out_features: 512,
    });
    layers.push(LayerShape::Linear {
        tokens: 1,
        in_features: 512,
        out_features: num_classes,
    });
    Workload::new("VGG11", layers)
}

/// LeNet-5 on 28×28 MNIST inputs.
pub fn lenet() -> Workload {
    Workload::new(
        "LeNet",
        vec![
            conv(1, 6, 28, 5, 1, 2),
            conv(6, 16, 14, 5, 1, 0),
            LayerShape::Linear {
                tokens: 1,
                in_features: 16 * 5 * 5,
                out_features: 120,
            },
            LayerShape::Linear {
                tokens: 1,
                in_features: 120,
                out_features: 84,
            },
            LayerShape::Linear {
                tokens: 1,
                in_features: 84,
                out_features: 10,
            },
        ],
    )
}

/// Options controlling which transformer GEMMs are counted.
#[derive(Debug, Clone, Copy)]
pub struct TransformerGemmOpts {
    /// Sequence length (rows of every projection GEMM).
    pub seq_len: usize,
    /// Include the attention output projection. The paper's end-to-end
    /// methodology counts "QKV Projection and FFN layers" only, so the
    /// default is `false`.
    pub include_out_proj: bool,
}

impl Default for TransformerGemmOpts {
    fn default() -> Self {
        Self {
            seq_len: 512,
            include_out_proj: false,
        }
    }
}

/// Generic transformer encoder stack: `layers` blocks of width `d_model`
/// with FFN expansion `d_ff`.
pub fn transformer(
    name: &str,
    layers: usize,
    d_model: usize,
    d_ff: usize,
    opts: TransformerGemmOpts,
) -> Workload {
    let mut shapes = Vec::new();
    let lin = |inf: usize, outf: usize| LayerShape::Linear {
        tokens: opts.seq_len,
        in_features: inf,
        out_features: outf,
    };
    for _ in 0..layers {
        // QKV projections
        shapes.push(lin(d_model, d_model));
        shapes.push(lin(d_model, d_model));
        shapes.push(lin(d_model, d_model));
        if opts.include_out_proj {
            shapes.push(lin(d_model, d_model));
        }
        // FFN
        shapes.push(lin(d_model, d_ff));
        shapes.push(lin(d_ff, d_model));
    }
    Workload::new(name, shapes)
}

/// BERT-base: 12 layers, d=768, FFN 3072.
pub fn bert_base(opts: TransformerGemmOpts) -> Workload {
    transformer("BERT", 12, 768, 3072, opts)
}

/// DistilBERT: 6 layers, d=768, FFN 3072.
pub fn distilbert(opts: TransformerGemmOpts) -> Workload {
    transformer("DistilBERT", 6, 768, 3072, opts)
}

/// OPT-125M: 12 layers, d=768, FFN 3072.
pub fn opt_125m(opts: TransformerGemmOpts) -> Workload {
    transformer("OPT-125M", 12, 768, 3072, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_layer_count() {
        // stem + 3 stages × 3 blocks × 2 convs + 2 projection shortcuts + fc
        let w = resnet_cifar(20, 10);
        assert_eq!(w.layers.len(), 1 + 18 + 2 + 1);
    }

    #[test]
    fn resnet18_macs_close_to_published() {
        // Published: ~1.82 GMACs for 224×224 ResNet-18.
        let w = resnet_imagenet(18, 1000);
        let gmacs = w.total_macs(1) as f64 / 1e9;
        assert!(
            (1.6..2.1).contains(&gmacs),
            "ResNet18 GMACs = {gmacs}, expected ≈1.8"
        );
    }

    #[test]
    fn resnet50_macs_close_to_published() {
        // Published: ~4.1 GMACs.
        let w = resnet50(1000);
        let gmacs = w.total_macs(1) as f64 / 1e9;
        assert!(
            (3.5..4.6).contains(&gmacs),
            "ResNet50 GMACs = {gmacs}, expected ≈4.1"
        );
    }

    #[test]
    fn resnet20_weights_close_to_published() {
        // Paper §V-1: ResNet20 has ~0.27M parameters.
        let w = resnet_cifar(20, 10);
        let params = w.total_weights() as f64 / 1e6;
        assert!(
            (0.2..0.35).contains(&params),
            "ResNet20 params = {params}M, expected ≈0.27M"
        );
    }

    #[test]
    fn bert_projection_gemm_matches_paper_table9() {
        // Table IX computes GEMM 512×768×768 — the QKV projection shape.
        let w = bert_base(TransformerGemmOpts::default());
        let g = w.gemms(1);
        assert_eq!(g[0].m, 512);
        assert_eq!(g[0].k, 768);
        assert_eq!(g[0].n, 768);
        // 12 layers × (3 QKV + 2 FFN) = 60 GEMMs
        assert_eq!(g.len(), 60);
    }

    #[test]
    fn distilbert_half_of_bert() {
        let opts = TransformerGemmOpts::default();
        assert_eq!(
            distilbert(opts).total_macs(1) * 2,
            bert_base(opts).total_macs(1)
        );
    }

    #[test]
    fn lenet_shapes_consistent() {
        let w = lenet();
        let g = w.gemms(1);
        assert_eq!(g[0].k, 25); // 1×5×5
        assert_eq!(g[2].k, 400); // 16×5×5
    }
}
