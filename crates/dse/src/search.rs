//! The Co-Design Space Search Engine (paper Algorithm 2, Fig. 11):
//! analytical pruning → accuracy pruning → LUT-first greedy parallelism
//! expansion → ranking by the Eq. (5) bottleneck.

use lutdla_hwmodel::{design_cost, LutDlaHwConfig, Metric};
use lutdla_sim::Gemm;

use crate::accuracy::AccuracyModel;
use crate::model::{dense_bits, dense_ops, omega, phi_bits, tau_ops, OmegaBreakdown};

/// Constraint set for a search (the `s.t.` block of §VI-C).
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// τ must not exceed this fraction of the dense GEMM's op count.
    pub max_compute_fraction: f64,
    /// ϕ must not exceed this fraction of the dense GEMM's footprint.
    pub max_memory_fraction: f64,
    /// Area ceiling, mm².
    pub max_area_mm2: f64,
    /// Power ceiling, mW.
    pub max_power_mw: f64,
    /// Accuracy floor (percent).
    pub min_accuracy: f64,
}

impl Constraints {
    /// A permissive default used by tests and examples.
    pub fn relaxed() -> Self {
        Self {
            max_compute_fraction: 1.0,
            max_memory_fraction: 4.0,
            max_area_mm2: 10.0,
            max_power_mw: 2000.0,
            min_accuracy: 0.0,
        }
    }
}

/// The searchable space: candidate `v`, `c`, and metrics; parallelism is
/// derived by the greedy expansion.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate subvector lengths.
    pub vs: Vec<usize>,
    /// Candidate centroid counts.
    pub cs: Vec<usize>,
    /// Candidate metrics.
    pub metrics: Vec<Metric>,
    /// Hardware template: everything but `(v, c, metric, n_ccu, n_imm)`.
    pub template: LutDlaHwConfig,
    /// Memory bandwidth in bits per IMM cycle (for Eq. 5).
    pub beta_bits_per_cycle: f64,
}

impl SearchSpace {
    /// The paper's Fig. 11 axes: v ∈ {2..9}, c ∈ {8..64}, L2/L1.
    pub fn figure11() -> Self {
        Self {
            vs: (2..=9).collect(),
            cs: vec![8, 16, 32, 64],
            metrics: vec![Metric::L2, Metric::L1],
            template: LutDlaHwConfig::baseline(),
            beta_bits_per_cycle: 25.6e9 * 8.0 / 300e6,
        }
    }
}

/// Why a candidate was pruned (for the Fig. 11 heatmaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PruneReason {
    /// Survived all pruning.
    Kept,
    /// Eq. (1) exceeded the compute budget.
    Compute,
    /// Eq. (2) exceeded the memory budget.
    Memory,
    /// Eqs. (3)/(4) exceeded area/power even at minimal parallelism.
    Hardware,
    /// Below the accuracy floor.
    Accuracy,
}

/// One fully expanded candidate design.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The hardware configuration (with expanded parallelism).
    pub config: LutDlaHwConfig,
    /// Estimated accuracy.
    pub accuracy: f64,
    /// Eq. (5) breakdown at the expanded parallelism.
    pub omega: OmegaBreakdown,
    /// Area/power/throughput at the expanded parallelism.
    pub cost: lutdla_hwmodel::DesignCost,
}

/// Full search output: ranked candidates plus the pruning map.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Candidates sorted by ascending ω (best first).
    pub ranked: Vec<Candidate>,
    /// `(v, c, metric, reason)` for every visited point.
    pub prune_map: Vec<(usize, usize, Metric, PruneReason)>,
}

impl SearchResult {
    /// The winning design, if any candidate survived.
    pub fn best(&self) -> Option<&Candidate> {
        self.ranked.first()
    }
}

/// Runs Algorithm 2 against a target GEMM.
pub fn search(
    space: &SearchSpace,
    target: &Gemm,
    constraints: &Constraints,
    accuracy: &dyn AccuracyModel,
) -> SearchResult {
    let mut ranked = Vec::new();
    let mut prune_map = Vec::new();

    for &metric in &space.metrics {
        for &v in &space.vs {
            for &c in &space.cs {
                // Step 1a: computation pruning (Eq. 1).
                if tau_ops(target, v, c, metric)
                    > constraints.max_compute_fraction * dense_ops(target)
                {
                    prune_map.push((v, c, metric, PruneReason::Compute));
                    continue;
                }
                // Step 1b: memory pruning (Eq. 2).
                let phi = phi_bits(target, v, c, space.template.lut_bits, 16);
                if phi > constraints.max_memory_fraction * dense_bits(target, 8, 16) {
                    prune_map.push((v, c, metric, PruneReason::Memory));
                    continue;
                }
                // Step 2: hardware pruning at minimal parallelism (Eqs. 3/4).
                let minimal = LutDlaHwConfig {
                    metric,
                    v,
                    c,
                    n_ccu: 1,
                    n_imm: 1,
                    ..space.template
                };
                let min_cost = design_cost(&minimal);
                if min_cost.area_mm2 > constraints.max_area_mm2
                    || min_cost.power_mw > constraints.max_power_mw
                {
                    prune_map.push((v, c, metric, PruneReason::Hardware));
                    continue;
                }
                // Step 3: coarse accuracy pruning.
                let acc = accuracy.estimate(v, c, metric);
                if acc < constraints.min_accuracy {
                    prune_map.push((v, c, metric, PruneReason::Accuracy));
                    continue;
                }
                prune_map.push((v, c, metric, PruneReason::Kept));

                // Step 4: LUT-first greedy parallelism expansion.
                let cfg = expand_parallelism(&minimal, target, constraints, space);
                let cost = design_cost(&cfg);
                let om = omega_for(&cfg, target, space.beta_bits_per_cycle);
                ranked.push(Candidate {
                    config: cfg,
                    accuracy: acc,
                    omega: om,
                    cost,
                });
            }
        }
    }

    ranked.sort_by(|a, b| {
        a.omega
            .omega()
            .partial_cmp(&b.omega.omega())
            .expect("finite omegas")
    });
    SearchResult { ranked, prune_map }
}

fn omega_for(cfg: &LutDlaHwConfig, g: &Gemm, beta: f64) -> OmegaBreakdown {
    omega(
        g,
        cfg.v,
        cfg.c,
        cfg.tn,
        cfg.lut_bits,
        beta,
        cfg.n_ccu,
        cfg.ccm_clock_mult,
        cfg.n_imm,
    )
}

/// The paper's LUT-first greedy strategy (Algorithm 2 steps 3–4): grow
/// `n_imm` while the design is lookup-bound (the common case after im2col
/// inflates `M`), otherwise grow `n_ccu`, stopping at the area/power walls.
fn expand_parallelism(
    start: &LutDlaHwConfig,
    g: &Gemm,
    constraints: &Constraints,
    space: &SearchSpace,
) -> LutDlaHwConfig {
    let mut cfg = *start;
    loop {
        let om = omega_for(&cfg, g, space.beta_bits_per_cycle);
        let mut next = cfg;
        // IMM-bound check (`n_imm < n_ccu · N` in the paper's notation):
        // expand whichever unit is the current bottleneck.
        if om.lut >= om.sim {
            next.n_imm += 1;
        } else {
            next.n_ccu += 1;
        }
        let cost = design_cost(&next);
        if cost.area_mm2 > constraints.max_area_mm2 || cost.power_mw > constraints.max_power_mw {
            return cfg;
        }
        // Stop if no stage improves (load-bound: parallelism can't help).
        let next_om = omega_for(&next, g, space.beta_bits_per_cycle);
        if next_om.omega() >= om.omega() {
            return cfg;
        }
        cfg = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::SurrogateAccuracy;

    fn run(constraints: Constraints) -> SearchResult {
        let space = SearchSpace::figure11();
        let target = Gemm::new(512, 768, 768);
        search(
            &space,
            &target,
            &constraints,
            &SurrogateAccuracy::resnet20_cifar10(),
        )
    }

    #[test]
    fn search_finds_candidates_under_relaxed_constraints() {
        let r = run(Constraints::relaxed());
        assert!(!r.ranked.is_empty());
        let best = r.best().unwrap();
        assert!(best.cost.area_mm2 <= 10.0);
        assert!(best.config.n_imm >= 1);
    }

    #[test]
    fn accuracy_floor_prunes_long_vectors() {
        let strict = Constraints {
            min_accuracy: 90.5,
            ..Constraints::relaxed()
        };
        let r = run(strict);
        for c in &r.ranked {
            assert!(c.accuracy >= 90.5);
            // Only short vectors with enough centroids survive a 90.5 floor.
            assert!(c.config.v <= 4, "v = {}", c.config.v);
        }
        assert!(r
            .prune_map
            .iter()
            .any(|(_, _, _, reason)| *reason == PruneReason::Accuracy));
    }

    #[test]
    fn area_ceiling_limits_expansion() {
        let tight = Constraints {
            max_area_mm2: 1.0,
            ..Constraints::relaxed()
        };
        let r = run(tight);
        for c in &r.ranked {
            assert!(c.cost.area_mm2 <= 1.0, "area {}", c.cost.area_mm2);
        }
    }

    #[test]
    fn pruning_is_sound() {
        // Soundness: every Kept point must actually satisfy the analytic
        // constraints it was checked against.
        let constraints = Constraints {
            min_accuracy: 88.0,
            ..Constraints::relaxed()
        };
        let space = SearchSpace::figure11();
        let target = Gemm::new(512, 768, 768);
        let acc = SurrogateAccuracy::resnet20_cifar10();
        let r = search(&space, &target, &constraints, &acc);
        for (v, c, metric, reason) in &r.prune_map {
            if *reason == PruneReason::Kept {
                assert!(acc.estimate(*v, *c, *metric) >= 88.0);
                assert!(
                    tau_ops(&target, *v, *c, *metric) <= dense_ops(&target),
                    "kept point violates compute budget"
                );
            }
        }
    }

    #[test]
    fn greedy_expansion_monotone_in_budget() {
        // A larger area budget can only improve (or keep) the best ω.
        let small = run(Constraints {
            max_area_mm2: 1.0,
            ..Constraints::relaxed()
        });
        let large = run(Constraints {
            max_area_mm2: 8.0,
            ..Constraints::relaxed()
        });
        let os = small.best().unwrap().omega.omega();
        let ol = large.best().unwrap().omega.omega();
        assert!(ol <= os, "ω small-budget {os} < large-budget {ol}");
    }

    #[test]
    fn expansion_targets_lookup_bottleneck_first() {
        let r = run(Constraints::relaxed());
        let best = r.best().unwrap();
        // After expansion the design should not be trivially lookup-bound
        // with idle CCUs: nIMM grows beyond 1 for im2col-sized GEMMs.
        assert!(best.config.n_imm > 1);
    }
}
