//! Co-Design Space Exploration engine for LUT-DLA (paper §VI).
//!
//! Implements the analytical models (Eqs. 1–5), the pruning + LUT-first
//! greedy search of Algorithm 2, the Fig. 11 heatmaps, and the three
//! evaluated design points of Table VII.
//!
//! # Example
//!
//! ```
//! use lutdla_dse::{search, Constraints, SearchSpace, SurrogateAccuracy};
//! use lutdla_sim::Gemm;
//!
//! let result = search(
//!     &SearchSpace::figure11(),
//!     &Gemm::new(512, 768, 768),
//!     &Constraints::relaxed(),
//!     &SurrogateAccuracy::resnet20_cifar10(),
//! );
//! assert!(result.best().is_some());
//! ```

mod accuracy;
mod design_points;
mod heatmap;
mod model;
mod search;

pub use accuracy::{AccuracyModel, SurrogateAccuracy};
pub use design_points::{all_designs, design1, design2, design3, DesignPoint};
pub use heatmap::{accuracy_heatmap, phi_heatmap, prune_grid, tau_heatmap, Heatmap};
pub use model::{
    alpha_sim, dense_bits, dense_ops, hw_cost, omega, phi_bits, tau_ops, OmegaBreakdown, Stage,
};
pub use search::{search, Candidate, Constraints, PruneReason, SearchResult, SearchSpace};
